//! Concurrency integration tests: hammer SQLGraph from many threads with
//! the LinkBench mix, then verify the store's cross-table invariants.

use sqlgraph::core::{GraphData, SqlGraph};
use sqlgraph::datagen::linkbench::{self, LinkBenchConfig, Op, Workload};
use sqlgraph::gremlin::Blueprints;
use sqlgraph::rel::Value;

fn apply(g: &SqlGraph, op: &Op) {
    // Races (concurrent deletes etc.) are expected; only panics are bugs.
    match op {
        Op::AddNode { props } => {
            let _ = Blueprints::add_vertex(g, props);
        }
        Op::UpdateNode { id } => {
            let _ = Blueprints::set_vertex_property(g, *id, "version", &2i64.into());
        }
        Op::DeleteNode { id } => {
            let _ = Blueprints::remove_vertex(g, *id);
        }
        Op::GetNode { id } => {
            let _ = Blueprints::vertex_property(g, *id, "data");
        }
        Op::AddLink { src, dst, ltype } => {
            let _ = Blueprints::add_edge(g, *src, *dst, ltype, &[]);
        }
        Op::DeleteLink { src, dst, ltype } => {
            let found = Blueprints::edges_of(
                g,
                *src,
                sqlgraph::gremlin::Direction::Out,
                &[ltype.to_string()],
            )
            .into_iter()
            .find(|&e| Blueprints::edge_target(g, e) == Some(*dst));
            if let Some(e) = found {
                let _ = Blueprints::remove_edge(g, e);
            }
        }
        Op::UpdateLink { .. } | Op::CountLink { .. } | Op::MultigetLink { .. } => {}
        Op::GetLinkList { id, ltype } => {
            let _ = Blueprints::adjacent(
                g,
                *id,
                sqlgraph::gremlin::Direction::Out,
                &[ltype.to_string()],
            );
        }
    }
}

#[test]
fn concurrent_linkbench_storm_preserves_invariants() {
    let config = LinkBenchConfig {
        nodes: 300,
        ..LinkBenchConfig::default()
    };
    let data = linkbench::generate(&config);
    let g = SqlGraph::new_in_memory();
    g.bulk_load(&GraphData {
        vertices: data.vertices.clone(),
        edges: data.edges.clone(),
    })
    .unwrap();

    crossbeam::thread::scope(|scope| {
        for r in 0..8u64 {
            let g = &g;
            scope.spawn(move |_| {
                let mut wl = Workload::new(13, r, config.nodes, 8);
                for _ in 0..400 {
                    apply(g, &wl.next_op());
                }
            });
        }
    })
    .unwrap();

    let db = g.database();
    // Invariant 1: every EA edge's endpoints are live (non-negative vids).
    let dangling = db
        .execute(
            "SELECT COUNT(*) FROM ea WHERE inv NOT IN (SELECT vid FROM va WHERE vid >= 0) \
             OR outv NOT IN (SELECT vid FROM va WHERE vid >= 0)",
        )
        .unwrap();
    assert_eq!(
        dangling.scalar(),
        Some(&Value::Int(0)),
        "dangling EA endpoints"
    );

    // Invariant 2: adjacency-table traversal agrees with the EA triple
    // table for every live vertex (out direction, all labels).
    use sqlgraph::core::{AdjacencyStrategy, TranslateOptions};
    let hash = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceHash,
        factorize: false,
    };
    let ea = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceEa,
        factorize: false,
    };
    let vids = db
        .execute("SELECT vid FROM va WHERE vid >= 0")
        .unwrap()
        .int_column();
    for &v in vids.iter().step_by(7) {
        let q = format!("g.v({v}).out");
        let mut a = g.query_with(&q, hash).unwrap().int_column();
        let mut b = g.query_with(&q, ea).unwrap().int_column();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "adjacency mismatch at vertex {v}");
    }

    // Invariant 3: every multi-value pointer in OPA resolves to OSA rows.
    let orphans = db
        .execute(
            "SELECT COUNT(*) FROM opa p, TABLE(VALUES (p.val0),(p.val1),(p.val2),(p.val3),\
             (p.val4),(p.val5),(p.val6),(p.val7)) AS t(v) \
             WHERE t.v >= 1000000000000 AND t.v NOT IN (SELECT valid FROM osa)",
        )
        .unwrap();
    assert_eq!(
        orphans.scalar(),
        Some(&Value::Int(0)),
        "orphaned multi-value pointers"
    );
}

#[test]
fn parallel_queries_survive_concurrent_linkbench_storm() {
    // The LinkBench hammer mutates the store from writer threads while
    // other threads run analytic queries pinned to DOP 4 — so morsel
    // workers hold table read guards while writers contend for the write
    // locks. Only panics and deadlocks are bugs; row contents shift under
    // the race, but every result must stay well-formed.
    let config = LinkBenchConfig {
        nodes: 300,
        ..LinkBenchConfig::default()
    };
    let data = linkbench::generate(&config);
    let g = SqlGraph::new_in_memory();
    g.bulk_load(&GraphData {
        vertices: data.vertices.clone(),
        edges: data.edges.clone(),
    })
    .unwrap();
    g.database().set_parallelism(4);

    crossbeam::thread::scope(|scope| {
        for r in 0..4u64 {
            let g = &g;
            scope.spawn(move |_| {
                let mut wl = Workload::new(29, r, config.nodes, 8);
                for _ in 0..300 {
                    apply(g, &wl.next_op());
                }
            });
        }
        for _ in 0..4 {
            let g = &g;
            scope.spawn(move |_| {
                for _ in 0..60 {
                    let db = g.database();
                    let groups = db
                        .execute(
                            "SELECT ea.lbl, COUNT(*) FROM ea, va \
                             WHERE ea.outv = va.vid GROUP BY ea.lbl",
                        )
                        .unwrap();
                    for row in &groups.rows {
                        assert_eq!(row.len(), 2, "malformed aggregate row: {row:?}");
                    }
                    let scanned = db
                        .execute("SELECT COUNT(*) FROM va WHERE vid >= 0")
                        .unwrap();
                    assert!(scanned.scalar().and_then(Value::as_int).is_some());
                }
            });
        }
    })
    .unwrap();
    g.database().set_parallelism(0);
}

#[test]
fn concurrent_readers_and_writers_make_progress() {
    let g = SqlGraph::new_in_memory();
    let hub = g.add_vertex([("name", "hub".into())]).unwrap();
    for _ in 0..50 {
        let v = g.add_vertex([]).unwrap();
        g.add_edge(hub, v, "spoke", []).unwrap();
    }
    crossbeam::thread::scope(|scope| {
        // Writers keep adding spokes...
        for _ in 0..2 {
            let g = &g;
            scope.spawn(move |_| {
                for _ in 0..100 {
                    let v = g.add_vertex([]).unwrap();
                    g.add_edge(hub, v, "spoke", []).unwrap();
                }
            });
        }
        // ...while readers traverse.
        for _ in 0..4 {
            let g = &g;
            scope.spawn(move |_| {
                for _ in 0..100 {
                    let n = g
                        .query("g.v(1).out('spoke').count()")
                        .unwrap()
                        .scalar()
                        .and_then(Value::as_int)
                        .unwrap();
                    assert!(n >= 50);
                }
            });
        }
    })
    .unwrap();
    let final_count = g
        .query("g.v(1).out('spoke').count()")
        .unwrap()
        .scalar()
        .and_then(Value::as_int)
        .unwrap();
    assert_eq!(final_count, 250);
}
