//! Cross-crate end-to-end tests: datagen → all three stores → query
//! agreement between the SQL translation, the interpreter over SQLGraph,
//! and both baseline stores.

use sqlgraph::baselines::{KvGraph, NativeGraph};
use sqlgraph::core::{GraphData, SchemaConfig, SqlGraph};
use sqlgraph::datagen::dbpedia::{adjacency_queries, benchmark_queries, generate, DbpediaConfig};
use sqlgraph::gremlin::{interp, parse_query, Elem};
use sqlgraph::rel::Value;

fn build_all() -> (
    sqlgraph::datagen::dbpedia::DbpediaGraph,
    SqlGraph,
    KvGraph,
    NativeGraph,
) {
    let g = generate(&DbpediaConfig::tiny());
    let sql = SqlGraph::with_config(SchemaConfig {
        out_buckets: 5,
        in_buckets: 5,
    })
    .unwrap();
    sql.bulk_load(&GraphData {
        vertices: g.data.vertices.clone(),
        edges: g.data.edges.clone(),
    })
    .unwrap();
    let kv = KvGraph::new();
    g.data.load_blueprints(&kv).unwrap();
    let native = NativeGraph::new();
    g.data.load_blueprints(&native).unwrap();
    (g, sql, kv, native)
}

fn canon_elems(elems: Vec<Elem>) -> Vec<String> {
    let mut out: Vec<String> = elems.iter().map(|e| format!("{:?}", e.to_json())).collect();
    out.sort();
    out
}

fn canon_rel(rel: &sqlgraph::rel::Relation) -> Vec<String> {
    let mut out: Vec<String> = rel
        .rows
        .iter()
        .map(|r| format!("{:?}", sqlgraph::core::value_to_json(&r[0])))
        .collect();
    out.sort();
    out
}

#[test]
fn all_systems_agree_on_the_benchmark_queries() {
    let (g, sql, kv, native) = build_all();
    for q in benchmark_queries(&g) {
        let pipeline = parse_query(&q).unwrap();
        let want = canon_elems(interp::eval(&native, &pipeline).unwrap());
        let from_kv = canon_elems(interp::eval(&kv, &pipeline).unwrap());
        assert_eq!(from_kv, want, "kv vs native on {q}");
        let from_sql = canon_rel(&sql.query(&q).unwrap());
        assert_eq!(from_sql, want, "sqlgraph vs native on {q}");
    }
}

#[test]
fn all_systems_agree_on_the_path_queries() {
    let (g, sql, kv, native) = build_all();
    for spec in adjacency_queries(&g) {
        let pipeline = parse_query(&spec.gremlin).unwrap();
        let want = canon_elems(interp::eval(&native, &pipeline).unwrap());
        let from_kv = canon_elems(interp::eval(&kv, &pipeline).unwrap());
        assert_eq!(from_kv, want, "kv vs native on lq{}", spec.id);
        let from_sql = canon_rel(&sql.query(&spec.gremlin).unwrap());
        assert_eq!(from_sql, want, "sqlgraph vs native on lq{}", spec.id);
    }
}

#[test]
fn physical_strategies_agree() {
    use sqlgraph::core::{AdjacencyStrategy, TranslateOptions};
    let (g, sql, _, _) = build_all();
    let ea = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceEa,
        factorize: false,
    };
    let hash = TranslateOptions {
        adjacency: AdjacencyStrategy::ForceHash,
        factorize: false,
    };
    for spec in adjacency_queries(&g) {
        let a = canon_rel(&sql.query_with(&spec.gremlin, ea).unwrap());
        let b = canon_rel(&sql.query_with(&spec.gremlin, hash).unwrap());
        assert_eq!(a, b, "EA vs hash strategy diverged on lq{}", spec.id);
    }
}

#[test]
fn alternative_schemas_agree_with_sqlgraph() {
    use sqlgraph::core::alt::JsonAdjacency;
    let (g, sql, _, _) = build_all();
    let ja = JsonAdjacency::new().unwrap();
    ja.load(&GraphData {
        vertices: g.data.vertices.clone(),
        edges: g.data.edges.clone(),
    })
    .unwrap();
    // 3-hop isPartOf from all places, both representations.
    let places = g.config.places;
    let mut q = format!("g.V.interval('bucket', 0, {places})");
    for _ in 0..3 {
        q.push_str(".out('isPartOf')");
    }
    q.push_str(".count()");
    let from_sql = sql
        .query(&q)
        .unwrap()
        .scalar()
        .and_then(Value::as_int)
        .unwrap();
    let from_json = ja
        .khop(
            &format!("JSON_VAL(attr, 'bucket') < {places}"),
            Some("isPartOf"),
            3,
        )
        .unwrap()
        .scalar()
        .and_then(Value::as_int)
        .unwrap();
    assert_eq!(from_sql, from_json);
}

#[test]
fn facade_reexports_work_together() {
    // The README snippet, via the facade crate.
    let g = SqlGraph::new_in_memory();
    let a = g.add_vertex([("name", "ada".into())]).unwrap();
    let b = g.add_vertex([("name", "grace".into())]).unwrap();
    g.add_edge(a, b, "admires", []).unwrap();
    assert_eq!(
        g.query("g.V.has('name','ada').out('admires').values('name')")
            .unwrap()
            .strings(),
        ["grace"]
    );
    // JSON crate round trip through the public facade.
    let doc = sqlgraph::json::parse(r#"{"k": [1, 2, 3]}"#).unwrap();
    assert_eq!(doc.get("k").unwrap().as_array().unwrap().len(), 3);
}
