//! # SQLGraph
//!
//! A Rust reproduction of **"SQLGraph: An Efficient Relational-Based
//! Property Graph Store"** (SIGMOD 2015). This facade crate re-exports the
//! workspace crates so downstream users depend on one name.
//!
//! The headline API is [`core::SqlGraph`]: a property graph stored in an
//! embedded relational engine using the paper's hybrid schema — relational
//! hash tables for adjacency, JSON documents for vertex/edge attributes —
//! and queried with Gremlin pipelines compiled to a single SQL statement.
//!
//! ```
//! use sqlgraph::core::SqlGraph;
//!
//! let g = SqlGraph::new_in_memory();
//! let marko = g.add_vertex([("name", "marko".into()), ("age", 29i64.into())]).unwrap();
//! let vadas = g.add_vertex([("name", "vadas".into()), ("age", 27i64.into())]).unwrap();
//! g.add_edge(marko, vadas, "knows", [("weight", 0.5f64.into())]).unwrap();
//!
//! let out = g.query("g.V.has('name','marko').out('knows').values('name')").unwrap();
//! assert_eq!(out.strings(), ["vadas"]);
//! ```

pub use sqlgraph_baselines as baselines;
pub use sqlgraph_core as core;
pub use sqlgraph_datagen as datagen;
pub use sqlgraph_gremlin as gremlin;
pub use sqlgraph_json as json;
pub use sqlgraph_rel as rel;
pub use sqlgraph_server as server;
