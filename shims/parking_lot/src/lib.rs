//! Minimal API-compatible stand-in for `parking_lot` 0.12.
//!
//! Provides the exact surface this workspace uses: `Mutex` (non-poisoning
//! `lock`), `RwLock` with borrowed and `Arc`-owned guards, and the
//! `lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard}` guard types. The
//! rwlock is a genuine readers/writer lock built on a `std` mutex +
//! condvar state machine — readers run in parallel, writers exclude.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// Non-poisoning mutex: a panic while holding the lock does not wedge
/// later callers (poison is folded away, as parking_lot does).
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Raw readers/writer state machine shared by borrowed and owned guards.
pub struct RawRwLock {
    state: StdMutex<LockState>,
    cond: Condvar,
}

#[derive(Default)]
struct LockState {
    readers: usize,
    writer: bool,
}

impl RawRwLock {
    fn new() -> Self {
        RawRwLock {
            state: StdMutex::new(LockState::default()),
            cond: Condvar::new(),
        }
    }

    fn lock_shared(&self) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while s.writer {
            s = self.cond.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        s.readers += 1;
    }

    fn unlock_shared(&self) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        s.readers -= 1;
        if s.readers == 0 {
            self.cond.notify_all();
        }
    }

    fn lock_exclusive(&self) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        while s.writer || s.readers > 0 {
            s = self.cond.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        s.writer = true;
    }

    fn try_lock_exclusive(&self) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if s.writer || s.readers > 0 {
            false
        } else {
            s.writer = true;
            true
        }
    }

    fn unlock_exclusive(&self) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        s.writer = false;
        self.cond.notify_all();
    }
}

/// Readers/writer lock with parking_lot's (non-poisoning) API.
pub struct RwLock<T: ?Sized> {
    raw: RawRwLock,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            raw: RawRwLock::new(),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.raw.lock_shared();
        RwLockReadGuard { lock: self }
    }

    /// Shared lock safe to take while the same thread already holds a
    /// shared lock (parking_lot's `read_recursive`). This shim's readers
    /// never wait behind a *queued* writer — `lock_shared` only blocks
    /// while a writer holds the lock — so plain `read` already has the
    /// required no-deadlock property and this is an alias for intent.
    pub fn read_recursive(&self) -> RwLockReadGuard<'_, T> {
        self.read()
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.raw.lock_exclusive();
        RwLockWriteGuard { lock: self }
    }

    /// Exclusive lock without blocking: `None` if any reader or writer
    /// holds the lock (parking_lot's `try_write`).
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        if self.raw.try_lock_exclusive() {
            Some(RwLockWriteGuard { lock: self })
        } else {
            None
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }

    /// Owned read guard holding the `Arc` alive (parking_lot `arc_lock`).
    pub fn read_arc(self: &Arc<Self>) -> lock_api::ArcRwLockReadGuard<RawRwLock, T>
    where
        T: Sized,
    {
        self.raw.lock_shared();
        lock_api::ArcRwLockReadGuard {
            lock: Arc::clone(self),
            _raw: std::marker::PhantomData,
        }
    }

    /// Owned write guard holding the `Arc` alive (parking_lot `arc_lock`).
    pub fn write_arc(self: &Arc<Self>) -> lock_api::ArcRwLockWriteGuard<RawRwLock, T>
    where
        T: Sized,
    {
        self.raw.lock_exclusive();
        lock_api::ArcRwLockWriteGuard {
            lock: Arc::clone(self),
            _raw: std::marker::PhantomData,
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_shared();
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock_exclusive();
    }
}

pub mod lock_api {
    //! Owned (`Arc`-holding) guard types, named as in `lock_api`.

    use super::RwLock;
    use std::marker::PhantomData;
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc;

    /// Owned read guard; the `R` parameter mirrors `lock_api`'s raw-lock
    /// generic and is fixed to [`RawRwLock`] in practice.
    pub struct ArcRwLockReadGuard<R, T> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<R, T> Deref for ArcRwLockReadGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T> Drop for ArcRwLockReadGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw.unlock_shared();
        }
    }

    /// Owned write guard (see [`ArcRwLockReadGuard`]).
    pub struct ArcRwLockWriteGuard<R, T> {
        pub(crate) lock: Arc<RwLock<T>>,
        pub(crate) _raw: PhantomData<R>,
    }

    impl<R, T> Deref for ArcRwLockWriteGuard<R, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<R, T> DerefMut for ArcRwLockWriteGuard<R, T> {
        fn deref_mut(&mut self) -> &mut T {
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<R, T> Drop for ArcRwLockWriteGuard<R, T> {
        fn drop(&mut self) {
            self.lock.raw.unlock_exclusive();
        }
    }

    // The raw lock is shared state behind Arc; guards are usable across
    // threads exactly when the protected data allows it.
    unsafe impl<R, T: Send + Sync> Send for ArcRwLockReadGuard<R, T> {}
    unsafe impl<R, T: Send + Sync> Sync for ArcRwLockReadGuard<R, T> {}
    unsafe impl<R, T: Send + Sync> Send for ArcRwLockWriteGuard<R, T> {}
    unsafe impl<R, T: Send + Sync> Sync for ArcRwLockWriteGuard<R, T> {}

    #[allow(unused_imports)]
    pub(crate) use super::RawRwLock as _Raw;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_parallel_readers_exclusive_writer() {
        let lock = Arc::new(RwLock::new(0i64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let mut w = lock.write();
                        *w += 1;
                    }
                });
            }
            for _ in 0..4 {
                let lock = Arc::clone(&lock);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let r = lock.read();
                        assert!(*r >= 0);
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 4000);
    }

    #[test]
    fn arc_guards_hold_the_lock() {
        let lock = Arc::new(RwLock::new(String::from("x")));
        let g = lock.read_arc();
        let g2 = lock.read_arc();
        assert_eq!(&*g, "x");
        assert_eq!(&*g2, "x");
        drop((g, g2));
        let mut w = lock.write_arc();
        w.push('y');
        drop(w);
        assert_eq!(&*lock.read(), "xy");
    }

    #[test]
    fn mutex_survives_contention() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
