//! Minimal API-compatible stand-in for `bytes` 1.x.
//!
//! `Bytes` is a cheaply sliceable read view over a shared buffer;
//! `BytesMut` is a growable write buffer. The `Buf`/`BufMut` traits carry
//! the integer accessors the WAL uses. Endianness matches the real crate:
//! `get_u32`/`put_u32` are big-endian, the `_le` variants little-endian.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Read-only view: shared backing buffer plus a [start, end) window.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view relative to this view (zero-copy).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Split off and return the first `at` bytes, advancing self past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Bytes::from(b.data)
    }
}

/// Growable write buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential read access with the accessors the workspace uses.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        i64::from_le_bytes(raw)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_i64_le() as u64)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Sequential write access with the accessors the workspace uses.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_int_accessors() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        let mut r = Bytes::from(w.data.clone());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn u32_is_big_endian_like_upstream() {
        let mut w = BytesMut::new();
        w.put_u32(1);
        assert_eq!(&w[..], &[0, 0, 0, 1]);
        // Peeking via a slice works as with the real crate.
        assert_eq!((&w[0..4]).get_u32(), 1);
    }

    #[test]
    fn slice_and_split_are_views() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let mid = b.slice(1..3);
        assert_eq!(&mid[..], &[4, 5]);
        b.advance(1);
        assert_eq!(&b[..], &[4, 5]);
    }
}
