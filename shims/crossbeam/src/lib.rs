//! Minimal API-compatible stand-in for `crossbeam` 0.8's scoped threads,
//! implemented over `std::thread::scope` (stable since Rust 1.63).

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Wrapper over `std::thread::Scope` whose `spawn` passes the scope to
    /// the closure, matching crossbeam's `|scope| ...` / `spawn(|_| ...)`
    /// signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope that joins all spawned threads before
    /// returning. Like crossbeam (and unlike `std::thread::scope`), child
    /// panics surface as an `Err` instead of a propagated panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scope_joins_all_threads() {
            let n = AtomicUsize::new(0);
            super::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|_| {
                        n.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
