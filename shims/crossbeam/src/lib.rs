//! Minimal API-compatible stand-in for `crossbeam` 0.8's scoped threads
//! and unbounded MPMC channels, implemented over the standard library
//! (`std::thread::scope`, `Mutex<VecDeque>` + `Condvar`).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<Inner<T>>,
        ready: Condvar,
    }

    struct Inner<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half of an unbounded MPMC channel. Cloneable; the channel
    /// disconnects when every `Sender` has been dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded MPMC channel. Cloneable; any one
    /// receiver gets each message (work-stealing semantics, like
    /// crossbeam's `Receiver`).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by `Sender::send` when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by `Receiver::recv` when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `Receiver::try_recv`.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Inner {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.queue.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.items.push_back(value);
            drop(inner);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.queue.lock().unwrap();
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                // Wake blocked receivers so they observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = inner.items.pop_front() {
                    return Ok(item);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.ready.wait(inner).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.queue.lock().unwrap();
            match inner.items.pop_front() {
                Some(item) => Ok(item),
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<i32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(10));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn mpmc_distributes_all_messages() {
            let (tx, rx) = unbounded::<usize>();
            let total: usize = (0..64).sum();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                handles.push(std::thread::spawn(move || {
                    let mut sum = 0;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                }));
            }
            drop(rx);
            for v in 0..64 {
                tx.send(v).unwrap();
            }
            drop(tx);
            let got: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(got, total);
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Wrapper over `std::thread::Scope` whose `spawn` passes the scope to
    /// the closure, matching crossbeam's `|scope| ...` / `spawn(|_| ...)`
    /// signature.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope that joins all spawned threads before
    /// returning. Like crossbeam (and unlike `std::thread::scope`), child
    /// panics surface as an `Err` instead of a propagated panic.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scope_joins_all_threads() {
            let n = AtomicUsize::new(0);
            super::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|_| {
                        n.fetch_add(1, Ordering::SeqCst);
                    });
                }
            })
            .unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 4);
        }

        #[test]
        fn child_panic_becomes_err() {
            let r = super::scope(|scope| {
                scope.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }
    }
}
