//! Generation-only `Strategy`: every strategy can produce a value from a
//! [`TestRng`]; there is no shrinking. Combinators mirror proptest's
//! names so test code is source-compatible.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Recursive structures: `branch` receives a strategy for the inner
    /// level and returns the composite level. `depth` bounds recursion;
    /// the node-count/branch-size hints are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            depth,
            leaf: self.boxed(),
            branch: Rc::new(move |inner| branch(inner).boxed()),
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy (cheaply clonable).
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Result of [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    depth: u32,
    leaf: BoxedStrategy<T>,
    branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            depth: self.depth,
            leaf: self.leaf.clone(),
            branch: Rc::clone(&self.branch),
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // Build the bounded-depth strategy tower: each level chooses
        // between a leaf and one more level of structure (branch-heavy so
        // nesting actually occurs).
        let mut level = self.leaf.clone();
        for _ in 0..self.depth {
            let deeper = (self.branch)(level);
            level = Union::new(vec![self.leaf.clone(), deeper.clone(), deeper]).boxed();
        }
        level.generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// String strategies from a regex-like pattern (see [`crate::pattern`]).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}
