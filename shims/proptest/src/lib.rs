//! Generation-only, API-compatible stand-in for `proptest` 1.x.
//!
//! Implements the surface this workspace's property tests use: the
//! [`strategy::Strategy`] combinators, range/tuple/string/collection
//! strategies, `any::<T>()`, `prop::{collection, num, sample}`, and the
//! `proptest!` / `prop_oneof!` / `prop_assert*!` macros. Differences from
//! upstream:
//!
//! * **No shrinking** — a failing case reports its index and message; runs
//!   are deterministic (seeded from the test name, override with
//!   `PROPTEST_SEED`), so rerunning reproduces it exactly.
//! * **No rejection/filtering** — `prop_filter` and friends are absent.

pub mod pattern;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the tests use.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// Strategy generating arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `prop::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod num {
    //! Numeric strategies beyond plain ranges.

    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Finite, normal (non-zero, non-subnormal) doubles across the
        /// whole exponent span — mirrors `proptest::num::f64::NORMAL`.
        #[derive(Clone, Copy, Debug)]
        pub struct NormalStrategy;

        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let f = f64::from_bits(rng.next_u64());
                    if f.is_normal() {
                        return f;
                    }
                }
            }
        }
    }
}

pub mod sample {
    //! `prop::sample::select`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Uniformly select one of the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = {
                    let __strategy = $strat;
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng)
                };)+
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err(e) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            e
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Assert inside a proptest body; failure aborts the case (not the whole
/// process) with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+))
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{}\n  both: {:?}", format!($($fmt)+), l);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, String)> {
        (0i64..100, "[a-z]{1,4}").prop_map(|(n, s)| (n, s))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 5i64..10, m in 0usize..3) {
            prop_assert!((5..10).contains(&n));
            prop_assert!(m < 3);
        }

        #[test]
        fn vec_and_select_compose(
            v in prop::collection::vec(prop::sample::select(vec!["a", "b"]), 2..5)
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|s| *s == "a" || *s == "b"));
        }

        #[test]
        fn oneof_flat_map_and_tuples(p in arb_pair(), flag in any::<bool>()) {
            let (n, s) = p;
            prop_assert!(n < 100, "n = {} flag = {}", n, flag);
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            #[allow(dead_code)]
            Node(Vec<Tree>),
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .boxed()
            .prop_recursive(3, 16, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_seed(42);
        let mut saw_node = false;
        for _ in 0..100 {
            if matches!(strat.generate(&mut rng), Tree::Node(_)) {
                saw_node = true;
            }
        }
        assert!(saw_node, "recursion never branched");
    }

    #[test]
    fn failing_case_panics_with_context() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[allow(unused)]
                fn always_fails(n in 0i64..5) {
                    prop_assert!(n > 100, "n was {}", n);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
