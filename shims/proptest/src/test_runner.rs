//! Test configuration, error type, and the deterministic RNG that drives
//! value generation.

use std::fmt;

/// Subset of proptest's `Config`: only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure raised by `prop_assert*` or returned from a test body.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// Assertion failure with message.
    Fail(String),
    /// Case rejected (kept for API parity; the shim never rejects).
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Deterministic splitmix64 stream. Each test derives its seed from the
/// test name (overridable via `PROPTEST_SEED`), so runs are reproducible
/// bit-for-bit; a failing case is replayed by simply rerunning the test.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed for a named test: `PROPTEST_SEED` env var when set, otherwise
    /// an FNV-1a hash of the test name.
    pub fn for_test(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = s.trim().parse::<u64>() {
                return TestRng::from_seed(n);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
