//! Tiny regex-subset string generator backing `"pattern"` strategies.
//!
//! Supports what the workspace's tests use: literal characters, character
//! classes with ranges (`[a-z]`, `[ -~]`), the Unicode
//! "printable" shorthand `\PC`, and `{n}` / `{n,m}` repetition. Unknown
//! escape sequences fall back to the escaped literal.

use crate::test_runner::TestRng;

enum Atom {
    Lit(char),
    /// Inclusive char ranges.
    Class(Vec<(char, char)>),
    /// `\PC`: any printable character (mixed ASCII + multibyte pool).
    AnyPrintable,
}

struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        None => panic!("unterminated character class in pattern {pattern:?}"),
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().expect("range start");
                            let hi = chars.next().expect("range end");
                            assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                            ranges.push((lo, hi));
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                ranges.push((p, p));
                            }
                        }
                    }
                }
                if let Some(p) = prev {
                    ranges.push((p, p));
                }
                assert!(
                    !ranges.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                Atom::Class(ranges)
            }
            '\\' => match chars.next() {
                Some('P') | Some('p') => {
                    // Category shorthand; the only one used is `\PC`
                    // ("not Other" = printable). Consume the category char.
                    chars.next();
                    Atom::AnyPrintable
                }
                Some('n') => Atom::Lit('\n'),
                Some('t') => Atom::Lit('\t'),
                Some(other) => Atom::Lit(other),
                None => panic!("dangling backslash in pattern {pattern:?}"),
            },
            other => Atom::Lit(other),
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for ch in chars.by_ref() {
                if ch == '}' {
                    break;
                }
                spec.push(ch);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repeat min"),
                    hi.trim().parse().expect("bad repeat max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Multibyte / awkward printable characters mixed into `\PC` output so
/// parsers meet non-ASCII input: accented letters, CJK, symbols, an
/// emoji, quotes and backslashes.
const SPICE: &[char] = &[
    'é', 'ß', 'Ω', 'λ', '中', '日', 'क', 'ё', '€', '±', '¿', '🦀', '"', '\'', '\\', '`', '\u{00A0}',
];

fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Lit(c) => *c,
        Atom::Class(ranges) => {
            let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
            let span = hi as u32 - lo as u32 + 1;
            // Some ranges cross the surrogate gap in principle; retry into
            // the valid plane (never triggers for the ASCII classes used).
            loop {
                let v = lo as u32 + rng.below(span as u64) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
        Atom::AnyPrintable => {
            if rng.below(100) < 85 {
                // ASCII space..tilde.
                char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii printable")
            } else {
                SPICE[rng.below(SPICE.len() as u64) as usize]
            }
        }
    }
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
        for _ in 0..n {
            out.push(gen_char(&piece.atom, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_range_respects_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = generate("[a-c]{0,3}", &mut rng);
            assert!(s.len() <= 3);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "bad {s:?}");
        }
    }

    #[test]
    fn ascii_printable_class() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = generate("[ -~]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "bad {s:?}");
        }
    }

    #[test]
    fn printable_shorthand_mixes_unicode() {
        let mut rng = TestRng::from_seed(3);
        let mut saw_non_ascii = false;
        for _ in 0..100 {
            let s = generate("\\PC{0,64}", &mut rng);
            assert!(s.chars().count() <= 64);
            saw_non_ascii |= !s.is_ascii();
        }
        assert!(saw_non_ascii, "expected some non-ASCII output");
    }

    #[test]
    fn fixed_count_and_literals() {
        let mut rng = TestRng::from_seed(4);
        assert_eq!(generate("abc", &mut rng), "abc");
        let s = generate("x[0-9]{3}", &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('x'));
    }
}
