//! Minimal API-compatible stand-in for `rand` 0.8.
//!
//! Deterministic splitmix64-based generators with the `Rng` methods this
//! workspace uses (`gen_range` over integer/float ranges, `gen_bool`) and
//! `seq::SliceRandom::shuffle`. Statistical quality is ample for data
//! generation and tests; this is not a cryptographic RNG.

/// Core RNG: 64 bits at a time.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let raw = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
        }
    }
}

/// Seedable constructor surface.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = splitmix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let raw = sm.to_le_bytes();
            chunk.copy_from_slice(&raw[..chunk.len()]);
            sm = splitmix64(sm);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing RNG methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic splitmix64 stream; stands in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(&seed[..8]);
            StdRng {
                state: splitmix64(u64::from_le_bytes(raw)),
            }
        }
    }

    /// Same stream as [`StdRng`]; provided for API parity.
    pub type SmallRng = StdRng;
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers; only what the workspace uses.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(13);
        let mut b = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let x = a.gen_range(0..100i64);
            assert_eq!(x, b.gen_range(0..100i64));
            assert!((0..100).contains(&x));
        }
        let f = a.gen_range(-180.0..180.0);
        assert!((-180.0..180.0).contains(&f));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut v: Vec<i32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
