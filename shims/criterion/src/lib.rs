//! Minimal API-compatible stand-in for `criterion` 0.5.
//!
//! Wall-clock measurement only: per benchmark it runs a short warm-up,
//! takes `sample_size` timed samples (auto-batching very fast bodies so a
//! sample is long enough to time), and prints `min / median / max` per
//! iteration. No HTML reports, no statistical regression analysis — the
//! numbers are honest and comparable within one run, which is what the
//! repo's figure-regeneration harness needs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.default_sample_size, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(2);
        self
    }

    /// Accepted for API parity; command-line arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Benchmark group mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Per-benchmark timing context handed to the closure.
pub struct Bencher {
    /// Iterations the body should run per sample (auto-tuned).
    batch: u64,
    /// Time spent inside `iter` for the current sample.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Smoke mode (CI `bench-smoke` job): run each benchmark body a couple
    // of times so its built-in correctness assertions execute, without the
    // auto-tuned timing batches. Reported times are meaningless here.
    let smoke = std::env::var_os("SQLGRAPH_BENCH_SMOKE").is_some();
    let samples = if smoke { 2 } else { samples };
    // Warm-up and batch sizing: grow the batch until one sample takes at
    // least ~1ms so Instant resolution doesn't dominate.
    let mut bencher = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
    };
    loop {
        f(&mut bencher);
        if smoke || bencher.elapsed >= Duration::from_millis(1) || bencher.batch >= (1 << 20) {
            break;
        }
        bencher.batch *= 4;
    }
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        f(&mut bencher);
        per_iter.push(bencher.elapsed.as_secs_f64() / bencher.batch as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter.first().copied().unwrap_or(0.0);
    let med = per_iter[per_iter.len() / 2];
    let max = per_iter.last().copied().unwrap_or(0.0);
    println!(
        "{label:<40} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(min),
        fmt_time(med),
        fmt_time(max),
        samples,
        bencher.batch
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects benchmark functions into a runnable group, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point: runs each group from `main`, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("id", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }
}
