//! Property-based tests on engine invariants.
//!
//! * Index-backed point queries always agree with full-scan evaluation of
//!   the same predicate, under arbitrary interleavings of INSERT / UPDATE /
//!   DELETE.
//! * Transactions roll back to exactly the pre-transaction state.
//! * `ORDER BY` output is totally ordered by the sort key.

use proptest::prelude::*;
use sqlgraph_rel::{Database, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, k: i64, s: String },
    Update { id: i64, k: i64 },
    Delete { id: i64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..64, 0i64..8, "[a-c]{0,3}").prop_map(|(id, k, s)| Op::Insert { id, k, s }),
        (0i64..64, 0i64..8).prop_map(|(id, k)| Op::Update { id, k }),
        (0i64..64).prop_map(|id| Op::Delete { id }),
    ]
}

fn fresh_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER, s TEXT)")
        .unwrap();
    db.execute("CREATE INDEX t_k ON t (k)").unwrap();
    db.execute("CREATE INDEX t_k_s ON t (k, s) USING BTREE")
        .unwrap();
    db
}

/// A shadow model: plain vector of (id, k, s).
fn apply(model: &mut Vec<(i64, i64, String)>, db: &Database, op: &Op) {
    match op {
        Op::Insert { id, k, s } => {
            let res = db.execute_with_params(
                "INSERT INTO t VALUES (?, ?, ?)",
                &[Value::Int(*id), Value::Int(*k), Value::str(s)],
            );
            if model.iter().any(|(mid, _, _)| mid == id) {
                assert!(res.is_err(), "duplicate PK must be rejected");
            } else {
                res.unwrap();
                model.push((*id, *k, s.clone()));
            }
        }
        Op::Update { id, k } => {
            let n = db
                .execute_with_params(
                    "UPDATE t SET k = ? WHERE id = ?",
                    &[Value::Int(*k), Value::Int(*id)],
                )
                .unwrap();
            let expected = model.iter().filter(|(mid, _, _)| mid == id).count() as i64;
            assert_eq!(n.scalar(), Some(&Value::Int(expected)));
            for entry in model.iter_mut().filter(|(mid, _, _)| mid == id) {
                entry.1 = *k;
            }
        }
        Op::Delete { id } => {
            let n = db
                .execute_with_params("DELETE FROM t WHERE id = ?", &[Value::Int(*id)])
                .unwrap();
            let expected = model.iter().filter(|(mid, _, _)| mid == id).count() as i64;
            assert_eq!(n.scalar(), Some(&Value::Int(expected)));
            model.retain(|(mid, _, _)| mid != id);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_lookups_agree_with_model(ops in prop::collection::vec(arb_op(), 0..60)) {
        let db = fresh_db();
        let mut model: Vec<(i64, i64, String)> = Vec::new();
        for op in &ops {
            apply(&mut model, &db, op);
        }
        // Point queries on the indexed column agree with the model.
        for k in 0..8i64 {
            let rel = db
                .execute_with_params("SELECT id FROM t WHERE k = ? ORDER BY id", &[Value::Int(k)])
                .unwrap();
            let mut expected: Vec<i64> = model
                .iter()
                .filter(|(_, mk, _)| *mk == k)
                .map(|(id, _, _)| *id)
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(rel.int_column(), expected);
        }
        // Composite key lookups agree too.
        let rel = db.execute("SELECT COUNT(*) FROM t WHERE k = 3 AND s = 'a'").unwrap();
        let expected = model.iter().filter(|(_, k, s)| *k == 3 && s == "a").count() as i64;
        prop_assert_eq!(rel.scalar(), Some(&Value::Int(expected)));
        // Total cardinality.
        let rel = db.execute("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(rel.scalar(), Some(&Value::Int(model.len() as i64)));
    }

    #[test]
    fn transaction_rollback_restores_state(
        setup in prop::collection::vec(arb_op(), 0..20),
        inner in prop::collection::vec(arb_op(), 1..20),
    ) {
        let db = fresh_db();
        let mut model: Vec<(i64, i64, String)> = Vec::new();
        for op in &setup {
            apply(&mut model, &db, op);
        }
        let before = db.execute("SELECT id, k, s FROM t ORDER BY id").unwrap();
        let _ = db.transaction(|tx| {
            for op in &inner {
                // Ignore expected PK violations; keep going.
                let _ = match op {
                    Op::Insert { id, k, s } => tx.execute_with_params(
                        "INSERT INTO t VALUES (?, ?, ?)",
                        &[Value::Int(*id), Value::Int(*k), Value::str(s)],
                    ),
                    Op::Update { id, k } => tx.execute_with_params(
                        "UPDATE t SET k = ? WHERE id = ?",
                        &[Value::Int(*k), Value::Int(*id)],
                    ),
                    Op::Delete { id } => {
                        tx.execute_with_params("DELETE FROM t WHERE id = ?", &[Value::Int(*id)])
                    }
                };
            }
            Err::<(), _>(sqlgraph_rel::Error::RolledBack("prop".into()))
        });
        let after = db.execute("SELECT id, k, s FROM t ORDER BY id").unwrap();
        prop_assert_eq!(before.rows, after.rows);
        // And the indexes still work after rollback.
        for k in 0..8i64 {
            let rel = db
                .execute_with_params("SELECT COUNT(*) FROM t WHERE k = ?", &[Value::Int(k)])
                .unwrap();
            let expected = model.iter().filter(|(_, mk, _)| *mk == k).count() as i64;
            prop_assert_eq!(rel.scalar(), Some(&Value::Int(expected)));
        }
    }

    #[test]
    fn order_by_is_sorted(ops in prop::collection::vec(arb_op(), 0..40)) {
        let db = fresh_db();
        let mut model = Vec::new();
        for op in &ops {
            apply(&mut model, &db, op);
        }
        let rel = db.execute("SELECT k FROM t ORDER BY k DESC").unwrap();
        let ks = rel.int_column();
        for w in ks.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert_eq!(ks.len(), model.len());
    }
}
