//! ORDER BY totality and the NULL-ordering convention.
//!
//! The engine sorts with `Value::total_cmp`, a total order even over inputs
//! SQL comparison treats as *unknown*: NULLs, mixed type classes, and NaN.
//! The user-visible convention under test:
//!
//! * `ASC` (default): NULLs first, then booleans, numbers (NaN last among
//!   them), strings.
//! * `DESC`: the whole ordering reverses, so NULLs come last.
//! * Ties are stable, so output is deterministic across DOP and engine
//!   (batch vs row) settings.

use proptest::prelude::*;
use sqlgraph_rel::{Database, Value};

fn db_with_mixed() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v DOUBLE)")
        .unwrap();
    for (id, v) in [
        (1, Value::Double(2.5)),
        (2, Value::Null),
        (3, Value::Double(-1.0)),
        (4, Value::Double(f64::NAN)),
        (5, Value::Null),
        (6, Value::Double(0.0)),
    ] {
        db.execute_with_params("INSERT INTO t VALUES (?, ?)", &[Value::Int(id), v])
            .unwrap();
    }
    db
}

fn ids(db: &Database, sql: &str) -> Vec<i64> {
    db.execute(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| r[0].as_int().unwrap())
        .collect()
}

#[test]
fn nulls_first_ascending() {
    let db = db_with_mixed();
    // NULLs (ids 2, 5 in insert order) first, then -1.0, 0.0, 2.5, NaN last.
    assert_eq!(
        ids(&db, "SELECT id FROM t ORDER BY v"),
        vec![2, 5, 3, 6, 1, 4]
    );
}

#[test]
fn nulls_last_descending() {
    let db = db_with_mixed();
    // DESC reverses the total order; stable sort keeps the NULL tie (2, 5)
    // in input order.
    assert_eq!(
        ids(&db, "SELECT id FROM t ORDER BY v DESC"),
        vec![4, 1, 6, 3, 2, 5]
    );
}

#[test]
fn mixed_type_classes_rank() {
    let db = Database::new();
    db.execute("CREATE TABLE m (id INTEGER PRIMARY KEY, attr JSON)")
        .unwrap();
    // JSON_VAL yields heterogeneous values — the property-graph store sorts
    // attribute values of mixed type all the time. Exercise the cross-class
    // ranking NULL < BOOLEAN < numbers < TEXT end to end.
    for (id, doc) in [
        (1, r#"{"v":"abc"}"#),
        (2, r#"{"v":7}"#),
        (3, r#"{"v":true}"#),
        (4, r#"{}"#),
        (5, r#"{"v":6.5}"#),
    ] {
        db.execute_with_params(
            "INSERT INTO m VALUES (?, ?)",
            &[
                Value::Int(id),
                Value::json(sqlgraph_json::parse(doc).unwrap()),
            ],
        )
        .unwrap();
    }
    assert_eq!(
        ids(&db, "SELECT id FROM m ORDER BY JSON_VAL(attr, 'v')"),
        vec![4, 3, 5, 2, 1]
    );
}

#[test]
fn order_by_identical_across_engine_settings() {
    let db = db_with_mixed();
    let baseline = db
        .execute("SELECT id, v FROM t ORDER BY v, id DESC")
        .unwrap();
    for batch in [false, true] {
        for dop in [1, 4] {
            db.set_batch_enabled(batch);
            db.set_parallelism(dop);
            let got = db
                .execute("SELECT id, v FROM t ORDER BY v, id DESC")
                .unwrap();
            assert_eq!(got.rows, baseline.rows, "batch={batch} dop={dop}");
        }
    }
}

/// Arbitrary values spanning every class `total_cmp` ranks, including the
/// awkward numbers (NaN, infinities, signed zero).
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        prop_oneof![
            any::<f64>(),
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(-0.0),
        ]
        .prop_map(Value::Double),
        "[a-z]{0,4}".prop_map(Value::str),
    ]
}

proptest! {
    /// `total_cmp` is a genuine total order: antisymmetric and transitive
    /// on arbitrary value triples. `Vec::sort_by` requires this; a lapse
    /// would be a logic error (nondeterministic ORDER BY output).
    #[test]
    fn total_cmp_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        // Transitivity: sort the triple with total_cmp, then check every
        // adjacent and skip pair is consistent.
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.total_cmp(y));
        prop_assert!(v[0].total_cmp(&v[1]) != Ordering::Greater);
        prop_assert!(v[1].total_cmp(&v[2]) != Ordering::Greater);
        prop_assert!(v[0].total_cmp(&v[2]) != Ordering::Greater);
    }

    /// Equal values hash identically (hash joins and DISTINCT group by
    /// hash; ordering and hashing must agree on equality).
    #[test]
    fn equality_implies_hash_equality(a in arb_value(), b in arb_value()) {
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = std::collections::hash_map::DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }
}
