//! End-to-end tests of the SQL engine: DDL, DML, joins, CTE pipelines,
//! lateral VALUES, set ops, aggregates — including the exact query shapes
//! the SQLGraph Gremlin→SQL translation emits.

use sqlgraph_rel::{Database, Value};

fn db_with_people() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE people (id INTEGER PRIMARY KEY, name TEXT, age INTEGER)")
        .unwrap();
    db.execute(
        "INSERT INTO people VALUES (1, 'marko', 29), (2, 'vadas', 27), (3, 'josh', 32), (4, 'peter', 35)",
    )
    .unwrap();
    db.execute("CREATE TABLE knows (src INTEGER, dst INTEGER, weight DOUBLE)")
        .unwrap();
    db.execute("CREATE INDEX knows_src ON knows (src)").unwrap();
    db.execute("INSERT INTO knows VALUES (1, 2, 0.5), (1, 3, 1.0), (3, 4, 0.2)")
        .unwrap();
    db
}

#[test]
fn basic_select_and_filter() {
    let db = db_with_people();
    let rel = db
        .execute("SELECT name FROM people WHERE age > 28 ORDER BY name")
        .unwrap();
    assert_eq!(rel.strings(), ["josh", "marko", "peter"]);
}

#[test]
fn projection_aliases_and_exprs() {
    let db = db_with_people();
    let rel = db
        .execute("SELECT name, age + 1 AS next_age FROM people WHERE id = 1")
        .unwrap();
    assert_eq!(rel.columns, ["name", "next_age"]);
    assert_eq!(rel.rows[0][1], Value::Int(30));
}

#[test]
fn inner_join_comma_style_uses_index() {
    let db = db_with_people();
    let rel = db
        .execute(
            "SELECT p2.name FROM people p1, knows k, people p2 \
             WHERE p1.name = 'marko' AND p1.id = k.src AND k.dst = p2.id ORDER BY p2.name",
        )
        .unwrap();
    assert_eq!(rel.strings(), ["josh", "vadas"]);
}

#[test]
fn explicit_joins_inner_and_left_outer() {
    let db = db_with_people();
    let rel = db
        .execute(
            "SELECT p.name, k.dst FROM people p LEFT OUTER JOIN knows k ON p.id = k.src \
             ORDER BY p.id, k.dst",
        )
        .unwrap();
    // marko has 2 edges, vadas/peter have none (NULL), josh has 1.
    assert_eq!(rel.rows.len(), 5);
    assert_eq!(rel.rows[0][0], Value::str("marko"));
    let vadas_row = rel
        .rows
        .iter()
        .find(|r| r[0] == Value::str("vadas"))
        .unwrap();
    assert!(vadas_row[1].is_null());
}

#[test]
fn cte_pipeline_like_gremlin_translation() {
    // Mirrors Figure 7: each CTE consumes the previous one's `val` column.
    let db = db_with_people();
    let rel = db
        .execute(
            "WITH temp_1 AS (SELECT id AS val FROM people WHERE name = 'marko'), \
             temp_2 AS (SELECT k.dst AS val FROM temp_1 v, knows k WHERE v.val = k.src), \
             temp_3 AS (SELECT DISTINCT val FROM temp_2) \
             SELECT COUNT(*) FROM temp_3",
        )
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(2)));
}

#[test]
fn lateral_table_values_unnest() {
    // The paper's device for turning hash-bucket column triads back into rows.
    let db = Database::new();
    db.execute("CREATE TABLE opa (vid INTEGER PRIMARY KEY, val0 INTEGER, val1 INTEGER)")
        .unwrap();
    db.execute("INSERT INTO opa VALUES (1, 10, 20), (2, 30, NULL)")
        .unwrap();
    let rel = db
        .execute(
            "SELECT t.val FROM opa p, TABLE(VALUES(p.val0),(p.val1)) AS t(val) \
             WHERE t.val IS NOT NULL ORDER BY t.val",
        )
        .unwrap();
    assert_eq!(rel.int_column(), [10, 20, 30]);
}

#[test]
fn union_all_and_distinct_set_ops() {
    let db = db_with_people();
    let rel = db
        .execute("SELECT id FROM people WHERE id <= 2 UNION ALL SELECT id FROM people WHERE id = 2")
        .unwrap();
    assert_eq!(rel.rows.len(), 3);
    let rel = db
        .execute("SELECT id FROM people WHERE id <= 2 UNION SELECT id FROM people WHERE id = 2")
        .unwrap();
    assert_eq!(rel.rows.len(), 2);
    let rel = db
        .execute("SELECT id FROM people INTERSECT SELECT src FROM knows")
        .unwrap();
    let mut ids = rel.int_column();
    ids.sort_unstable();
    assert_eq!(ids, [1, 3]);
    let rel = db
        .execute("SELECT id FROM people EXCEPT SELECT src FROM knows")
        .unwrap();
    let mut ids = rel.int_column();
    ids.sort_unstable();
    assert_eq!(ids, [2, 4]);
}

#[test]
fn aggregates_group_by_having() {
    let db = db_with_people();
    let rel = db
        .execute(
            "SELECT src, COUNT(*) AS n, SUM(weight) AS total FROM knows GROUP BY src \
             HAVING COUNT(*) > 1",
        )
        .unwrap();
    assert_eq!(rel.rows.len(), 1);
    assert_eq!(rel.rows[0][0], Value::Int(1));
    assert_eq!(rel.rows[0][1], Value::Int(2));
    assert_eq!(rel.rows[0][2], Value::Double(1.5));
}

#[test]
fn scalar_aggregates_over_empty_input() {
    let db = db_with_people();
    let rel = db
        .execute("SELECT COUNT(*), MIN(age), AVG(age) FROM people WHERE id > 99")
        .unwrap();
    assert_eq!(rel.rows.len(), 1);
    assert_eq!(rel.rows[0][0], Value::Int(0));
    assert!(rel.rows[0][1].is_null());
    assert!(rel.rows[0][2].is_null());
}

#[test]
fn count_distinct() {
    let db = db_with_people();
    let rel = db.execute("SELECT COUNT(DISTINCT src) FROM knows").unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(2)));
}

#[test]
fn in_list_and_in_subquery() {
    let db = db_with_people();
    let rel = db
        .execute("SELECT name FROM people WHERE id IN (1, 3) ORDER BY id")
        .unwrap();
    assert_eq!(rel.strings(), ["marko", "josh"]);
    let rel = db
        .execute("SELECT name FROM people WHERE id NOT IN (SELECT dst FROM knows) ORDER BY id")
        .unwrap();
    assert_eq!(rel.strings(), ["marko"]);
}

#[test]
fn like_and_between() {
    let db = db_with_people();
    let rel = db
        .execute("SELECT name FROM people WHERE name LIKE '%o' ORDER BY name")
        .unwrap();
    assert_eq!(rel.strings(), ["marko"]);
    let rel = db
        .execute("SELECT name FROM people WHERE age BETWEEN 27 AND 29 ORDER BY age")
        .unwrap();
    assert_eq!(rel.strings(), ["vadas", "marko"]);
}

#[test]
fn limit_offset_and_order_desc() {
    let db = db_with_people();
    let rel = db
        .execute("SELECT name FROM people ORDER BY age DESC LIMIT 2 OFFSET 1")
        .unwrap();
    assert_eq!(rel.strings(), ["josh", "marko"]);
}

#[test]
fn json_column_and_json_val() {
    let db = Database::new();
    db.execute("CREATE TABLE va (vid INTEGER PRIMARY KEY, attr JSON)")
        .unwrap();
    let doc = sqlgraph_json::parse(r#"{"name":"marko","age":29,"lang":null}"#).unwrap();
    db.execute_with_params(
        "INSERT INTO va VALUES (?, ?)",
        &[Value::Int(1), Value::json(doc)],
    )
    .unwrap();
    let rel = db
        .execute("SELECT JSON_VAL(attr, 'age') FROM va WHERE JSON_VAL(attr, 'name') = 'marko'")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(29)));
    // Missing key and JSON null both surface as SQL NULL.
    let rel = db
        .execute("SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, 'lang') IS NULL")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(1)));
}

#[test]
fn path_arrays_concat_and_subscript() {
    let db = db_with_people();
    let rel = db
        .execute(
            "WITH t0 AS (SELECT id AS val, ARRAY() AS path FROM people WHERE name = 'marko'), \
             t1 AS (SELECT k.dst AS val, (v.path || v.val) AS path FROM t0 v, knows k WHERE v.val = k.src) \
             SELECT val, path[0] FROM t1 ORDER BY val",
        )
        .unwrap();
    assert_eq!(rel.rows.len(), 2);
    assert_eq!(rel.rows[0][1], Value::Int(1));
}

#[test]
fn update_and_delete_with_index_targeting() {
    let db = db_with_people();
    let n = db
        .execute("UPDATE people SET age = age + 1 WHERE id = 1")
        .unwrap();
    assert_eq!(n.scalar(), Some(&Value::Int(1)));
    let rel = db.execute("SELECT age FROM people WHERE id = 1").unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(30)));

    // After the update: marko 30, vadas 27, josh 32, peter 35.
    let n = db.execute("DELETE FROM people WHERE age > 30").unwrap();
    assert_eq!(n.scalar(), Some(&Value::Int(2)));
    assert_eq!(db.table_len("people").unwrap(), 2);
}

#[test]
fn delete_count_is_exact() {
    let db = db_with_people();
    let n = db.execute("DELETE FROM people WHERE age > 30").unwrap();
    assert_eq!(n.scalar(), Some(&Value::Int(2)));
    assert_eq!(db.table_len("people").unwrap(), 2);
}

#[test]
fn insert_select_and_column_lists() {
    let db = db_with_people();
    db.execute("CREATE TABLE names (id INTEGER, name TEXT)")
        .unwrap();
    db.execute("INSERT INTO names SELECT id, name FROM people WHERE age < 30")
        .unwrap();
    assert_eq!(db.table_len("names").unwrap(), 2);
    db.execute("INSERT INTO names (name) VALUES ('ghost')")
        .unwrap();
    let rel = db
        .execute("SELECT id FROM names WHERE name = 'ghost'")
        .unwrap();
    assert!(rel.rows[0][0].is_null());
}

#[test]
fn unique_index_rejects_duplicates() {
    let db = db_with_people();
    let err = db
        .execute("INSERT INTO people VALUES (1, 'dup', 0)")
        .unwrap_err();
    assert!(err.to_string().contains("unique"));
    // Table unchanged.
    assert_eq!(db.table_len("people").unwrap(), 4);
}

#[test]
fn statement_atomicity_on_midway_failure() {
    let db = db_with_people();
    // Second row violates the PK; the first must be rolled back.
    let err = db.execute("INSERT INTO people VALUES (10, 'a', 1), (1, 'dup', 2)");
    assert!(err.is_err());
    assert_eq!(db.table_len("people").unwrap(), 4);
    let rel = db
        .execute("SELECT COUNT(*) FROM people WHERE id = 10")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(0)));
}

#[test]
fn transactions_commit_and_rollback() {
    let db = db_with_people();
    // Committed transaction.
    db.transaction(|tx| {
        tx.execute("INSERT INTO people VALUES (5, 'ripple', 1)")?;
        tx.execute("UPDATE people SET age = 99 WHERE id = 5")?;
        Ok(())
    })
    .unwrap();
    assert_eq!(db.table_len("people").unwrap(), 5);

    // Rolled-back transaction: all statements undone.
    let r: Result<(), _> = db.transaction(|tx| {
        tx.execute("DELETE FROM people WHERE id = 5")?;
        tx.execute("INSERT INTO people VALUES (6, 'gone', 1)")?;
        Err(sqlgraph_rel::Error::RolledBack("test".into()))
    });
    assert!(r.is_err());
    assert_eq!(db.table_len("people").unwrap(), 5);
    let rel = db.execute("SELECT name FROM people WHERE id = 5").unwrap();
    assert_eq!(rel.strings(), ["ripple"]);
}

#[test]
fn stored_procedures_share_the_transaction() {
    let db = db_with_people();
    db.register_procedure(
        "add_pair",
        std::sync::Arc::new(|tx: &mut sqlgraph_rel::Txn<'_>, args: &[Value]| {
            let a = args[0].clone();
            tx.execute_with_params(
                "INSERT INTO people VALUES (?, 'proc', 0)",
                std::slice::from_ref(&a),
            )?;
            // Second insert intentionally violates the PK when a == 1.
            tx.execute_with_params(
                "INSERT INTO people VALUES (?, 'proc2', 0)",
                &[Value::Int(1)],
            )
        }),
    );
    // Failure path: both inserts rolled back.
    assert!(db.execute("CALL add_pair(50)").is_err());
    assert_eq!(db.table_len("people").unwrap(), 4);
}

#[test]
fn parameters_positional() {
    let db = db_with_people();
    let rel = db
        .execute_with_params(
            "SELECT name FROM people WHERE age > ? AND age < ?",
            &[Value::Int(28), Value::Int(33)],
        )
        .unwrap();
    let mut names = rel.strings();
    names.sort();
    assert_eq!(names, ["josh", "marko"]);
}

#[test]
fn table_less_select() {
    let db = Database::new();
    let rel = db.execute("SELECT 1 + 2 AS three, 'x'").unwrap();
    assert_eq!(rel.rows[0][0], Value::Int(3));
    assert_eq!(rel.rows[0][1], Value::str("x"));
}

#[test]
fn wal_recovery_round_trip() {
    let mut path = std::env::temp_dir();
    path.push(format!("sqlgraph-rel-recovery-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
            .unwrap();
        db.execute("CREATE INDEX t_v ON t (v)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
            .unwrap();
        db.execute("UPDATE t SET v = 'z' WHERE id = 2").unwrap();
        db.execute("DELETE FROM t WHERE id = 3").unwrap();
    }
    {
        let db = Database::open(&path).unwrap();
        let rel = db.execute("SELECT v FROM t ORDER BY id").unwrap();
        assert_eq!(rel.strings(), ["a", "z"]);
        // Indexes were rebuilt by DDL replay.
        let rel = db.execute("SELECT id FROM t WHERE v = 'z'").unwrap();
        assert_eq!(rel.int_column(), [2]);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn rolled_back_changes_never_hit_the_wal() {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "sqlgraph-rel-rollback-wal-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    {
        let db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
        let _ = db.transaction(|tx| {
            tx.execute("INSERT INTO t VALUES (2)")?;
            Err::<(), _>(sqlgraph_rel::Error::RolledBack("nope".into()))
        });
    }
    {
        let db = Database::open(&path).unwrap();
        assert_eq!(db.table_len("t").unwrap(), 1);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn composite_index_join_strategy() {
    // The (INV, LBL) composite index pattern from the paper's EA table.
    let db = Database::new();
    db.execute("CREATE TABLE ea (eid INTEGER PRIMARY KEY, inv INTEGER, outv INTEGER, lbl TEXT)")
        .unwrap();
    db.execute("CREATE INDEX ea_inv_lbl ON ea (inv, lbl)")
        .unwrap();
    for i in 0..100 {
        db.execute_with_params(
            "INSERT INTO ea VALUES (?, ?, ?, ?)",
            &[
                Value::Int(i),
                Value::Int(i % 10),
                Value::Int(i % 7),
                Value::str(if i % 2 == 0 { "knows" } else { "likes" }),
            ],
        )
        .unwrap();
    }
    db.execute("CREATE TABLE seeds (val INTEGER)").unwrap();
    db.execute("INSERT INTO seeds VALUES (3)").unwrap();
    let rel = db
        .execute(
            "SELECT p.outv FROM seeds v, ea p WHERE v.val = p.inv AND p.lbl = 'likes' ORDER BY p.eid",
        )
        .unwrap();
    // inv = 3 happens for eids 3,13,...,93; 'likes' = odd eids: 3,13,33,43,53,63,73,83,93 odd ones.
    assert!(!rel.rows.is_empty());
    for row in &rel.rows {
        assert!(row[0].as_int().is_some());
    }
    // Cross-check against a scan-only equivalent query.
    let expect = db
        .execute("SELECT p.outv FROM ea p WHERE p.inv = 3 AND p.lbl = 'likes' ORDER BY p.eid")
        .unwrap();
    assert_eq!(rel.rows, expect.rows);
}

#[test]
fn table_wildcard_and_qualified_star() {
    let db = db_with_people();
    let rel = db
        .execute("SELECT p.* FROM people p, knows k WHERE p.id = k.src AND k.dst = 4")
        .unwrap();
    assert_eq!(rel.columns, ["id", "name", "age"]);
    assert_eq!(rel.rows.len(), 1);
    assert_eq!(rel.rows[0][1], Value::str("josh"));
}

#[test]
fn ambiguous_column_is_an_error() {
    let db = db_with_people();
    db.execute("CREATE TABLE other (id INTEGER)").unwrap();
    let err = db.execute("SELECT id FROM people, other").unwrap_err();
    assert!(err.to_string().contains("ambiguous"));
}

#[test]
fn drop_table() {
    let db = db_with_people();
    db.execute("DROP TABLE knows").unwrap();
    assert!(db.execute("SELECT * FROM knows").is_err());
    assert!(db.execute("DROP TABLE knows").is_err());
    db.execute("DROP TABLE IF EXISTS knows").unwrap();
}

#[test]
fn lateral_json_edges_unnest() {
    // JSON-adjacency traversal: the Figure 2c representation.
    let db = Database::new();
    db.execute("CREATE TABLE ja (vid INTEGER PRIMARY KEY, edges JSON)")
        .unwrap();
    let doc = sqlgraph_json::parse(
        r#"{"knows":[{"eid":7,"val":2},{"eid":8,"val":4}],"created":[{"eid":9,"val":3}]}"#,
    )
    .unwrap();
    db.execute_with_params(
        "INSERT INTO ja VALUES (?, ?)",
        &[Value::Int(1), Value::json(doc)],
    )
    .unwrap();
    let rel = db
        .execute(
            "SELECT t.val FROM ja p, TABLE(JSON_EDGES(p.edges)) AS t(lbl, eid, val) \
             WHERE p.vid = 1 ORDER BY t.val",
        )
        .unwrap();
    assert_eq!(rel.int_column(), [2, 3, 4]);
    let rel = db
        .execute(
            "SELECT t.eid FROM ja p, TABLE(JSON_EDGES(p.edges, 'knows')) AS t(lbl, eid, val) \
             ORDER BY t.eid",
        )
        .unwrap();
    assert_eq!(rel.int_column(), [7, 8]);
}

#[test]
fn lateral_unnest_array() {
    let db = Database::new();
    let rel = db
        .execute(
            "SELECT t.val FROM (SELECT ARRAY(1, 2, 3) AS a) s, TABLE(UNNEST(s.a)) AS t(val) \
             ORDER BY t.val",
        )
        .unwrap();
    assert_eq!(rel.int_column(), [1, 2, 3]);
}

#[test]
fn functional_index_on_json_member() {
    // The paper's "specialized indexes for attributes" (§3.3): an index on
    // JSON_VAL(attr, 'name') must serve equality lookups and joins.
    let db = Database::new();
    db.execute("CREATE TABLE va (vid INTEGER PRIMARY KEY, attr JSON)")
        .unwrap();
    for i in 0..500i64 {
        let doc = sqlgraph_json::parse(&format!(
            r#"{{"name":"person-{}","age":{}}}"#,
            i % 50,
            i % 90
        ))
        .unwrap();
        db.execute_with_params(
            "INSERT INTO va VALUES (?, ?)",
            &[Value::Int(i), Value::json(doc)],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX va_name ON va (JSON_VAL(attr, 'name'))")
        .unwrap();

    let rel = db
        .execute("SELECT vid FROM va WHERE JSON_VAL(attr, 'name') = 'person-7' ORDER BY vid")
        .unwrap();
    assert_eq!(rel.rows.len(), 10);
    assert_eq!(rel.int_column()[0], 7);

    // Functional index also serves probe joins.
    db.execute("CREATE TABLE seeds (n TEXT)").unwrap();
    db.execute("INSERT INTO seeds VALUES ('person-3'), ('person-7')")
        .unwrap();
    let rel = db
        .execute("SELECT COUNT(*) FROM seeds s, va p WHERE JSON_VAL(p.attr, 'name') = s.n")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(20)));

    // Stays consistent under updates.
    let doc = sqlgraph_json::parse(r#"{"name":"renamed"}"#).unwrap();
    db.execute_with_params("UPDATE va SET attr = ? WHERE vid = 7", &[Value::json(doc)])
        .unwrap();
    let rel = db
        .execute("SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, 'name') = 'person-7'")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(9)));
    let rel = db
        .execute("SELECT vid FROM va WHERE JSON_VAL(attr, 'name') = 'renamed'")
        .unwrap();
    assert_eq!(rel.int_column(), [7]);
    // And under deletes.
    db.execute("DELETE FROM va WHERE vid = 57").unwrap();
    let rel = db
        .execute("SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, 'name') = 'person-7'")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(8)));
}

#[test]
fn functional_index_survives_wal_recovery() {
    let mut path = std::env::temp_dir();
    path.push(format!("sqlgraph-rel-funcidx-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let db = Database::open(&path).unwrap();
        db.execute("CREATE TABLE va (vid INTEGER PRIMARY KEY, attr JSON)")
            .unwrap();
        db.execute("CREATE INDEX va_k ON va (JSON_VAL(attr, 'k'))")
            .unwrap();
        let doc = sqlgraph_json::parse(r#"{"k":"x"}"#).unwrap();
        db.execute_with_params("INSERT INTO va VALUES (1, ?)", &[Value::json(doc)])
            .unwrap();
    }
    {
        let db = Database::open(&path).unwrap();
        let rel = db
            .execute("SELECT vid FROM va WHERE JSON_VAL(attr, 'k') = 'x'")
            .unwrap();
        assert_eq!(rel.int_column(), [1]);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn explain_reports_access_paths() {
    let db = db_with_people();
    // Index nested-loop join expected on knows.src.
    let rel = db
        .execute(
            "EXPLAIN SELECT p2.name FROM people p1, knows k, people p2 \
             WHERE p1.id = 1 AND p1.id = k.src AND k.dst = p2.id",
        )
        .unwrap();
    let plan = rel.strings().join("\n");
    assert!(
        plan.contains("index"),
        "expected an index access path:\n{plan}"
    );
    assert!(
        plan.contains("result:"),
        "plan ends with result row:\n{plan}"
    );

    // Full scan reported when no index applies.
    let rel = db
        .execute("EXPLAIN SELECT * FROM people WHERE age > 1")
        .unwrap();
    let plan = rel.strings().join("\n");
    assert!(plan.contains("full scan"), "expected a full scan:\n{plan}");
}

#[test]
fn btree_range_pushdown() {
    let db = Database::new();
    db.execute("CREATE TABLE m (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    for i in 0..1000i64 {
        db.execute_with_params(
            "INSERT INTO m VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i * 2)],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX m_v ON m (v) USING BTREE").unwrap();
    // Range predicates must be served by the B-tree, visible in EXPLAIN.
    let plan = db
        .execute("EXPLAIN SELECT id FROM m WHERE v >= 100 AND v < 120")
        .unwrap()
        .strings()
        .join("\n");
    assert!(plan.contains("range scan via index m_v"), "{plan}");
    // And the results are exact, including the exclusive upper bound.
    let rel = db
        .execute("SELECT id FROM m WHERE v >= 100 AND v < 120 ORDER BY id")
        .unwrap();
    assert_eq!(rel.int_column(), (50..60).collect::<Vec<i64>>());
    // One-sided ranges.
    let rel = db.execute("SELECT COUNT(*) FROM m WHERE v > 1990").unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(4)));
    // BETWEEN desugars into the same pushdown.
    let plan = db
        .execute("EXPLAIN SELECT id FROM m WHERE v BETWEEN 10 AND 20")
        .unwrap()
        .strings()
        .join("\n");
    assert!(plan.contains("range scan"), "{plan}");
}

#[test]
fn functional_btree_range_on_json() {
    let db = Database::new();
    db.execute("CREATE TABLE va (vid INTEGER PRIMARY KEY, attr JSON)")
        .unwrap();
    for i in 0..200i64 {
        let doc = sqlgraph_json::parse(&format!(r#"{{"bucket":{i}}}"#)).unwrap();
        db.execute_with_params(
            "INSERT INTO va VALUES (?, ?)",
            &[Value::Int(i), Value::json(doc)],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX va_bucket ON va (JSON_VAL(attr, 'bucket')) USING BTREE")
        .unwrap();
    let plan = db
        .execute(
            "EXPLAIN SELECT vid FROM va WHERE JSON_VAL(attr, 'bucket') >= 0 \
             AND JSON_VAL(attr, 'bucket') < 50",
        )
        .unwrap()
        .strings()
        .join("\n");
    assert!(plan.contains("range scan via index va_bucket"), "{plan}");
    let rel = db
        .execute(
            "SELECT COUNT(*) FROM va WHERE JSON_VAL(attr, 'bucket') >= 0 \
             AND JSON_VAL(attr, 'bucket') < 50",
        )
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(50)));
}
