//! Crash-matrix recovery tests: every durability claim in `rel::wal` /
//! `rel::checkpoint` is checked by actually crashing at every mutating
//! file-system operation and reopening.
//!
//! The harness runs a workload once on a clean [`SimFs`] to enumerate its
//! operation sequence, then re-runs it from scratch once per (operation,
//! fault) pair. After each induced crash it "reboots" the file system
//! (rolling every file back to what a real disk would hold), reopens the
//! database, and asserts the recovered state equals a *commit-prefix
//! consistent* reference:
//!
//! * no acked transaction is lost (fsync-on-commit was on and honest),
//! * no unacked transaction appears unless its bytes fully reached disk
//!   (the in-flight commit may legitimately survive a crash),
//! * no partial transaction is ever visible, and
//! * the reopened database accepts and persists new commits (the recovered
//!   log tail is appendable).
//!
//! `SQLGRAPH_CRASH_SEED=<u64>` pins the randomized-workload test to a
//! single seed for verbatim local reproduction of a CI failure.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgraph_rel::wal::{segment_path, Wal, WalRecord};
use sqlgraph_rel::{Database, Fault, FaultKind, SimFs, Value, Vfs};

/// One step of a workload: a transaction's statements, or a checkpoint.
#[derive(Debug, Clone)]
enum Step {
    Txn(Vec<String>),
    Checkpoint,
}

fn txn(stmts: &[&str]) -> Step {
    Step::Txn(stmts.iter().map(|s| s.to_string()).collect())
}

/// Logical database state: table name → slab rows *with their physical
/// row ids*. Comparing ids as well as values asserts that recovery
/// preserves physical row identity and scan order, not just content.
type State = BTreeMap<String, Vec<(usize, Vec<Value>)>>;

fn dump(db: &Database) -> State {
    db.table_names()
        .into_iter()
        .map(|name| {
            let t = db.read_table(&name).unwrap();
            let rows = t.iter().map(|(id, r)| (id, r.to_vec())).collect();
            (name, rows)
        })
        .collect()
}

fn apply_txn(db: &Database, stmts: &[String]) -> sqlgraph_rel::Result<()> {
    db.transaction(|tx| {
        for s in stmts {
            tx.execute(s)?;
        }
        Ok(())
    })
}

/// Reference state after applying exactly the transactions whose indices
/// appear in `include`, in workload order, on an in-memory database (no
/// WAL, no faults). A transaction that errored at *commit* still executed
/// cleanly, so replaying its SQL here reproduces its WAL records' effect.
fn state_for(steps: &[Step], include: &[usize]) -> State {
    let db = Database::new();
    let mut ti = 0;
    for step in steps {
        if let Step::Txn(stmts) = step {
            if include.contains(&ti) {
                apply_txn(&db, stmts).expect("reference workload must be valid");
            }
            ti += 1;
        }
    }
    dump(&db)
}

/// What a faulted run acked and where it first failed.
struct RunResult {
    /// Indices of transactions that returned `Ok`. After the first failure
    /// only *effect-free* transactions (empty redo: nothing touches the
    /// WAL) can still ack — everything effectful fails on the poisoned log
    /// or the downed file system.
    acked: Vec<usize>,
    /// First transaction that returned `Err` — the only one whose bytes
    /// can be (partially or fully) on disk without an ack.
    first_err: Option<usize>,
}

impl RunResult {
    /// The states recovery may legally land on. Always: exactly the acked
    /// set. With `in_flight`: also acked-before-the-failure plus the failed
    /// transaction (its commit batch may have fully reached disk). With
    /// `lost_last`: also the acked set minus its last member (a dropped
    /// fsync means the disk lied about that one).
    fn candidates(&self, steps: &[Step], in_flight: bool, lost_last: bool) -> Vec<State> {
        let mut cands = vec![state_for(steps, &self.acked)];
        if in_flight {
            if let Some(i) = self.first_err {
                let mut inc: Vec<usize> = self.acked.iter().copied().filter(|&a| a < i).collect();
                inc.push(i);
                cands.push(state_for(steps, &inc));
            }
        }
        if lost_last {
            if let Some((_, rest)) = self.acked.split_last() {
                cands.push(state_for(steps, rest));
            }
        }
        cands
    }
}

/// Run the workload against a WAL-backed database on `fs`. Every step is
/// attempted even after a failure (a crashed fs just errors).
fn run_steps(fs: &SimFs, base: &Path, steps: &[Step]) -> RunResult {
    let mut res = RunResult {
        acked: Vec::new(),
        first_err: None,
    };
    let db = match Database::open_with_vfs(base, Arc::new(fs.clone())) {
        Ok(db) => db,
        Err(_) => return res,
    };
    db.set_sync_on_commit(true);
    let mut ti = 0;
    for step in steps {
        match step {
            Step::Txn(stmts) => {
                match apply_txn(&db, stmts) {
                    Ok(()) => res.acked.push(ti),
                    Err(_) => {
                        res.first_err.get_or_insert(ti);
                    }
                }
                ti += 1;
            }
            // Checkpoint failure is not a transaction failure: commits
            // continue on the old segment.
            Step::Checkpoint => {
                let _ = db.checkpoint();
            }
        }
    }
    res
}

/// Reopen after a (simulated) reboot and assert the recovered state equals
/// one of `candidates`. Then commit a probe row and reopen again, proving
/// the recovered log accepts and persists appends.
fn check_recovery(fs: &SimFs, base: &Path, candidates: &[State], context: &str) {
    let trace = fs.trace();
    fs.recover();
    let db = Database::open_with_vfs(base, Arc::new(fs.clone())).unwrap_or_else(|e| {
        panic!(
            "recovery must not fail ({context}): {e}\ntrace:\n{}",
            trace.join("\n")
        )
    });
    let got = dump(&db);
    let matched = candidates
        .iter()
        .find(|c| **c == got)
        .unwrap_or_else(|| {
            panic!(
                "recovered state is not commit-consistent ({context})\n\
                 got: {got:?}\ncandidates: {candidates:?}\ntrace:\n{}",
                trace.join("\n")
            )
        })
        .clone();
    // Stray checkpoint temp files must not survive recovery.
    let tmp = PathBuf::from(format!("{}.ckpt.tmp", base.display()));
    assert!(
        !fs.exists(&tmp),
        "stray snapshot temp file after recovery ({context})"
    );

    // The recovered database must keep working: a fresh commit must
    // survive another clean reopen, and the pre-probe tables must be
    // byte-identical afterwards (the truncated tail was really truncated).
    db.set_sync_on_commit(true);
    db.execute("CREATE TABLE probe (x INTEGER)").unwrap();
    db.execute("INSERT INTO probe VALUES (42)").unwrap();
    drop(db);
    let db = Database::open_with_vfs(base, Arc::new(fs.clone())).unwrap();
    let mut expected = matched;
    expected.insert("probe".into(), vec![(0, vec![Value::Int(42)])]);
    assert_eq!(
        dump(&db),
        expected,
        "probe commit lost or pre-probe state changed after reopen ({context})"
    );
}

/// Number of transactions in a workload.
fn txn_count(steps: &[Step]) -> usize {
    steps.iter().filter(|s| matches!(s, Step::Txn(_))).count()
}

/// Fault-free discovery run: returns the op count and sanity-checks that
/// the workload commits everything.
fn discover_ops(base: &Path, steps: &[Step]) -> (u64, Vec<String>) {
    let fs = SimFs::new();
    let res = run_steps(&fs, base, steps);
    assert_eq!(
        res.acked.len(),
        txn_count(steps),
        "clean run must ack every transaction"
    );
    assert!(res.first_err.is_none());
    (fs.op_count(), fs.trace())
}

/// Crash at every operation with every torn-tail size in `keep_tails`.
fn crash_matrix(steps: &[Step], keep_tails: &[usize]) {
    let base = PathBuf::from("db.wal");
    let (total_ops, _) = discover_ops(&base, steps);
    assert!(total_ops > 0);
    for at_op in 0..total_ops {
        for &keep_tail in keep_tails {
            let fs = SimFs::new();
            fs.schedule_fault(Fault {
                at_op,
                kind: FaultKind::Crash { keep_tail },
            });
            let res = run_steps(&fs, &base, steps);
            assert!(fs.crashed(), "crash fault at op {at_op} never fired");
            // No acked txn may be lost; the in-flight txn may survive only
            // if its bytes fully reached disk, which requires a surviving
            // torn tail.
            let candidates = res.candidates(steps, keep_tail > 0, false);
            check_recovery(
                &fs,
                &base,
                &candidates,
                &format!("crash at op {at_op}, keep_tail {keep_tail}"),
            );
        }
    }
}

/// Fail (transiently) every operation, then reopen twice: once after a
/// simulated power loss (unsynced bytes gone — the errored commit must
/// vanish) and once more cleanly (the errored commit's bytes may have
/// reached the file intact: an errored commit is *indeterminate*, and
/// either outcome must be a consistent prefix).
fn fail_op_matrix(steps: &[Step]) {
    let base = PathBuf::from("db.wal");
    let (total_ops, _) = discover_ops(&base, steps);
    for at_op in 0..total_ops {
        // Scenario A: power loss right after the run. The errored commit's
        // bytes were never synced, so only the acked set may survive.
        let fs = SimFs::new();
        fs.schedule_fault(Fault {
            at_op,
            kind: FaultKind::FailOp,
        });
        let res = run_steps(&fs, &base, steps);
        let candidates = res.candidates(steps, false, false);
        check_recovery(
            &fs,
            &base,
            &candidates,
            &format!("fail-op at op {at_op} + power loss"),
        );

        // Scenario B: clean process restart, page cache intact — the
        // errored commit may have reached the file whole (indeterminate).
        let fs = SimFs::new();
        fs.schedule_fault(Fault {
            at_op,
            kind: FaultKind::FailOp,
        });
        let res = run_steps(&fs, &base, steps);
        // No recover(): reopen sees everything written, synced or not.
        let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
        let got = dump(&db);
        let candidates = res.candidates(steps, true, false);
        assert!(
            candidates.contains(&got),
            "clean reopen after fail-op at {at_op}: state is not commit-consistent\n\
             got: {got:?}\ncandidates: {candidates:?}"
        );
    }
}

/// Drop each honest WAL fsync, then crash at every later operation. The
/// falsely-acked transaction may be lost (the disk lied), but recovery
/// must still land on a consistent commit prefix and never resurrect
/// anything beyond what was attempted.
fn drop_sync_matrix(steps: &[Step]) {
    let base = PathBuf::from("db.wal");
    let (total_ops, trace) = discover_ops(&base, steps);
    let sync_ops: Vec<u64> = trace
        .iter()
        .enumerate()
        // Only WAL-segment syncs: dropping the checkpoint temp file's sync
        // means the *snapshot* is corrupt after a crash, which is
        // unrecoverable by design (old segments are already retired).
        .filter(|(_, line)| line.contains(" sync ") && !line.contains(".ckpt"))
        .map(|(i, _)| i as u64)
        .collect();
    assert!(!sync_ops.is_empty());
    for &sync_op in &sync_ops {
        for at_op in (sync_op + 1)..total_ops {
            let fs = SimFs::new();
            fs.schedule_fault(Fault {
                at_op: sync_op,
                kind: FaultKind::DropSync,
            });
            fs.schedule_fault(Fault {
                at_op,
                kind: FaultKind::Crash { keep_tail: 0 },
            });
            let res = run_steps(&fs, &base, steps);
            assert!(fs.crashed());
            // The falsely-synced (last acked) txn may be lost; the torn
            // tail keeps nothing, so the in-flight txn cannot appear.
            let candidates = res.candidates(steps, false, true);
            check_recovery(
                &fs,
                &base,
                &candidates,
                &format!("dropped sync at op {sync_op}, crash at op {at_op}"),
            );
        }
    }
}

/// The scripted 3-transaction workload from the acceptance criteria:
/// DDL + inserts, an update + insert, a delete + update + insert — all
/// index-maintained, with duplicate row images in play.
fn scripted_workload() -> Vec<Step> {
    vec![
        txn(&[
            "CREATE TABLE acct (id INTEGER, owner TEXT, bal INTEGER)",
            "CREATE INDEX acct_id ON acct (id)",
            "INSERT INTO acct VALUES (1, 'ada', 100), (2, 'bob', 50), (3, 'cy', 50)",
        ]),
        txn(&[
            "UPDATE acct SET bal = 70 WHERE id = 1",
            "INSERT INTO acct VALUES (4, 'dee', 50)",
        ]),
        txn(&[
            "DELETE FROM acct WHERE id = 2",
            "UPDATE acct SET bal = 0 WHERE id = 3",
            "INSERT INTO acct VALUES (5, 'eve', 50)",
        ]),
    ]
}

/// Same workload with a checkpoint between T2 and T3, so the matrix also
/// crashes inside every checkpoint step (temp-file create, write, sync,
/// rename, old-segment retirement).
fn scripted_workload_with_checkpoint() -> Vec<Step> {
    let mut steps = scripted_workload();
    steps.insert(2, Step::Checkpoint);
    steps
}

#[test]
fn crash_matrix_scripted() {
    crash_matrix(&scripted_workload(), &[0, 1, 13, usize::MAX]);
}

#[test]
fn crash_matrix_scripted_with_checkpoint() {
    crash_matrix(
        &scripted_workload_with_checkpoint(),
        &[0, 1, 13, usize::MAX],
    );
}

#[test]
fn fail_op_matrix_scripted() {
    fail_op_matrix(&scripted_workload());
    fail_op_matrix(&scripted_workload_with_checkpoint());
}

#[test]
fn drop_sync_matrix_scripted() {
    drop_sync_matrix(&scripted_workload());
    drop_sync_matrix(&scripted_workload_with_checkpoint());
}

// ------------------------------------------------------- randomized runs --

/// A random workload over one indexed table: inserts (with deliberate
/// duplicate row images), key updates, deletes, and occasional
/// checkpoints.
fn random_steps(seed: u64, txns: usize) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = vec![txn(&[
        "CREATE TABLE kv (k INTEGER, v TEXT)",
        "CREATE INDEX kv_k ON kv (k)",
        // Duplicate images from the start: replay must track physical rows.
        "INSERT INTO kv VALUES (0, 'dup'), (0, 'dup')",
    ])];
    for t in 0..txns {
        if rng.gen_range(0..4usize) == 0 {
            steps.push(Step::Checkpoint);
        }
        let mut stmts = Vec::new();
        for _ in 0..rng.gen_range(1..4usize) {
            let k = rng.gen_range(0..4i64);
            match rng.gen_range(0..3usize) {
                0 => stmts.push(format!("INSERT INTO kv VALUES ({k}, 'dup')")),
                1 => stmts.push(format!("UPDATE kv SET v = 'u{t}' WHERE k = {k}")),
                _ => stmts.push(format!("DELETE FROM kv WHERE k = {k}")),
            }
        }
        steps.push(Step::Txn(stmts));
    }
    steps
}

fn crash_seeds() -> Vec<u64> {
    match std::env::var("SQLGRAPH_CRASH_SEED") {
        Ok(s) => vec![s.trim().parse().expect("SQLGRAPH_CRASH_SEED must be a u64")],
        Err(_) => (0..4).map(|i| 0xC0FFEE ^ (i * 7919)).collect(),
    }
}

#[test]
fn crash_matrix_randomized() {
    for seed in crash_seeds() {
        eprintln!("crash_matrix_randomized: SQLGRAPH_CRASH_SEED={seed} reruns this workload");
        crash_matrix(&random_steps(seed, 5), &[0, usize::MAX]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property form of the matrix: arbitrary workload seeds, crash at
    /// every fault point, torn tail drops the whole unsynced write.
    #[test]
    fn proptest_random_workloads_recover(seed in any::<u64>()) {
        crash_matrix(&random_steps(seed, 3), &[0]);
    }
}

// ------------------------------------------------- targeted regressions --

/// Torn-tail append regression: garbage after the last commit must be
/// truncated on open, so commits appended *after* recovery are readable on
/// the next open. (Before the fix, new commits were appended after the
/// garbage and lost.)
#[test]
fn appending_after_torn_tail_preserves_new_commits() {
    let fs = SimFs::new();
    let base = PathBuf::from("db.wal");
    {
        let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
        db.set_sync_on_commit(true);
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();
    }
    // Simulate a torn tail: half a record of garbage past the last commit.
    let mut bytes = fs.contents(&base).unwrap();
    bytes.extend_from_slice(&[0xAB; 7]);
    fs.install(&base, bytes.clone());

    {
        let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
        let report = db.recovery_report().unwrap();
        assert_eq!(report.bytes_truncated, 7);
        db.set_sync_on_commit(true);
        db.execute("INSERT INTO t VALUES (2)").unwrap();
    }
    // The file must have been physically truncated before the append.
    assert_eq!(
        &fs.contents(&base).unwrap()[..bytes.len() - 7],
        &bytes[..bytes.len() - 7]
    );

    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    let rel = db.execute("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
}

/// Replay must target physical rows, not row images: with two identical
/// rows in the log, a delete/update of one specific row id must hit that
/// slot and no other.
#[test]
fn replay_resolves_duplicate_row_images_by_physical_id() {
    let fs = SimFs::new();
    let base = PathBuf::from("db.wal");
    let dup = vec![Value::Int(1), Value::str("dup")];
    {
        let mut wal = Wal::open_segment(Arc::new(fs.clone()), &base, 0).unwrap();
        wal.append_commit(
            &[WalRecord::Ddl {
                sql: "CREATE TABLE t (a INTEGER, b TEXT)".into(),
            }],
            1,
        )
        .unwrap();
        wal.append_commit(
            &[
                WalRecord::Insert {
                    table: "t".into(),
                    row_id: 0,
                    row: dup.clone(),
                },
                WalRecord::Insert {
                    table: "t".into(),
                    row_id: 1,
                    row: dup.clone(),
                },
                WalRecord::Insert {
                    table: "t".into(),
                    row_id: 2,
                    row: vec![Value::Int(2), Value::str("other")],
                },
            ],
            2,
        )
        .unwrap();
        // Delete the SECOND duplicate; an image-based replay would remove
        // whichever it finds first.
        wal.append_commit(
            &[WalRecord::Delete {
                table: "t".into(),
                row_id: 1,
                row: dup.clone(),
            }],
            3,
        )
        .unwrap();
        // Update the FIRST duplicate by id.
        wal.append_commit(
            &[WalRecord::Update {
                table: "t".into(),
                row_id: 0,
                old: dup.clone(),
                new: vec![Value::Int(1), Value::str("first-updated")],
            }],
            4,
        )
        .unwrap();
    }
    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    let t = db.read_table("t").unwrap();
    let rows: Vec<(usize, Vec<Value>)> = t.iter().map(|(id, r)| (id, r.to_vec())).collect();
    assert_eq!(
        rows,
        vec![
            (0, vec![Value::Int(1), Value::str("first-updated")]),
            (2, vec![Value::Int(2), Value::str("other")]),
        ]
    );
}

/// Duplicate rows created through SQL survive a crash with their physical
/// identity and scan order intact.
#[test]
fn duplicate_rows_survive_crash_in_order() {
    let fs = SimFs::new();
    let base = PathBuf::from("db.wal");
    {
        let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
        db.set_sync_on_commit(true);
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'dup'), (1, 'dup'), (1, 'dup')")
            .unwrap();
        // Crash the very next operation: nothing after this survives.
        fs.schedule_fault(Fault {
            at_op: fs.op_count(),
            kind: FaultKind::Crash { keep_tail: 0 },
        });
        assert!(db.execute("INSERT INTO t VALUES (9, 'lost')").is_err());
    }
    fs.recover();
    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    let t = db.read_table("t").unwrap();
    let ids: Vec<usize> = t.iter().map(|(id, _)| id).collect();
    assert_eq!(ids, vec![0, 1, 2]);
    assert!(t.iter().all(|(_, r)| r[1] == Value::str("dup")));
}

/// Bit-flip every byte of a multi-commit log. Recovery must never panic,
/// never surface any row from at or past the corrupted commit, and must
/// report the truncation exactly.
#[test]
fn bit_flip_sweep_truncates_at_corruption() {
    let fs = SimFs::new();
    let base = PathBuf::from("db.wal");
    let steps = scripted_workload();
    // `states[j]` = reference state after the first `j` transactions.
    let states: Vec<State> = (0..=txn_count(&steps))
        .map(|j| state_for(&steps, &(0..j).collect::<Vec<_>>()))
        .collect();
    let res = run_steps(&fs, &base, &steps);
    assert_eq!(res.acked.len(), 3);
    let pristine = fs.contents(&base).unwrap();
    // Byte offset of the end of each commit (DDL and DML share commits per
    // transaction, so boundaries == reference states).
    let boundaries = commit_boundaries(&base, &steps);
    assert_eq!(boundaries.len(), states.len());
    assert_eq!(*boundaries.last().unwrap(), pristine.len());

    for i in 0..pristine.len() {
        for mask in [0x01u8, 0x80] {
            let mut corrupt = pristine.clone();
            corrupt[i] ^= mask;
            let fs2 = SimFs::new();
            fs2.install(&base, corrupt);
            let db = Database::open_with_vfs(&base, Arc::new(fs2.clone())).unwrap();
            // The flip kills the commit containing byte i and everything
            // after it.
            let j = boundaries.iter().filter(|&&b| b <= i).count() - 1;
            assert_eq!(
                dump(&db),
                states[j],
                "flip at byte {i} (mask {mask:#x}) must recover exactly {j} commits"
            );
            let report = db.recovery_report().unwrap();
            // Each transaction in the scripted workload is one commit.
            assert_eq!(report.commits_replayed, j);
            assert_eq!(
                report.bytes_truncated,
                (pristine.len() - boundaries[j]) as u64,
                "flip at byte {i}: truncation must start at the last valid commit"
            );
        }
    }
}

/// End offsets of each commit in the log (offset 0 first), reconstructed
/// by re-running the workload and sampling the file length after each
/// transaction.
fn commit_boundaries(base: &Path, steps: &[Step]) -> Vec<usize> {
    let fs = SimFs::new();
    let db = Database::open_with_vfs(base, Arc::new(fs.clone())).unwrap();
    db.set_sync_on_commit(true);
    let mut boundaries = vec![0usize];
    for step in steps {
        if let Step::Txn(stmts) = step {
            apply_txn(&db, stmts).unwrap();
            boundaries.push(fs.contents(base).unwrap().len());
        }
    }
    boundaries
}

/// A failed append poisons the log: later commits fail fast with a clear
/// error instead of interleaving with a half-written transaction, and the
/// errored commit is *indeterminate* — rolled back in memory, but replayed
/// after reopen if its bytes did reach the file intact.
#[test]
fn failed_append_poisons_log_until_reopen() {
    let fs = SimFs::new();
    let base = PathBuf::from("db.wal");
    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    db.set_sync_on_commit(true);
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    // Fail the fsync of the next commit: its bytes are written but the
    // commit errors and rolls back in memory.
    fs.schedule_fault(Fault {
        at_op: fs.op_count() + 1,
        kind: FaultKind::FailOp,
    });
    assert!(db.execute("INSERT INTO t VALUES (2)").is_err());
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
        Value::Int(1)
    );

    // Poisoned: the next commit fails without touching the file.
    let before = fs.contents(&base).unwrap().len();
    let err = db.execute("INSERT INTO t VALUES (3)").unwrap_err();
    assert!(err.to_string().contains("poisoned"), "got: {err}");
    assert_eq!(fs.contents(&base).unwrap().len(), before);

    // Clean reopen: the errored commit's bytes reached the file intact, so
    // it replays — the indeterminate commit resolved to "durable".
    drop(db);
    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    let rel = db.execute("SELECT a FROM t ORDER BY a").unwrap();
    assert_eq!(rel.rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
}

/// After a checkpoint, recovery loads the snapshot and replays only the
/// post-checkpoint tail; pre-checkpoint segments are gone.
#[test]
fn checkpoint_bounds_recovery_to_the_tail() {
    let fs = SimFs::new();
    let base = PathBuf::from("db.wal");
    {
        let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
        db.set_sync_on_commit(true);
        db.execute("CREATE TABLE t (a INTEGER)").unwrap();
        for i in 0..10 {
            db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        let report = db.checkpoint().unwrap();
        assert_eq!(report.gen, 1);
        assert_eq!(report.tables, 1);
        assert_eq!(report.retired_segments, 1);
        db.execute("INSERT INTO t VALUES (100)").unwrap();
    }
    // Generation-0 segment is retired; the active segment is .g1.
    assert!(!fs.exists(&segment_path(&base, 0)));
    assert!(fs.exists(&segment_path(&base, 1)));

    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    let report = db.recovery_report().unwrap().clone();
    assert_eq!(report.snapshot_gen, Some(1));
    assert_eq!(report.snapshot_tables, 1);
    assert_eq!(report.segments_scanned, 1);
    assert_eq!(
        report.commits_replayed, 1,
        "only the post-checkpoint tail replays"
    );
    assert_eq!(report.records_replayed, 1);
    let rel = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rel.rows[0][0], Value::Int(11));
}

/// Transactions that are still open (statements executed, no commit) when
/// the machine dies must be invisible after recovery: MVCC buffers their
/// writes as provisional versions and appends nothing to the WAL until
/// commit, so a crash leaves no trace of them. Committed transactions
/// that raced the open ones must survive in full.
#[test]
fn uncommitted_transactions_are_invisible_after_crash() {
    let fs = SimFs::new();
    let base = PathBuf::from("db.wal");
    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    db.set_sync_on_commit(true);
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    // Two in-flight transactions with executed-but-uncommitted writes:
    // a handle transaction updating the committed row and inserting, and
    // a SQL session sitting inside BEGIN.
    let mut open_txn = db.begin();
    open_txn.execute("UPDATE t SET a = 99 WHERE a = 1").unwrap();
    open_txn.execute("INSERT INTO t VALUES (100)").unwrap();
    let mut open_session = sqlgraph_rel::Session::new(&db);
    open_session.execute("BEGIN").unwrap();
    open_session.execute("INSERT INTO t VALUES (200)").unwrap();

    // A concurrent autocommit transaction commits while both are open.
    db.execute("INSERT INTO t VALUES (2)").unwrap();

    // Crash with the transactions still open. A real crash never runs
    // rollback, so the handles are forgotten, not dropped.
    std::mem::forget(open_txn);
    std::mem::forget(open_session);
    std::mem::forget(db);
    fs.recover();

    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    assert_eq!(
        db.execute("SELECT a FROM t ORDER BY a").unwrap().rows,
        vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        "uncommitted transaction leaked into the recovered state"
    );
    // The recovered database still takes commits.
    db.set_sync_on_commit(true);
    db.execute("UPDATE t SET a = 3 WHERE a = 2").unwrap();
    drop(db);
    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    assert_eq!(
        db.execute("SELECT a FROM t ORDER BY a").unwrap().rows,
        vec![vec![Value::Int(1)], vec![Value::Int(3)]]
    );
}
