//! Cost-based planner tests: ANALYZE statistics, join reordering under
//! skewed cardinalities and skewed ndv, predicate pushdown, and
//! planner-on/off result equivalence.

use sqlgraph_rel::{Database, Value};

fn plan_of(db: &Database, sql: &str) -> String {
    db.execute(&format!("EXPLAIN {sql}"))
        .unwrap()
        .strings()
        .join("\n")
}

/// Sort rows for order-insensitive comparison.
fn canon(rel: &sqlgraph_rel::Relation) -> Vec<String> {
    let mut rows: Vec<String> = rel.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

#[test]
fn analyze_reports_row_counts() {
    let db = Database::new();
    db.execute("CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE b (id INTEGER PRIMARY KEY)")
        .unwrap();
    for i in 0..7i64 {
        db.execute_with_params(
            "INSERT INTO a VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i % 3)],
        )
        .unwrap();
    }
    db.execute("INSERT INTO b VALUES (1)").unwrap();

    // Single-table form returns one row with the analyzed count.
    let rel = db.execute("ANALYZE a").unwrap();
    assert_eq!(rel.columns, ["table", "rows"]);
    assert_eq!(rel.rows, vec![vec![Value::str("a"), Value::Int(7)]]);

    // Bare ANALYZE covers every table.
    let rel = db.execute("ANALYZE").unwrap();
    let mut names: Vec<String> = rel.rows.iter().map(|r| format!("{:?}", r[0])).collect();
    names.sort();
    assert_eq!(rel.rows.len(), 2, "{rel:?}");
    assert!(
        names[0].contains('a') && names[1].contains('b'),
        "{names:?}"
    );

    // Unknown tables error rather than silently no-op.
    assert!(db.execute("ANALYZE nope").is_err());
}

#[test]
fn join_reordered_smallest_first() {
    let db = Database::new();
    db.execute("CREATE TABLE big (id INTEGER PRIMARY KEY, k INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE small (k INTEGER PRIMARY KEY)")
        .unwrap();
    for i in 0..300i64 {
        db.execute_with_params(
            "INSERT INTO big VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i % 5)],
        )
        .unwrap();
    }
    for k in 0..5i64 {
        db.execute_with_params("INSERT INTO small VALUES (?)", &[Value::Int(k)])
            .unwrap();
    }
    db.execute("ANALYZE").unwrap();

    // Textual order starts with the big table; the planner must flip it.
    let plan = plan_of(&db, "SELECT big.id FROM big, small WHERE big.k = small.k");
    assert!(
        plan.contains("join order: small, big (reordered)"),
        "{plan}"
    );
    // Estimated and actual cardinalities are reported per attach step.
    assert!(plan.contains("estimated"), "{plan}");
    assert!(plan.contains("actual"), "{plan}");

    // The reordered plan returns exactly the rows of the textual order.
    let rel = db
        .execute("SELECT big.id FROM big, small WHERE big.k = small.k ORDER BY big.id")
        .unwrap();
    assert_eq!(rel.rows.len(), 300);
}

#[test]
fn skewed_ndv_drives_join_order() {
    let db = Database::new();
    // t_uniq: 100 rows, c all-distinct => `c = const` keeps ~1 row.
    // t_dup: 60 rows, c two-valued   => `c = const` keeps ~30 rows.
    // Pure row counts would start with t_dup; ndv statistics must start
    // with t_uniq instead.
    db.execute("CREATE TABLE t_uniq (id INTEGER PRIMARY KEY, c INTEGER, j INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE t_dup (id INTEGER PRIMARY KEY, c INTEGER, j INTEGER)")
        .unwrap();
    for i in 0..100i64 {
        db.execute_with_params(
            "INSERT INTO t_uniq VALUES (?, ?, ?)",
            &[Value::Int(i), Value::Int(i), Value::Int(i % 10)],
        )
        .unwrap();
    }
    for i in 0..60i64 {
        db.execute_with_params(
            "INSERT INTO t_dup VALUES (?, ?, ?)",
            &[Value::Int(i), Value::Int(i % 2), Value::Int(i % 10)],
        )
        .unwrap();
    }
    db.execute("ANALYZE").unwrap();

    let sql = "SELECT t_dup.id FROM t_dup, t_uniq \
               WHERE t_dup.j = t_uniq.j AND t_dup.c = 1 AND t_uniq.c = 42";
    let plan = plan_of(&db, sql);
    assert!(
        plan.contains("join order: t_uniq, t_dup (reordered)"),
        "ndv skew should start from the all-distinct table:\n{plan}"
    );

    // And the answer is unchanged by the reorder.
    let rel = db.execute(sql).unwrap();
    let expected: Vec<i64> = (0..60)
        .filter(|i| i % 2 == 1 && 42 % 10 == i % 10)
        .collect();
    let mut got: Vec<i64> = rel
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(i) => *i,
            other => panic!("{other:?}"),
        })
        .collect();
    got.sort_unstable();
    assert_eq!(got, expected);
}

#[test]
fn constant_predicates_pushed_below_join() {
    let db = Database::new();
    db.execute("CREATE TABLE l (id INTEGER PRIMARY KEY, k INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE r (id INTEGER PRIMARY KEY, k INTEGER, tag TEXT)")
        .unwrap();
    for i in 0..50i64 {
        db.execute_with_params(
            "INSERT INTO l VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i % 4)],
        )
        .unwrap();
        db.execute_with_params(
            "INSERT INTO r VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::Int(i % 4),
                Value::str(if i % 2 == 0 { "even" } else { "odd" }),
            ],
        )
        .unwrap();
    }
    db.execute("ANALYZE").unwrap();

    let sql = "SELECT l.id, r.id FROM l, r WHERE l.k = r.k AND r.tag = 'even' AND l.id < 10";
    let plan = plan_of(&db, sql);
    assert!(
        plan.contains("pushdown filter"),
        "constant conjuncts filter base tables:\n{plan}"
    );

    // Cross-check rows against a straightforward recomputation.
    let rel = db.execute(sql).unwrap();
    let mut expect = 0usize;
    for l in 0..10i64 {
        for r in (0..50i64).filter(|r| r % 2 == 0) {
            if l % 4 == r % 4 {
                expect += 1;
            }
        }
    }
    assert_eq!(rel.rows.len(), expect);
}

#[test]
fn planner_toggle_returns_identical_rows() {
    let db = Database::new();
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY, grp INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE e (src INTEGER, dst INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE names (id INTEGER PRIMARY KEY, label TEXT)")
        .unwrap();
    for i in 0..40i64 {
        db.execute_with_params(
            "INSERT INTO v VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i % 6)],
        )
        .unwrap();
        db.execute_with_params(
            "INSERT INTO e VALUES (?, ?)",
            &[Value::Int(i), Value::Int((i * 7) % 40)],
        )
        .unwrap();
        db.execute_with_params(
            "INSERT INTO names VALUES (?, ?)",
            &[Value::Int(i), Value::str(format!("n{i}"))],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX e_src ON e (src)").unwrap();
    db.execute("ANALYZE").unwrap();

    // Mix of comma joins, an explicit JOIN (flattened when the planner is
    // on), constant filters, and SELECT * (column-order sensitivity).
    let queries = [
        "SELECT * FROM v, e, names \
         WHERE v.id = e.src AND e.dst = names.id AND v.grp = 2",
        "SELECT names.label FROM names JOIN e ON names.id = e.dst JOIN v ON e.src = v.id \
         WHERE v.grp < 3 ORDER BY names.label",
        "SELECT v.id, names.label FROM v, names WHERE v.id = names.id AND names.label = 'n7'",
    ];
    for sql in queries {
        db.set_planner_enabled(true);
        let planned = db.execute(sql).unwrap();
        db.set_planner_enabled(false);
        let naive = db.execute(sql).unwrap();
        db.set_planner_enabled(true);
        assert_eq!(planned.columns, naive.columns, "{sql}");
        assert_eq!(canon(&planned), canon(&naive), "{sql}");
    }
}

#[test]
fn explain_three_table_join_shows_cardinalities() {
    let db = Database::new();
    db.execute("CREATE TABLE f (a INTEGER, b INTEGER)").unwrap();
    db.execute("CREATE TABLE d1 (a INTEGER PRIMARY KEY)")
        .unwrap();
    db.execute("CREATE TABLE d2 (b INTEGER PRIMARY KEY)")
        .unwrap();
    for i in 0..200i64 {
        db.execute_with_params(
            "INSERT INTO f VALUES (?, ?)",
            &[Value::Int(i % 20), Value::Int(i % 3)],
        )
        .unwrap();
    }
    for a in 0..20i64 {
        db.execute_with_params("INSERT INTO d1 VALUES (?)", &[Value::Int(a)])
            .unwrap();
    }
    for b in 0..3i64 {
        db.execute_with_params("INSERT INTO d2 VALUES (?)", &[Value::Int(b)])
            .unwrap();
    }
    db.execute("ANALYZE").unwrap();

    let plan = plan_of(
        &db,
        "SELECT f.a FROM f, d1, d2 WHERE f.a = d1.a AND f.b = d2.b",
    );
    // Three-table join: the tiny d2 leads, f connects, d1 last.
    assert!(plan.contains("join order: d2, f, d1 (reordered)"), "{plan}");
    // Every planned step reports estimated vs. actual cardinality.
    let steps = plan
        .lines()
        .filter(|l| l.contains("estimated") && l.contains("actual"))
        .count();
    assert_eq!(steps, 3, "{plan}");
}
