//! Morsel-driven parallel execution: differential tests proving parallel
//! operators return row-identical results to serial at every DOP, the
//! EXPLAIN DOP display, statement-cache bounding, and stats staleness.

use sqlgraph_rel::{Database, Value};

fn plan_of(db: &Database, sql: &str) -> String {
    db.execute(&format!("EXPLAIN {sql}"))
        .unwrap()
        .strings()
        .join("\n")
}

/// Build the planner test schema: a small graph-ish mix of tables that
/// exercises full scans, hash joins, pushdown filters, and aggregation.
fn build_corpus_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE v (id INTEGER PRIMARY KEY, grp INTEGER, score DOUBLE)")
        .unwrap();
    db.execute("CREATE TABLE e (src INTEGER, dst INTEGER, w INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE names (id INTEGER PRIMARY KEY, label TEXT)")
        .unwrap();
    for i in 0..120i64 {
        db.execute_with_params(
            "INSERT INTO v VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::Int(i % 7),
                Value::Double(i as f64 * 0.31),
            ],
        )
        .unwrap();
        db.execute_with_params(
            "INSERT INTO e VALUES (?, ?, ?)",
            &[Value::Int(i), Value::Int((i * 13) % 120), Value::Int(i % 5)],
        )
        .unwrap();
        db.execute_with_params(
            "INSERT INTO names VALUES (?, ?)",
            &[Value::Int(i), Value::str(format!("n{}", i % 11))],
        )
        .unwrap();
    }
    db.execute("CREATE INDEX e_src ON e (src)").unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

/// The planner test corpus: joins (reorderable and explicit), constant
/// filters, wildcard projections, aggregates with GROUP BY and DISTINCT,
/// float accumulation, ORDER BY, and cross joins.
const CORPUS: &[&str] = &[
    "SELECT * FROM v, e, names WHERE v.id = e.src AND e.dst = names.id AND v.grp = 2",
    "SELECT names.label FROM names JOIN e ON names.id = e.dst JOIN v ON e.src = v.id \
     WHERE v.grp < 3 ORDER BY names.label",
    "SELECT v.id, names.label FROM v, names WHERE v.id = names.id AND names.label = 'n7'",
    "SELECT v.grp, COUNT(*), SUM(v.score), AVG(v.score), MIN(v.id), MAX(v.score) \
     FROM v WHERE v.id < 100 GROUP BY v.grp ORDER BY v.grp",
    "SELECT COUNT(DISTINCT names.label) FROM names, e WHERE names.id = e.dst AND e.w = 1",
    "SELECT v.grp, COUNT(*) FROM v, e WHERE v.id = e.src GROUP BY v.grp \
     HAVING COUNT(*) > 10 ORDER BY v.grp",
    "SELECT v.id FROM v WHERE v.score > 20.0 ORDER BY v.id DESC LIMIT 7",
    "SELECT a.id, b.id FROM v a, v b WHERE a.grp = b.grp AND a.id < 5 AND b.id < 5 \
     ORDER BY a.id, b.id",
];

#[test]
fn parallel_matches_serial_row_for_row() {
    let db = build_corpus_db();
    for planner_on in [true, false] {
        db.set_planner_enabled(planner_on);
        for sql in CORPUS {
            db.set_parallelism(1);
            let serial = db.execute(sql).unwrap();
            for dop in [2usize, 4, 8] {
                db.set_parallelism(dop);
                let parallel = db.execute(sql).unwrap();
                assert_eq!(serial.columns, parallel.columns, "{sql} (dop {dop})");
                assert_eq!(
                    serial.rows, parallel.rows,
                    "parallel dop {dop} diverged (planner={planner_on}) on: {sql}"
                );
            }
        }
    }
    db.set_planner_enabled(true);
    db.set_parallelism(0);
}

#[test]
fn parallel_survives_concurrent_writes() {
    // Not a determinism check (writers race the scan) — a sanity check
    // that morsel workers reading a table while another thread writes it
    // neither panic nor deadlock, and every returned row is well-formed.
    let db = std::sync::Arc::new(build_corpus_db());
    db.set_parallelism(4);
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer_db = db.clone();
        let stop_ref = &stop;
        s.spawn(move || {
            let mut i = 1000i64;
            while !stop_ref.load(std::sync::atomic::Ordering::Relaxed) {
                writer_db
                    .execute_with_params(
                        "INSERT INTO v VALUES (?, ?, ?)",
                        &[Value::Int(i), Value::Int(i % 7), Value::Double(0.5)],
                    )
                    .unwrap();
                writer_db
                    .execute_with_params("DELETE FROM v WHERE id = ?", &[Value::Int(i)])
                    .unwrap();
                i += 1;
            }
        });
        for _ in 0..40 {
            let rel = db
                .execute("SELECT v.grp, COUNT(*) FROM v, e WHERE v.id = e.src GROUP BY v.grp")
                .unwrap();
            for row in &rel.rows {
                assert_eq!(row.len(), 2);
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    db.set_parallelism(0);
}

#[test]
fn explain_reports_chosen_dop() {
    let db = build_corpus_db();
    db.set_parallelism(4);
    let plan = plan_of(&db, "SELECT COUNT(*) FROM e WHERE e.w = 2");
    assert!(
        plan.contains("full scan") && plan.contains("dop 4"),
        "{plan}"
    );
    // Serial pin shows dop 1 on the same steps.
    db.set_parallelism(1);
    let plan = plan_of(&db, "SELECT COUNT(*) FROM e WHERE e.w = 2");
    assert!(plan.contains("dop 1"), "{plan}");
    // Auto mode stays serial below the row threshold.
    db.set_parallelism(0);
    let plan = plan_of(&db, "SELECT COUNT(*) FROM e WHERE e.w = 2");
    assert!(
        plan.contains("dop 1"),
        "small tables must not pay thread overhead:\n{plan}"
    );
}

#[test]
fn stmt_cache_is_bounded_under_distinct_statements() {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    // A hot statement, re-executed throughout so its used bit stays set.
    let hot = "SELECT id FROM t WHERE id = 1";
    for i in 0..9000i64 {
        db.execute(&format!("SELECT id FROM t WHERE id = {i}"))
            .unwrap();
        if i % 64 == 0 {
            db.execute(hot).unwrap();
        }
    }
    // Unbounded growth would put all ~9000 texts in the cache.
    assert!(
        db.stmt_cache_len() <= 4096,
        "stmt cache leaked: {} entries",
        db.stmt_cache_len()
    );
    db.execute(hot).unwrap();
}

#[test]
fn stale_stats_are_discarded_by_the_planner() {
    let db = Database::new();
    db.execute("CREATE TABLE t1 (id INTEGER PRIMARY KEY, c INTEGER, j INTEGER)")
        .unwrap();
    db.execute("CREATE TABLE t2 (id INTEGER PRIMARY KEY, c INTEGER, j INTEGER)")
        .unwrap();
    // t1: 40 rows, c all-distinct (analyzed ndv 40 → `c = 1` keeps ~1 row).
    // t2: 40 rows, c eight-valued (analyzed ndv 8 → `c = 1` keeps ~5 rows).
    for i in 0..40i64 {
        db.execute_with_params(
            "INSERT INTO t1 VALUES (?, ?, ?)",
            &[Value::Int(i), Value::Int(i), Value::Int(i % 4)],
        )
        .unwrap();
        db.execute_with_params(
            "INSERT INTO t2 VALUES (?, ?, ?)",
            &[Value::Int(i), Value::Int(i % 8), Value::Int(i % 4)],
        )
        .unwrap();
    }
    db.execute("ANALYZE").unwrap();

    // Fresh stats: t1's est (~1 row) beats t2's (~5), so the textual order
    // t2, t1 is flipped.
    let sql = "SELECT t1.id FROM t2, t1 WHERE t1.j = t2.j AND t1.c = 1 AND t2.c = 1";
    let plan = plan_of(&db, sql);
    assert!(plan.contains("join order: t1, t2 (reordered)"), "{plan}");

    // Grow t1 to 140 rows (>2× the analyzed 40) with a constant c. The
    // analyzed ndv now wildly misrepresents `c = 1`; the staleness check
    // must discard it and fall back to seeded stats, under which t2 leads
    // (textual order — no reorder note).
    for i in 40..140i64 {
        db.execute_with_params(
            "INSERT INTO t1 VALUES (?, ?, ?)",
            &[Value::Int(i), Value::Int(1), Value::Int(i % 4)],
        )
        .unwrap();
    }
    let plan = plan_of(&db, sql);
    assert!(
        !plan.contains("(reordered)"),
        "stale analyzed ndv should no longer drive the join order:\n{plan}"
    );

    // Re-ANALYZE refreshes the stats; they are trusted again.
    db.execute("ANALYZE").unwrap();
    let plan = plan_of(&db, sql);
    assert!(plan.contains("estimated"), "{plan}");

    // And in every configuration the answer itself is unchanged.
    let rel = db.execute(sql).unwrap();
    assert!(!rel.rows.is_empty());
}
