//! The prepared-statement cache must not replay entries across engine
//! reconfiguration. Toggling the planner, the batch engine, or the
//! parallelism setting flushes the cache so the next execution re-derives
//! everything under the new configuration.

use sqlgraph_rel::{Database, Value};

fn primed_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)")
        .unwrap();
    for i in 0..16 {
        db.execute_with_params(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i % 3)],
        )
        .unwrap();
    }
    // Populate the cache with a SELECT (INSERT statements are cached too).
    db.execute("SELECT COUNT(*) FROM t WHERE k = 1").unwrap();
    assert!(db.stmt_cache_len() > 0, "cache should be primed");
    db
}

#[test]
fn set_parallelism_flushes_stmt_cache() {
    let db = primed_db();
    db.set_parallelism(4);
    assert_eq!(db.stmt_cache_len(), 0);
    // And the query still runs (re-parses, re-caches) under the new DOP.
    let rel = db.execute("SELECT COUNT(*) FROM t WHERE k = 1").unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(5)));
    assert!(db.stmt_cache_len() > 0);
}

#[test]
fn set_planner_enabled_flushes_stmt_cache() {
    let db = primed_db();
    db.set_planner_enabled(false);
    assert_eq!(db.stmt_cache_len(), 0);
    let rel = db.execute("SELECT COUNT(*) FROM t WHERE k = 1").unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(5)));
}

#[test]
fn set_batch_enabled_flushes_stmt_cache() {
    let db = primed_db();
    db.set_batch_enabled(false);
    assert_eq!(db.stmt_cache_len(), 0);
    let rel = db.execute("SELECT COUNT(*) FROM t WHERE k = 1").unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(5)));
}

#[test]
fn reconfigured_query_results_match() {
    // End-to-end guard for the bug class the flush prevents: run a query,
    // reconfigure, re-run the identical SQL string, and require the same
    // answer.
    let db = primed_db();
    let before = db
        .execute("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
        .unwrap();
    db.set_parallelism(2);
    db.set_batch_enabled(false);
    let after = db
        .execute("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
        .unwrap();
    assert_eq!(before.rows, after.rows);
}
