//! The prepared-statement cache must not replay entries across engine
//! reconfiguration. Toggling the planner, the batch engine, or the
//! parallelism setting flushes the cache so the next execution re-derives
//! everything under the new configuration.

use sqlgraph_rel::{Database, Value};

fn primed_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, k INTEGER)")
        .unwrap();
    for i in 0..16 {
        db.execute_with_params(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(i), Value::Int(i % 3)],
        )
        .unwrap();
    }
    // Populate the cache with a SELECT (INSERT statements are cached too).
    db.execute("SELECT COUNT(*) FROM t WHERE k = 1").unwrap();
    assert!(db.stmt_cache_len() > 0, "cache should be primed");
    db
}

#[test]
fn set_parallelism_flushes_stmt_cache() {
    let db = primed_db();
    db.set_parallelism(4);
    assert_eq!(db.stmt_cache_len(), 0);
    // And the query still runs (re-parses, re-caches) under the new DOP.
    let rel = db.execute("SELECT COUNT(*) FROM t WHERE k = 1").unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(5)));
    assert!(db.stmt_cache_len() > 0);
}

#[test]
fn set_planner_enabled_flushes_stmt_cache() {
    let db = primed_db();
    db.set_planner_enabled(false);
    assert_eq!(db.stmt_cache_len(), 0);
    let rel = db.execute("SELECT COUNT(*) FROM t WHERE k = 1").unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(5)));
}

#[test]
fn set_batch_enabled_flushes_stmt_cache() {
    let db = primed_db();
    db.set_batch_enabled(false);
    assert_eq!(db.stmt_cache_len(), 0);
    let rel = db.execute("SELECT COUNT(*) FROM t WHERE k = 1").unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(5)));
}

/// A database whose `adj` table is large enough (≥ 256 rows) and shaped
/// right (non-unique hash index) for the planner to pick the CSR access
/// path, primed so the CSR cache holds one entry.
fn csr_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE seed (sid INTEGER PRIMARY KEY)")
        .unwrap();
    db.execute("CREATE TABLE adj (id INTEGER PRIMARY KEY, src INTEGER, dst INTEGER)")
        .unwrap();
    db.execute("CREATE INDEX adj_src ON adj (src)").unwrap();
    for i in 0..20 {
        db.execute_with_params("INSERT INTO seed VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    for i in 0..400 {
        db.execute_with_params(
            "INSERT INTO adj VALUES (?, ?, ?)",
            &[Value::Int(i), Value::Int(i % 20), Value::Int(1000 + i)],
        )
        .unwrap();
    }
    let rel = db
        .execute("SELECT COUNT(*) FROM seed s, adj a WHERE s.sid = a.src")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(400)));
    assert!(db.csr_cache_len() > 0, "csr cache should be primed");
    db
}

#[test]
fn set_csr_enabled_flushes_stmt_and_csr_caches() {
    let db = csr_db();
    assert!(db.stmt_cache_len() > 0);
    db.set_csr_enabled(false);
    assert_eq!(db.stmt_cache_len(), 0, "stale plans could still name csr");
    assert_eq!(db.csr_cache_len(), 0);
    let rel = db
        .execute("SELECT COUNT(*) FROM seed s, adj a WHERE s.sid = a.src")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(400)));
    assert_eq!(db.csr_cache_len(), 0, "csr disabled: nothing rebuilt");
    db.set_csr_enabled(true);
    db.execute("SELECT COUNT(*) FROM seed s, adj a WHERE s.sid = a.src")
        .unwrap();
    assert!(db.csr_cache_len() > 0, "re-enabled: csr rebuilt");
}

#[test]
fn analyze_invalidates_cached_csr() {
    let db = csr_db();
    assert!(db.csr_cache_len() > 0);
    db.execute("ANALYZE adj").unwrap();
    assert_eq!(
        db.csr_cache_len(),
        0,
        "ANALYZE adj must drop the table's cached CSR entries"
    );
    // The next query rebuilds against current contents.
    let builds = db.csr_builds();
    let rel = db
        .execute("SELECT COUNT(*) FROM seed s, adj a WHERE s.sid = a.src")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(400)));
    assert!(db.csr_builds() > builds, "post-ANALYZE query rebuilds CSR");
}

#[test]
fn row_drift_past_staleness_threshold_rebuilds_csr() {
    // The >2x drift that invalidates analyzed statistics is mutation-driven,
    // and every mutation bumps the table content version — so a CSR built
    // before the drift can never be served after it.
    let db = csr_db();
    db.execute("ANALYZE adj").unwrap();
    db.execute("SELECT COUNT(*) FROM seed s, adj a WHERE s.sid = a.src")
        .unwrap();
    assert!(db.csr_cache_len() > 0);
    let builds = db.csr_builds();
    // Triple the table: well past the 2x staleness threshold.
    for i in 400..1200 {
        db.execute_with_params(
            "INSERT INTO adj VALUES (?, ?, ?)",
            &[Value::Int(i), Value::Int(i % 20), Value::Int(1000 + i)],
        )
        .unwrap();
    }
    let rel = db
        .execute("SELECT COUNT(*) FROM seed s, adj a WHERE s.sid = a.src")
        .unwrap();
    assert_eq!(rel.scalar(), Some(&Value::Int(1200)));
    assert!(
        db.csr_builds() > builds,
        "stale CSR must be rebuilt, not served"
    );
}

#[test]
fn every_mutation_invalidates_cached_csr() {
    let db = csr_db();
    let count = || {
        db.execute("SELECT COUNT(*) FROM seed s, adj a WHERE s.sid = a.src")
            .unwrap()
            .scalar()
            .cloned()
    };
    db.execute("DELETE FROM adj WHERE id = 0").unwrap();
    assert_eq!(count(), Some(Value::Int(399)));
    db.execute("UPDATE adj SET src = 19 WHERE id = 1").unwrap();
    assert_eq!(count(), Some(Value::Int(399)));
    db.execute("INSERT INTO adj VALUES (2000, 0, 42)").unwrap();
    assert_eq!(count(), Some(Value::Int(400)));
}

#[test]
fn reconfigured_query_results_match() {
    // End-to-end guard for the bug class the flush prevents: run a query,
    // reconfigure, re-run the identical SQL string, and require the same
    // answer.
    let db = primed_db();
    let before = db
        .execute("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
        .unwrap();
    db.set_parallelism(2);
    db.set_batch_enabled(false);
    let after = db
        .execute("SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k")
        .unwrap();
    assert_eq!(before.rows, after.rows);
}
