//! Byte-identity of the CSR access path and list-based (factorized)
//! execution against the row engine's index nested-loop joins.
//!
//! Every test runs the same SQL with the CSR path enabled and disabled and
//! requires identical rows in identical order — multi-hop chains extend the
//! factored representation level by level, so these cover level extension,
//! list-wise after-filters, the flatten points (projection, ORDER BY,
//! aggregation), and zero-kept-column expansions.

use sqlgraph_rel::{Database, Value};

/// A two-table adjacency fixture big enough for the planner's CSR gate:
/// `adj` has 420 rows fanned out over 30 sources, plus a `seed` table of
/// starting points. `adj.dst` wraps back into the source id space so the
/// join can chain multiple hops.
fn graph_db() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE seed (sid INTEGER PRIMARY KEY)")
        .unwrap();
    db.execute(
        "CREATE TABLE adj (id INTEGER PRIMARY KEY, src INTEGER, dst INTEGER, w INTEGER, tag TEXT)",
    )
    .unwrap();
    db.execute("CREATE INDEX adj_src ON adj (src)").unwrap();
    for i in 0..6 {
        db.execute_with_params("INSERT INTO seed VALUES (?)", &[Value::Int(i)])
            .unwrap();
    }
    for i in 0..420i64 {
        db.execute_with_params(
            "INSERT INTO adj VALUES (?, ?, ?, ?, ?)",
            &[
                Value::Int(i),
                Value::Int(i % 30),
                Value::Int((i * 7) % 30),
                Value::Int(i % 5),
                Value::str(if i % 3 == 0 { "a" } else { "b" }),
            ],
        )
        .unwrap();
    }
    db.execute("ANALYZE").unwrap();
    db
}

/// Run `sql` with CSR off then on; require byte-identical results and that
/// the CSR run actually exercised the CSR path.
fn assert_csr_identical(db: &Database, sql: &str) {
    db.set_csr_enabled(false);
    let row = db
        .execute(sql)
        .unwrap_or_else(|e| panic!("row engine failed: {e}\nSQL: {sql}"));
    db.set_csr_enabled(true);
    let builds = db.csr_builds();
    let csr = db
        .execute(sql)
        .unwrap_or_else(|e| panic!("csr engine failed: {e}\nSQL: {sql}"));
    assert!(
        db.csr_builds() > builds || db.csr_cache_len() > 0,
        "query never took the CSR path: {sql}"
    );
    assert_eq!(csr.rows, row.rows, "csr diverged on: {sql}");
    assert_eq!(csr.columns, row.columns);
}

#[test]
fn single_hop_projection_flattens_identically() {
    let db = graph_db();
    assert_csr_identical(
        &db,
        "SELECT s.sid, a.dst FROM seed s, adj a WHERE s.sid = a.src",
    );
}

#[test]
fn chained_hops_extend_the_factor_level_by_level() {
    let db = graph_db();
    assert_csr_identical(
        &db,
        "SELECT a1.dst, a2.dst FROM seed s, adj a1, adj a2 \
         WHERE s.sid = a1.src AND a1.dst = a2.src",
    );
    assert_csr_identical(
        &db,
        "SELECT a3.dst FROM seed s, adj a1, adj a2, adj a3 \
         WHERE s.sid = a1.src AND a1.dst = a2.src AND a2.dst = a3.src",
    );
}

#[test]
fn after_filter_on_expansion_columns_is_listwise() {
    let db = graph_db();
    // w/tag live in the last expansion level: the filter runs list-wise.
    assert_csr_identical(
        &db,
        "SELECT a.dst FROM seed s, adj a WHERE s.sid = a.src AND a.w > 2",
    );
    assert_csr_identical(
        &db,
        "SELECT a2.dst FROM seed s, adj a1, adj a2 \
         WHERE s.sid = a1.src AND a1.dst = a2.src AND a2.tag = 'a'",
    );
}

#[test]
fn cross_level_filter_falls_back_to_flatten() {
    let db = graph_db();
    // The predicate reads both levels: the factor must flatten, and the
    // result must still match the row engine exactly.
    assert_csr_identical(
        &db,
        "SELECT a1.dst, a2.dst FROM seed s, adj a1, adj a2 \
         WHERE s.sid = a1.src AND a1.dst = a2.src AND a1.w < a2.w",
    );
}

#[test]
fn order_by_flattens_identically() {
    let db = graph_db();
    assert_csr_identical(
        &db,
        "SELECT a2.dst FROM seed s, adj a1, adj a2 \
         WHERE s.sid = a1.src AND a1.dst = a2.src \
         ORDER BY a2.dst DESC, a2.id",
    );
}

#[test]
fn aggregates_over_factors_match() {
    let db = graph_db();
    // Factorized count (no flatten) ...
    assert_csr_identical(
        &db,
        "SELECT COUNT(*) FROM seed s, adj a1, adj a2 \
         WHERE s.sid = a1.src AND a1.dst = a2.src",
    );
    // ... grouped aggregation (flattens at the aggregate) ...
    assert_csr_identical(
        &db,
        "SELECT a2.dst, COUNT(*), SUM(a2.w) FROM seed s, adj a1, adj a2 \
         WHERE s.sid = a1.src AND a1.dst = a2.src GROUP BY a2.dst ORDER BY a2.dst",
    );
    // ... and DISTINCT over the flattened expansion.
    assert_csr_identical(
        &db,
        "SELECT DISTINCT a2.dst FROM seed s, adj a1, adj a2 \
         WHERE s.sid = a1.src AND a1.dst = a2.src ORDER BY a2.dst",
    );
}

#[test]
fn zero_kept_columns_preserve_multiplicity() {
    let db = graph_db();
    // Nothing from `adj` is projected, but each match must still contribute
    // one row — the factor level has width 0 yet counts elements.
    assert_csr_identical(&db, "SELECT s.sid FROM seed s, adj a WHERE s.sid = a.src");
    assert_csr_identical(
        &db,
        "SELECT COUNT(*) FROM seed s, adj a WHERE s.sid = a.src",
    );
}

#[test]
fn csr_results_identical_across_dop() {
    let db = graph_db();
    let sql = "SELECT a2.dst FROM seed s, adj a1, adj a2 \
               WHERE s.sid = a1.src AND a1.dst = a2.src";
    db.set_parallelism(1);
    let serial = db.execute(sql).unwrap();
    for dop in [2usize, 4, 8] {
        db.set_parallelism(dop);
        let parallel = db.execute(sql).unwrap();
        assert_eq!(serial.rows, parallel.rows, "csr diverged at dop {dop}");
    }
    db.set_parallelism(0);
}

#[test]
fn null_probe_keys_expand_to_nothing() {
    let db = graph_db();
    db.execute("INSERT INTO seed VALUES (100)").unwrap();
    db.execute("INSERT INTO adj VALUES (9000, NULL, 1, 0, 'a')")
        .unwrap();
    // NULL never matches: neither as a probe key nor as an index entry.
    assert_csr_identical(
        &db,
        "SELECT s.sid, a.dst FROM seed s, adj a WHERE s.sid = a.src",
    );
}
