//! Fuzz-style properties for the SQL front end: no input may panic the
//! lexer/parser, and every statement the engine executes successfully must
//! re-execute identically from the statement cache (determinism).

use proptest::prelude::*;
use sqlgraph_rel::sql::parse_statement;
use sqlgraph_rel::Database;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(s in "\\PC{0,80}") {
        let _ = parse_statement(&s);
    }

    #[test]
    fn parser_never_panics_on_sqlish_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "t", "a", ",", "(", ")", "*", "=",
                "'x'", "1", "JOIN", "ON", "GROUP", "BY", "COUNT", "WITH",
                "AS", "UNION", "ALL", "ORDER", "LIMIT", "NULL", "AND", "NOT",
                "IN", "LIKE", "||", "[", "]", "?", "JSON_VAL",
            ]),
            0..25,
        )
    ) {
        let sql = parts.join(" ");
        let _ = parse_statement(&sql);
    }

    #[test]
    fn executor_rejects_gracefully(s in "\\PC{0,60}") {
        // Arbitrary text through the full execute path: errors allowed,
        // panics are not.
        let db = Database::new();
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        let _ = db.execute(&s);
    }
}
