//! Golden-file EXPLAIN tests.
//!
//! Each query's full EXPLAIN output — planner notes, the physical operator
//! tree, and the result row count — is compared against a checked-in
//! golden file under `tests/golden/`. The fixture data, statistics, and
//! parallelism are pinned so the plans are fully deterministic.
//!
//! To regenerate after an intentional planner or EXPLAIN-format change:
//!
//! ```text
//! SQLGRAPH_BLESS=1 cargo test -p sqlgraph-rel --test explain_golden
//! ```
//!
//! then review the golden diffs like any other code change.

use sqlgraph_rel::{Database, Value};
use std::path::PathBuf;

/// Deterministic fixture: a fact table with a composite-key index, a small
/// dimension table, and fresh ANALYZE statistics. Parallelism is pinned to
/// 4 so per-node `dop` values do not depend on the host's core count.
fn fixture() -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE fact (id INTEGER PRIMARY KEY, k INTEGER, v DOUBLE)")
        .unwrap();
    db.execute("CREATE TABLE dim (k INTEGER PRIMARY KEY, tag INTEGER)")
        .unwrap();
    db.execute("CREATE INDEX fact_k ON fact (k)").unwrap();
    db.execute("CREATE INDEX fact_k_v ON fact (k, v) USING BTREE")
        .unwrap();
    for i in 0..500i64 {
        db.execute_with_params(
            "INSERT INTO fact VALUES (?, ?, ?)",
            &[
                Value::Int(i),
                Value::Int(i % 20),
                Value::Double((i % 7) as f64),
            ],
        )
        .unwrap();
    }
    for k in 0..20i64 {
        db.execute_with_params(
            "INSERT INTO dim VALUES (?, ?)",
            &[Value::Int(k), Value::Int(k % 2)],
        )
        .unwrap();
    }
    db.execute("ANALYZE").unwrap();
    db.set_parallelism(4);
    db
}

/// The fixed query set: one per plan shape the EXPLAIN output must keep
/// rendering faithfully.
const GOLDEN_QUERIES: &[(&str, &str)] = &[
    (
        "full_scan_pushdown",
        "SELECT fact.id FROM fact WHERE fact.v > 3.0",
    ),
    ("index_point", "SELECT fact.id FROM fact WHERE fact.k = 7"),
    (
        "index_range",
        "SELECT fact.id FROM fact WHERE fact.k = 7 AND fact.v >= 2.0 AND fact.v < 5.0",
    ),
    (
        "hash_join_reordered",
        "SELECT COUNT(*) FROM fact, dim WHERE fact.k = dim.k AND dim.tag = 1",
    ),
    (
        "index_join",
        "SELECT dim.tag FROM dim, fact WHERE fact.k = dim.k AND dim.k = 3",
    ),
    (
        "aggregate_sort",
        "SELECT fact.k, COUNT(*), SUM(fact.v) FROM fact WHERE fact.v > 1.0 \
         GROUP BY fact.k ORDER BY fact.k",
    ),
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

#[test]
fn explain_matches_golden_files() {
    let db = fixture();
    let bless = std::env::var_os("SQLGRAPH_BLESS").is_some();
    let mut diffs = Vec::new();
    for (name, sql) in GOLDEN_QUERIES {
        let got = db
            .execute(&format!("EXPLAIN {sql}"))
            .unwrap()
            .strings()
            .join("\n")
            + "\n";
        let path = golden_path(name);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with SQLGRAPH_BLESS=1 to create it",
                path.display()
            )
        });
        if got != want {
            diffs.push(format!(
                "== {name} ==\n--- golden\n{want}\n--- actual\n{got}"
            ));
        }
    }
    assert!(
        diffs.is_empty(),
        "EXPLAIN output drifted from golden files (re-bless with SQLGRAPH_BLESS=1 if intentional):\n{}",
        diffs.join("\n")
    );
}

#[test]
fn golden_files_capture_key_plan_facts() {
    // Independent of exact formatting, the golden corpus must keep showing
    // the planner's three headline behaviours: join reordering, predicate
    // pushdown, and per-node parallelism.
    let all: String = GOLDEN_QUERIES
        .iter()
        .map(|(name, _)| {
            std::fs::read_to_string(golden_path(name)).unwrap_or_else(|e| {
                panic!("missing golden file for {name} ({e}); run with SQLGRAPH_BLESS=1")
            })
        })
        .collect();
    assert!(all.contains("(reordered)"), "no join-order note in goldens");
    assert!(
        all.contains("pushdown filter") || all.contains("pushed filter"),
        "no pushdown note in goldens"
    );
    assert!(all.contains("dop 4"), "no parallel dop in goldens");
    assert!(
        all.contains("estimated"),
        "no cardinality estimates in goldens"
    );
}
