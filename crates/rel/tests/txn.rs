//! Transaction-subsystem integration tests.
//!
//! Covers the MVCC guarantees end to end:
//!
//! * cross-table write statements cannot deadlock (source tables are read
//!   and released before the target's write lock is taken),
//! * `DROP TABLE` evicts cached statements, so a recreated table with a
//!   different shape never executes against a stale plan,
//! * a concurrent writer/reader hammer over the simulated file system:
//!   every snapshot — single-statement or spanning statements — observes
//!   a commit-prefix-consistent state (the bank-transfer sum invariant),
//!   and the invariant survives a crash + recovery,
//! * differential check: the same serial workload produces byte-identical
//!   state (values *and* physical row ids) under autocommit MVCC,
//!   explicit `BEGIN`/`COMMIT` sessions, closure transactions, and the
//!   coarse per-table-lock baseline,
//! * first-updater-wins conflicts and vacuum's watermark discipline.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use sqlgraph_rel::{Database, Error, Session, SimFs, Value};

/// Worker count for the hammer, pinned by CI via `SQLGRAPH_TEST_DOP`.
fn dop() -> usize {
    std::env::var("SQLGRAPH_TEST_DOP")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(4)
}

fn int(rel: &sqlgraph_rel::Relation) -> i64 {
    rel.rows[0][0].as_int().expect("integer scalar")
}

/// Full physical state: table name → rows with their slab ids. Comparing
/// ids as well as values asserts identical physical layout, not just
/// identical query answers.
type PhysicalState = Vec<(String, Vec<(usize, Vec<Value>)>)>;

fn dump(db: &Database) -> PhysicalState {
    db.table_names()
        .into_iter()
        .map(|name| {
            let t = db.read_table(&name).unwrap();
            let rows = t.iter().map(|(id, r)| (id, r.to_vec())).collect();
            (name, rows)
        })
        .collect()
}

// ---------------------------------------------------- deadlock regression --

/// Two writers whose statements touch the same two tables in inverted
/// order (`a` reading `b`, `b` reading `a`). With whole-statement
/// two-lock acquisition this wedges; with source-reads-first it cannot.
/// The watchdog turns a deadlock into a test failure instead of a hang.
#[test]
fn cross_table_write_statements_do_not_deadlock() {
    const ROUNDS: i64 = 120;
    for coarse in [false, true] {
        let db = Arc::new(Database::new());
        db.set_coarse_writes(coarse);
        db.execute("CREATE TABLE a (id INTEGER, v INTEGER)")
            .unwrap();
        db.execute("CREATE TABLE b (id INTEGER, v INTEGER)")
            .unwrap();
        db.execute("INSERT INTO a VALUES (1, 0)").unwrap();
        db.execute("INSERT INTO b VALUES (1, 0)").unwrap();
        let (done_tx, done_rx) = mpsc::channel();
        for flip in [false, true] {
            let db = Arc::clone(&db);
            let done = done_tx.clone();
            std::thread::spawn(move || {
                let (target, source) = if flip { ("a", "b") } else { ("b", "a") };
                let sql = format!(
                    "UPDATE {target} SET v = v + 1 \
                     WHERE id IN (SELECT id FROM {source} WHERE v >= 0)"
                );
                for _ in 0..ROUNDS {
                    loop {
                        match db.execute(&sql) {
                            Ok(_) => break,
                            // Autocommit MVCC writers can lose the
                            // first-updater race; retrying is the contract.
                            Err(Error::TxnConflict(_)) => std::thread::yield_now(),
                            Err(e) => panic!("writer failed (coarse={coarse}): {e}"),
                        }
                    }
                }
                let _ = done.send(());
            });
        }
        for _ in 0..2 {
            done_rx
                .recv_timeout(Duration::from_secs(120))
                .unwrap_or_else(|_| panic!("cross-table writers deadlocked (coarse={coarse})"));
        }
        for t in ["a", "b"] {
            assert_eq!(
                int(&db.execute(&format!("SELECT v FROM {t}")).unwrap()),
                ROUNDS,
                "lost update on {t} (coarse={coarse})"
            );
        }
    }
}

// -------------------------------------------------- plan-cache eviction --

/// `DROP TABLE` must evict every cached statement that compiled against
/// the old definition; a recreated table with a different column order
/// would otherwise execute stale plans against wrong slots.
#[test]
fn drop_table_evicts_cached_plans() {
    let db = Database::new();
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
    let select = "SELECT b FROM t WHERE a = 1";
    let insert = "INSERT INTO t VALUES (?, ?, ?)";
    assert_eq!(
        db.execute(select).unwrap().rows,
        vec![vec![Value::str("x")]]
    );
    db.execute("DROP TABLE t").unwrap();

    // Same name, different shape: extra column, inverted order, an index.
    db.execute("CREATE TABLE t (b TEXT, x INTEGER, a INTEGER)")
        .unwrap();
    db.execute("CREATE INDEX t_a ON t (a)").unwrap();
    db.execute("INSERT INTO t VALUES ('y', 9, 1)").unwrap();
    assert_eq!(
        db.execute(select).unwrap().rows,
        vec![vec![Value::str("y")]],
        "stale cached plan read the old column layout"
    );
    db.execute_with_params(insert, &[Value::str("z"), Value::Int(8), Value::Int(2)])
        .unwrap();
    assert_eq!(
        db.execute("SELECT b, x FROM t WHERE a = 2").unwrap().rows,
        vec![vec![Value::str("z"), Value::Int(8)]],
        "stale cached insert plan wrote the old column layout"
    );
}

// ------------------------------------------------------------- the hammer --

/// N writers × M readers over a SimFs-backed database. Writers move money
/// between accounts in multi-statement transactions (retrying conflicts);
/// readers continuously assert the sum invariant through both a
/// single-statement aggregate and an explicit multi-statement snapshot.
/// Afterwards the file system "crashes": the recovered state must be a
/// commit prefix, so the invariant must still hold.
#[test]
fn concurrent_hammer_keeps_snapshots_consistent() {
    const ACCTS: i64 = 8;
    const START: i64 = 100;
    const TOTAL: i64 = ACCTS * START;
    const TXNS_PER_WRITER: usize = 120;

    let fs = SimFs::new();
    let base = PathBuf::from("db.wal");
    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    db.set_sync_on_commit(true);
    db.execute("CREATE TABLE acct (id INTEGER, bal INTEGER)")
        .unwrap();
    db.execute("CREATE INDEX acct_id ON acct (id)").unwrap();
    for id in 0..ACCTS {
        db.execute_with_params(
            "INSERT INTO acct VALUES (?, ?)",
            &[Value::Int(id), Value::Int(START)],
        )
        .unwrap();
    }

    let writers = dop().max(2);
    let readers = dop().max(2);
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut writer_handles = Vec::new();
        for w in 0..writers {
            let db = &db;
            writer_handles.push(s.spawn(move || {
                // Deterministic per-thread account pairs (xorshift).
                let mut x = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(w as u64 + 1) | 1;
                let mut step = || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x % ACCTS as u64) as i64
                };
                for _ in 0..TXNS_PER_WRITER {
                    let from = step();
                    let to = step();
                    loop {
                        let moved = db.transaction(|tx| {
                            let bal = tx.execute_with_params(
                                "SELECT bal FROM acct WHERE id = ?",
                                &[Value::Int(from)],
                            )?;
                            let bal = bal.rows[0][0].as_int().unwrap();
                            if bal == 0 {
                                return Ok(false); // overdraft: commit nothing
                            }
                            tx.execute_with_params(
                                "UPDATE acct SET bal = bal - 1 WHERE id = ?",
                                &[Value::Int(from)],
                            )?;
                            tx.execute_with_params(
                                "UPDATE acct SET bal = bal + 1 WHERE id = ?",
                                &[Value::Int(to)],
                            )?;
                            Ok(true)
                        });
                        match moved {
                            Ok(_) => break,
                            Err(Error::TxnConflict(_)) => std::thread::yield_now(),
                            Err(e) => panic!("transfer failed: {e}"),
                        }
                    }
                }
            }));
        }
        for _ in 0..readers {
            let (db, stop) = (&db, &stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // One statement = one snapshot: the aggregate must
                    // never observe half a transfer.
                    let sum = int(&db.execute("SELECT SUM(bal) FROM acct").unwrap());
                    assert_eq!(sum, TOTAL, "aggregate read saw a torn transfer");
                    // A snapshot must also span statements: reading the
                    // accounts one by one inside a transaction while
                    // writers commit between the reads.
                    let mut tx = db.begin();
                    let mut by_parts = 0;
                    for id in 0..ACCTS {
                        by_parts += int(&tx
                            .execute_with_params(
                                "SELECT bal FROM acct WHERE id = ?",
                                &[Value::Int(id)],
                            )
                            .unwrap());
                    }
                    drop(tx); // read-only; rollback is a no-op
                    assert_eq!(by_parts, TOTAL, "snapshot did not span statements");
                }
            });
        }
        for h in writer_handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        int(&db.execute("SELECT SUM(bal) FROM acct").unwrap()),
        TOTAL
    );

    // Crash: unsynced bytes are dropped. Recovery lands on a commit
    // prefix, and every committed transfer preserved the invariant.
    drop(db);
    fs.recover();
    let db = Database::open_with_vfs(&base, Arc::new(fs.clone())).unwrap();
    assert_eq!(
        int(&db.execute("SELECT SUM(bal) FROM acct").unwrap()),
        TOTAL,
        "recovered state is not a commit prefix"
    );
}

// ------------------------------------------------------ differential runs --

/// A deterministic DML workload in statement groups (each group is one
/// transaction where the mode has transactions).
fn corpus() -> Vec<Vec<String>> {
    let mut groups = vec![vec![
        "INSERT INTO kv VALUES (0, 'a', 10), (1, 'b', 20), (2, 'c', 30)".to_string(),
    ]];
    for t in 0..12 {
        let k = t % 4;
        groups.push(vec![
            format!("INSERT INTO kv VALUES ({}, 'g{t}', {t})", t + 3),
            format!("UPDATE kv SET v = v + 1 WHERE k = {k}"),
            format!("DELETE FROM kv WHERE v % 7 = {}", t % 7),
            format!(
                "UPDATE kv SET tag = 'touched' \
                 WHERE k IN (SELECT k FROM kv WHERE v > {})",
                10 + t
            ),
        ]);
    }
    groups
}

const CORPUS_DDL: &str = "CREATE TABLE kv (k INTEGER, tag TEXT, v INTEGER)";

/// The same serial workload must leave byte-identical state — physical
/// row ids included — whether statements autocommit under MVCC, run in
/// explicit `BEGIN`/`COMMIT` sessions, run in closure transactions, or
/// autocommit under the coarse per-table-lock baseline. MVCC must change
/// *nothing* about serial execution.
#[test]
fn serial_runs_are_identical_across_transaction_modes() {
    let groups = corpus();

    let autocommit = {
        let db = Database::new();
        db.execute(CORPUS_DDL).unwrap();
        for g in &groups {
            for s in g {
                db.execute(s).unwrap();
            }
        }
        dump(&db)
    };
    let session_txns = {
        let db = Database::new();
        db.execute(CORPUS_DDL).unwrap();
        let mut sess = Session::new(&db);
        for g in &groups {
            sess.execute("BEGIN").unwrap();
            for s in g {
                sess.execute(s).unwrap();
            }
            sess.execute("COMMIT").unwrap();
        }
        dump(&db)
    };
    let closure_txns = {
        let db = Database::new();
        db.execute(CORPUS_DDL).unwrap();
        for g in &groups {
            db.transaction(|tx| {
                for s in g {
                    tx.execute(s)?;
                }
                Ok(())
            })
            .unwrap();
        }
        dump(&db)
    };
    let coarse = {
        let db = Database::new();
        db.set_coarse_writes(true);
        db.execute(CORPUS_DDL).unwrap();
        for g in &groups {
            for s in g {
                db.execute(s).unwrap();
            }
        }
        dump(&db)
    };

    assert_eq!(autocommit, session_txns, "session transactions diverged");
    assert_eq!(autocommit, closure_txns, "closure transactions diverged");
    assert_eq!(autocommit, coarse, "coarse-lock baseline diverged");
}

// --------------------------------------------------- conflicts and vacuum --

#[test]
fn first_updater_wins_and_loser_rolls_back_cleanly() {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 0)").unwrap();

    let mut t1 = db.begin();
    let mut t2 = db.begin();
    t1.execute("UPDATE t SET v = 1 WHERE id = 1").unwrap();
    // t2 is the second updater of the same row: it must fail *now*, not
    // at commit.
    match t2.execute("UPDATE t SET v = 2 WHERE id = 1") {
        Err(Error::TxnConflict(_)) => {}
        other => panic!("second updater must conflict, got {other:?}"),
    }
    drop(t2);
    // The loser's rollback must not disturb the winner's provisional write.
    t1.commit().unwrap();
    assert_eq!(int(&db.execute("SELECT v FROM t WHERE id = 1").unwrap()), 1);
    // The row is writable again once the winner committed.
    db.execute("UPDATE t SET v = 3 WHERE id = 1").unwrap();
    assert_eq!(int(&db.execute("SELECT v FROM t WHERE id = 1").unwrap()), 3);
}

/// Vacuum must not reclaim versions an open snapshot can still see, and
/// must reclaim them once the snapshot is released.
#[test]
fn vacuum_respects_the_snapshot_watermark() {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 0)").unwrap();

    let mut reader = db.begin();
    assert_eq!(
        int(&reader.execute("SELECT v FROM t WHERE id = 1").unwrap()),
        0
    );
    for i in 1..=5 {
        db.execute(&format!("UPDATE t SET v = {i} WHERE id = 1"))
            .unwrap();
    }
    db.vacuum();
    // The version the open snapshot reads survived the vacuum.
    assert_eq!(
        int(&reader.execute("SELECT v FROM t WHERE id = 1").unwrap()),
        0,
        "vacuum reclaimed a version below the watermark"
    );
    drop(reader);
    let reclaimed = db.vacuum();
    assert!(
        reclaimed > 0,
        "dropping the last old snapshot must free dead versions"
    );
    assert_eq!(int(&db.execute("SELECT v FROM t WHERE id = 1").unwrap()), 5);
}
