//! Secondary indexes: hash (point lookups) and B-tree (range scans).
//!
//! The paper's schema leans on exactly these: primary keys on `VID`/`EID`,
//! hash indexes on `VALID`, and the combined `(INV, LBL)` / `(OUTV, LBL)`
//! indexes that stand in for the SP/OP indexes of RDF stores.

use crate::error::{Error, Result};
use crate::hasher::FxHashMap;
use crate::value::Value;
use std::collections::BTreeMap;

/// Row identifier: position in the table's row slab.
pub type RowId = usize;

/// A totally ordered, hashable composite key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey(pub Vec<Value>);

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            let o = a.total_cmp(b);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// Physical index kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash map: O(1) point lookups, no range scans.
    Hash,
    /// B-tree: point lookups plus ordered range scans.
    BTree,
}

#[derive(Debug)]
enum Map {
    Hash(FxHashMap<IndexKey, Vec<RowId>>),
    BTree(BTreeMap<IndexKey, Vec<RowId>>),
}

/// One component of an index key: a plain column, or a JSON member
/// extracted from a JSON column (a *functional* index — the paper's
/// "specialized indexes for attributes" over the JSON tables, §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyPart {
    /// The column's value.
    Column(usize),
    /// `JSON_VAL(column, key)` of a JSON column.
    JsonKey(usize, String),
}

impl KeyPart {
    /// Column position this part reads.
    pub fn column(&self) -> usize {
        match self {
            KeyPart::Column(c) | KeyPart::JsonKey(c, _) => *c,
        }
    }

    /// Evaluate against a full table row.
    pub fn extract(&self, row: &[Value]) -> Value {
        match self {
            KeyPart::Column(c) => row[*c].clone(),
            KeyPart::JsonKey(c, key) => match &row[*c] {
                Value::Json(doc) => doc
                    .get(key)
                    .map(crate::expr::json_to_value)
                    .unwrap_or(Value::Null),
                _ => Value::Null,
            },
        }
    }
}

/// A secondary (or primary) index over one or more key parts.
#[derive(Debug)]
pub struct Index {
    /// Index name (unique within the database).
    pub name: String,
    /// Key parts, in key order.
    pub parts: Vec<KeyPart>,
    /// Plain column positions when every part is a column (the common
    /// case); empty if any part is functional. Kept for cheap planner
    /// matching.
    pub columns: Vec<usize>,
    /// Rejects duplicate keys when true.
    pub unique: bool,
    map: Map,
}

impl Index {
    /// Create an empty index over plain columns.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<usize>,
        unique: bool,
        kind: IndexKind,
    ) -> Index {
        let parts = columns.iter().map(|&c| KeyPart::Column(c)).collect();
        Index::with_parts(name, parts, unique, kind)
    }

    /// Create an empty index over arbitrary key parts.
    pub fn with_parts(
        name: impl Into<String>,
        parts: Vec<KeyPart>,
        unique: bool,
        kind: IndexKind,
    ) -> Index {
        let columns = if parts.iter().all(|p| matches!(p, KeyPart::Column(_))) {
            parts.iter().map(KeyPart::column).collect()
        } else {
            Vec::new()
        };
        Index {
            name: name.into(),
            parts,
            columns,
            unique,
            map: match kind {
                IndexKind::Hash => Map::Hash(FxHashMap::default()),
                IndexKind::BTree => Map::BTree(BTreeMap::new()),
            },
        }
    }

    /// The physical kind of this index.
    pub fn kind(&self) -> IndexKind {
        match self.map {
            Map::Hash(_) => IndexKind::Hash,
            Map::BTree(_) => IndexKind::BTree,
        }
    }

    /// Extract this index's key from a full table row.
    pub fn key_of(&self, row: &[Value]) -> IndexKey {
        IndexKey(self.parts.iter().map(|p| p.extract(row)).collect())
    }

    /// Insert `row_id` under the key extracted from `row`.
    /// Unique violations report the index name.
    pub fn insert(&mut self, row: &[Value], row_id: RowId) -> Result<()> {
        let key = self.key_of(row);
        let entry = match &mut self.map {
            Map::Hash(m) => m.entry(key).or_default(),
            Map::BTree(m) => m.entry(key).or_default(),
        };
        if self.unique && !entry.is_empty() {
            return Err(Error::Schema(format!(
                "unique index '{}' violated",
                self.name
            )));
        }
        entry.push(row_id);
        Ok(())
    }

    /// Add a posting for `row_id` under `key` without the unique check.
    /// MVCC paths use this: a unique index legitimately holds postings for
    /// several *versions* carrying the same key, so uniqueness is enforced
    /// at the table level against version liveness instead.
    pub fn add(&mut self, key: IndexKey, row_id: RowId) {
        let entry = match &mut self.map {
            Map::Hash(m) => m.entry(key).or_default(),
            Map::BTree(m) => m.entry(key).or_default(),
        };
        entry.push(row_id);
    }

    /// Remove `row_id` under the key extracted from `row`. No-op if absent.
    pub fn remove(&mut self, row: &[Value], row_id: RowId) {
        let key = self.key_of(row);
        self.remove_key(&key, row_id);
    }

    /// Remove `row_id`'s posting under `key`. No-op if absent.
    pub fn remove_key(&mut self, key: &IndexKey, row_id: RowId) {
        let remove_from = |ids: &mut Vec<RowId>| {
            if let Some(pos) = ids.iter().position(|&id| id == row_id) {
                ids.swap_remove(pos);
            }
            ids.is_empty()
        };
        match &mut self.map {
            Map::Hash(m) => {
                if let Some(ids) = m.get_mut(key) {
                    if remove_from(ids) {
                        m.remove(key);
                    }
                }
            }
            Map::BTree(m) => {
                if let Some(ids) = m.get_mut(key) {
                    if remove_from(ids) {
                        m.remove(key);
                    }
                }
            }
        }
    }

    /// Row IDs exactly matching `key`.
    pub fn lookup(&self, key: &IndexKey) -> &[RowId] {
        match &self.map {
            Map::Hash(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
            Map::BTree(m) => m.get(key).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Row IDs with keys in `[lo, hi]` (inclusive bounds; `None` = open).
    /// Only meaningful for B-tree indexes; hash indexes return an error.
    pub fn range(&self, lo: Option<&IndexKey>, hi: Option<&IndexKey>) -> Result<Vec<RowId>> {
        let m = match &self.map {
            Map::BTree(m) => m,
            Map::Hash(_) => {
                return Err(Error::Invalid(format!(
                    "index '{}' is a hash index and cannot serve range scans",
                    self.name
                )))
            }
        };
        use std::ops::Bound;
        let lo = lo.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        let hi = hi.map_or(Bound::Unbounded, |k| Bound::Included(k.clone()));
        let mut out = Vec::new();
        for ids in m.range((lo, hi)).map(|(_, ids)| ids) {
            out.extend_from_slice(ids);
        }
        Ok(out)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match &self.map {
            Map::Hash(m) => m.len(),
            Map::BTree(m) => m.len(),
        }
    }

    /// Iterate every (key, postings) entry. Hash indexes yield keys in
    /// arbitrary order, B-trees in key order; within an entry the postings
    /// keep their insertion order — the same order [`Index::lookup`]
    /// returns, which the CSR builder relies on for byte-identical results.
    pub fn entries(&self) -> Box<dyn Iterator<Item = (&IndexKey, &[RowId])> + '_> {
        match &self.map {
            Map::Hash(m) => Box::new(m.iter().map(|(k, v)| (k, v.as_slice()))),
            Map::BTree(m) => Box::new(m.iter().map(|(k, v)| (k, v.as_slice()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn hash_insert_lookup_remove() {
        let mut idx = Index::new("i", vec![0], false, IndexKind::Hash);
        idx.insert(&row(&[5, 10]), 0).unwrap();
        idx.insert(&row(&[5, 20]), 1).unwrap();
        idx.insert(&row(&[6, 30]), 2).unwrap();
        let key = IndexKey(vec![Value::Int(5)]);
        let mut ids = idx.lookup(&key).to_vec();
        ids.sort_unstable();
        assert_eq!(ids, [0, 1]);
        idx.remove(&row(&[5, 10]), 0);
        assert_eq!(idx.lookup(&key), [1]);
        idx.remove(&row(&[5, 20]), 1);
        assert!(idx.lookup(&key).is_empty());
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn unique_violation() {
        let mut idx = Index::new("pk", vec![0], true, IndexKind::Hash);
        idx.insert(&row(&[1]), 0).unwrap();
        assert!(idx.insert(&row(&[1]), 1).is_err());
        // Distinct key is fine.
        idx.insert(&row(&[2]), 1).unwrap();
    }

    #[test]
    fn composite_keys() {
        let mut idx = Index::new("c", vec![0, 1], false, IndexKind::Hash);
        idx.insert(&row(&[1, 2]), 0).unwrap();
        idx.insert(&row(&[1, 3]), 1).unwrap();
        assert_eq!(
            idx.lookup(&IndexKey(vec![Value::Int(1), Value::Int(2)])),
            [0]
        );
        assert!(idx.lookup(&IndexKey(vec![Value::Int(1)])).is_empty());
    }

    #[test]
    fn btree_range() {
        let mut idx = Index::new("b", vec![0], false, IndexKind::BTree);
        for (i, v) in [10, 20, 30, 40].iter().enumerate() {
            idx.insert(&row(&[*v]), i).unwrap();
        }
        let lo = IndexKey(vec![Value::Int(15)]);
        let hi = IndexKey(vec![Value::Int(35)]);
        assert_eq!(idx.range(Some(&lo), Some(&hi)).unwrap(), [1, 2]);
        assert_eq!(idx.range(None, Some(&lo)).unwrap(), [0]);
        assert_eq!(idx.range(Some(&hi), None).unwrap(), [3]);
        assert_eq!(idx.range(None, None).unwrap().len(), 4);
    }

    #[test]
    fn hash_rejects_range() {
        let idx = Index::new("h", vec![0], false, IndexKind::Hash);
        assert!(idx.range(None, None).is_err());
    }

    #[test]
    fn mixed_type_keys_ordered() {
        let mut idx = Index::new("m", vec![0], false, IndexKind::BTree);
        idx.insert(&[Value::str("b")], 0).unwrap();
        idx.insert(&[Value::Int(1)], 1).unwrap();
        idx.insert(&[Value::Null], 2).unwrap();
        // Total order: NULL < numbers < strings.
        assert_eq!(idx.range(None, None).unwrap(), [2, 1, 0]);
    }
}
