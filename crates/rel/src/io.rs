//! Pluggable file-system layer for durability code.
//!
//! Every byte the WAL and checkpoint machinery puts on (or reads off) disk
//! goes through a [`Vfs`]. Two implementations exist:
//!
//! * [`StdFs`] — thin wrapper over `std::fs`, used in production.
//! * [`SimFs`] — a deterministic in-memory file system with scripted fault
//!   injection: fail the Nth operation, crash with a torn tail, silently
//!   drop an fsync, fail a rename. Crash-recovery tests enumerate every
//!   mutating operation of a workload and crash at each one, so recovery is
//!   tested exhaustively instead of by luck.
//!
//! The durability model `SimFs` implements is the standard append-only
//! contract: bytes written before the last `sync` survive a crash; bytes
//! written after it survive only as an arbitrary *prefix* of the unsynced
//! tail (configurable per crash fault, so tests can sweep "none", "some",
//! and "all" of the tail). Renames are atomic and immediately durable when
//! they succeed.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A writable file handle produced by a [`Vfs`].
pub trait VfsFile: Send {
    /// Append `buf` in full.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Make everything written so far durable.
    fn sync(&mut self) -> io::Result<()>;
}

/// File-system operations the durability layer needs. Paths are plain
/// `std::path` values; a `Vfs` is shared behind an `Arc` between the
/// database, its WAL, and the checkpointer.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Full contents of `path`, or `None` if it does not exist.
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
    /// Create (or truncate) `path` and open it for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open `path` for appending, creating it if missing.
    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Truncate `path` to `len` bytes.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Atomically rename `from` to `to`, replacing `to` if it exists.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete `path`. Deleting a missing file is an error.
    fn remove(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------- StdFs --

/// The real file system.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

struct StdFile(std::fs::File);

impl VfsFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use io::Write;
        self.0.write_all(buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
}

impl Vfs for StdFs {
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(path) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(StdFile(std::fs::File::create(path)?)))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Box::new(StdFile(file)))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
}

// ---------------------------------------------------------------- SimFs --

/// What a scripted fault does when its operation number comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation returns an I/O error; the "process" keeps running.
    FailOp,
    /// The process crashes at this operation. The operation itself does not
    /// take effect, every later operation fails, and on [`SimFs::recover`]
    /// each file rolls back to its synced prefix — except the file this
    /// operation targeted, which additionally keeps the first `keep_tail`
    /// bytes of its unsynced tail (for a write fault, the tail includes the
    /// faulted buffer: a *torn write*).
    Crash {
        /// Unsynced-tail bytes of the faulted file that survive.
        keep_tail: usize,
    },
    /// The sync reports success but persists nothing. Only meaningful on a
    /// `sync` operation; a later crash then loses the "synced" bytes.
    DropSync,
}

/// One scripted fault: fire `kind` when the global operation counter
/// reaches `at_op` (counting from 0 over all mutating operations).
#[derive(Debug, Clone, Copy)]
pub struct Fault {
    /// Operation number the fault fires at.
    pub at_op: u64,
    /// What happens.
    pub kind: FaultKind,
}

#[derive(Debug, Default, Clone)]
struct SimFile {
    data: Vec<u8>,
    /// Durable prefix length: bytes below this survive a crash.
    synced: usize,
}

#[derive(Debug, Default)]
struct SimState {
    files: HashMap<PathBuf, SimFile>,
    ops: u64,
    faults: Vec<Fault>,
    crashed: bool,
    trace: Vec<String>,
}

/// Deterministic in-memory file system with scripted fault injection.
/// Cloning shares the underlying state, so a handle given to a `Database`
/// can also be driven by the test.
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    inner: Arc<Mutex<SimState>>,
}

/// Append handle into a [`SimFs`] file.
#[derive(Debug)]
pub struct SimFsFile {
    fs: SimFs,
    path: PathBuf,
}

fn io_err(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}

impl SimFs {
    /// A fresh, empty file system with no scheduled faults.
    pub fn new() -> SimFs {
        SimFs::default()
    }

    /// Schedule a fault. Multiple faults may be scheduled (e.g. a
    /// [`FaultKind::DropSync`] followed by a later [`FaultKind::Crash`]).
    pub fn schedule_fault(&self, fault: Fault) {
        self.inner.lock().unwrap().faults.push(fault);
    }

    /// Number of mutating operations performed so far. Running a workload
    /// once fault-free yields the operation count to enumerate over.
    pub fn op_count(&self) -> u64 {
        self.inner.lock().unwrap().ops
    }

    /// Human-readable trace of every mutating operation, for debugging a
    /// failing crash-matrix point.
    pub fn trace(&self) -> Vec<String> {
        self.inner.lock().unwrap().trace.clone()
    }

    /// Whether a crash fault has fired.
    pub fn crashed(&self) -> bool {
        self.inner.lock().unwrap().crashed
    }

    /// Materialize the post-crash disk state and clear the crashed flag:
    /// every file rolls back to what a real disk would hold, and the file
    /// system accepts operations again (the "reboot"). Also clears any
    /// remaining scheduled faults and resets the operation counter.
    pub fn recover(&self) {
        let mut st = self.inner.lock().unwrap();
        for file in st.files.values_mut() {
            file.data.truncate(file.synced);
        }
        st.crashed = false;
        st.faults.clear();
        st.ops = 0;
        st.trace.clear();
    }

    /// Contents of `path` as the running process sees it (test hook).
    pub fn contents(&self, path: &Path) -> Option<Vec<u8>> {
        self.inner
            .lock()
            .unwrap()
            .files
            .get(path)
            .map(|f| f.data.clone())
    }

    /// Overwrite `path` with `data`, fully synced (test hook for seeding
    /// corrupted files without going through the fault machinery).
    pub fn install(&self, path: &Path, data: Vec<u8>) {
        let mut st = self.inner.lock().unwrap();
        let synced = data.len();
        st.files
            .insert(path.to_path_buf(), SimFile { data, synced });
    }

    /// Sorted list of existing file paths (test hook).
    pub fn list(&self) -> Vec<PathBuf> {
        let mut paths: Vec<PathBuf> = self.inner.lock().unwrap().files.keys().cloned().collect();
        paths.sort();
        paths
    }

    /// Account one mutating operation against `path`; returns the fault to
    /// apply, if one fires now. Applies crash bookkeeping internally.
    fn step(&self, st: &mut SimState, op: &str, path: &Path) -> io::Result<Option<FaultKind>> {
        if st.crashed {
            return Err(io_err(format!("simulated crash: fs is down ({op})")));
        }
        let op_no = st.ops;
        st.ops += 1;
        st.trace.push(format!("{op_no}: {op} {}", path.display()));
        if let Some(i) = st.faults.iter().position(|f| f.at_op == op_no) {
            let fault = st.faults.remove(i);
            if let FaultKind::Crash { .. } = fault.kind {
                st.crashed = true;
            }
            return Ok(Some(fault.kind));
        }
        Ok(None)
    }

    /// Apply the crash tail policy: roll every file back to its synced
    /// prefix is deferred to [`SimFs::recover`]; here we only record the
    /// surviving tail of the faulted file by bumping its synced length.
    fn crash_keep_tail(st: &mut SimState, path: &Path, keep: usize) {
        if let Some(file) = st.files.get_mut(path) {
            // `keep = usize::MAX` means "the whole tail survives".
            file.synced = file.synced.saturating_add(keep).min(file.data.len());
        }
    }

    fn write_impl(&self, path: &Path, buf: &[u8]) -> io::Result<()> {
        let mut st = self.inner.lock().unwrap();
        let fault = self.step(&mut st, &format!("write[{}]", buf.len()), path)?;
        match fault {
            Some(FaultKind::FailOp) => Err(io_err("simulated write failure")),
            Some(FaultKind::Crash { keep_tail }) => {
                // The torn write: the buffer lands in the page cache up to
                // the crash point; `keep_tail` bytes of the unsynced tail
                // (old unsynced bytes first, then this buffer) survive.
                let entry = st.files.entry(path.to_path_buf()).or_default();
                entry.data.extend_from_slice(buf);
                Self::crash_keep_tail(&mut st, path, keep_tail);
                Err(io_err("simulated crash during write"))
            }
            Some(FaultKind::DropSync) | None => {
                let entry = st.files.entry(path.to_path_buf()).or_default();
                entry.data.extend_from_slice(buf);
                Ok(())
            }
        }
    }

    fn sync_impl(&self, path: &Path) -> io::Result<()> {
        let mut st = self.inner.lock().unwrap();
        let fault = self.step(&mut st, "sync", path)?;
        match fault {
            Some(FaultKind::FailOp) => Err(io_err("simulated sync failure")),
            Some(FaultKind::Crash { keep_tail }) => {
                // Crash before the sync takes effect.
                Self::crash_keep_tail(&mut st, path, keep_tail);
                Err(io_err("simulated crash during sync"))
            }
            Some(FaultKind::DropSync) => Ok(()), // lies: durable prefix unchanged
            None => {
                if let Some(file) = st.files.get_mut(path) {
                    file.synced = file.data.len();
                }
                Ok(())
            }
        }
    }
}

impl VfsFile for SimFsFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.fs.write_impl(&self.path, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        self.fs.sync_impl(&self.path)
    }
}

impl Vfs for SimFs {
    fn read(&self, path: &Path) -> io::Result<Option<Vec<u8>>> {
        let st = self.inner.lock().unwrap();
        if st.crashed {
            return Err(io_err("simulated crash: fs is down (read)"));
        }
        Ok(st.files.get(path).map(|f| f.data.clone()))
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.inner.lock().unwrap();
        !st.crashed && st.files.contains_key(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.inner.lock().unwrap();
        match self.step(&mut st, "create", path)? {
            Some(FaultKind::FailOp) => return Err(io_err("simulated create failure")),
            Some(FaultKind::Crash { keep_tail }) => {
                Self::crash_keep_tail(&mut st, path, keep_tail);
                return Err(io_err("simulated crash during create"));
            }
            Some(FaultKind::DropSync) | None => {
                st.files.insert(path.to_path_buf(), SimFile::default());
            }
        }
        drop(st);
        Ok(Box::new(SimFsFile {
            fs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn append(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.inner.lock().unwrap();
        // Opening for append is not a faultable disk mutation; only track
        // crash state and ensure the file exists.
        if st.crashed {
            return Err(io_err("simulated crash: fs is down (append)"));
        }
        st.files.entry(path.to_path_buf()).or_default();
        drop(st);
        Ok(Box::new(SimFsFile {
            fs: self.clone(),
            path: path.to_path_buf(),
        }))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut st = self.inner.lock().unwrap();
        match self.step(&mut st, &format!("truncate[{len}]"), path)? {
            Some(FaultKind::FailOp) => Err(io_err("simulated truncate failure")),
            Some(FaultKind::Crash { keep_tail }) => {
                Self::crash_keep_tail(&mut st, path, keep_tail);
                Err(io_err("simulated crash during truncate"))
            }
            Some(FaultKind::DropSync) | None => {
                let file = st
                    .files
                    .get_mut(path)
                    .ok_or_else(|| io_err("truncate: no such file"))?;
                file.data.truncate(len as usize);
                // Truncation is metadata; treat it as immediately durable
                // (the recovery path truncates then appends — modelling it
                // as volatile would just re-grow the same torn tail).
                file.synced = file.synced.min(file.data.len());
                Ok(())
            }
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.inner.lock().unwrap();
        match self.step(&mut st, "rename", from)? {
            Some(FaultKind::FailOp) => Err(io_err("simulated rename failure")),
            Some(FaultKind::Crash { keep_tail }) => {
                // Crash before the rename takes effect: `to` keeps its old
                // durable content, `from` survives as a stray temp file.
                Self::crash_keep_tail(&mut st, from, keep_tail);
                Err(io_err("simulated crash during rename"))
            }
            Some(FaultKind::DropSync) | None => {
                let file = st
                    .files
                    .remove(from)
                    .ok_or_else(|| io_err("rename: no such file"))?;
                // A successful rename is atomic and durable: the moved file
                // is installed with whatever is durable *in its content*,
                // and the whole content was synced by the caller before the
                // rename (checkpoint protocol). Keep its synced marker.
                st.files.insert(to.to_path_buf(), file);
                Ok(())
            }
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut st = self.inner.lock().unwrap();
        match self.step(&mut st, "remove", path)? {
            Some(FaultKind::FailOp) => Err(io_err("simulated remove failure")),
            Some(FaultKind::Crash { .. }) => Err(io_err("simulated crash during remove")),
            Some(FaultKind::DropSync) | None => st
                .files
                .remove(path)
                .map(|_| ())
                .ok_or_else(|| io_err("remove: no such file")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn synced_prefix_survives_crash() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("a")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync().unwrap();
        f.write_all(b" world").unwrap(); // unsynced
        fs.schedule_fault(Fault {
            at_op: fs.op_count(),
            kind: FaultKind::Crash { keep_tail: 0 },
        });
        assert!(f.write_all(b"!").is_err());
        assert!(fs.crashed());
        assert!(fs.read(&p("a")).is_err(), "fs is down after crash");
        fs.recover();
        assert_eq!(fs.read(&p("a")).unwrap().unwrap(), b"hello");
    }

    #[test]
    fn torn_tail_keeps_prefix_of_unsynced_bytes() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("a")).unwrap();
        f.write_all(b"base").unwrap();
        f.sync().unwrap();
        fs.schedule_fault(Fault {
            at_op: fs.op_count(),
            kind: FaultKind::Crash { keep_tail: 3 },
        });
        assert!(f.write_all(b"torn-write").is_err());
        fs.recover();
        assert_eq!(fs.read(&p("a")).unwrap().unwrap(), b"basetor");
    }

    #[test]
    fn dropped_sync_loses_data_at_next_crash() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("a")).unwrap();
        f.write_all(b"one").unwrap();
        f.sync().unwrap();
        f.write_all(b"two").unwrap();
        fs.schedule_fault(Fault {
            at_op: fs.op_count(),
            kind: FaultKind::DropSync,
        });
        f.sync().unwrap(); // lies
        fs.schedule_fault(Fault {
            at_op: fs.op_count(),
            kind: FaultKind::Crash { keep_tail: 0 },
        });
        assert!(f.write_all(b"three").is_err());
        fs.recover();
        assert_eq!(fs.read(&p("a")).unwrap().unwrap(), b"one");
    }

    #[test]
    fn rename_is_atomic_and_failable() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("tmp")).unwrap();
        f.write_all(b"snapshot").unwrap();
        f.sync().unwrap();
        fs.schedule_fault(Fault {
            at_op: fs.op_count(),
            kind: FaultKind::FailOp,
        });
        assert!(fs.rename(&p("tmp"), &p("final")).is_err());
        assert!(fs.exists(&p("tmp")) && !fs.exists(&p("final")));
        fs.rename(&p("tmp"), &p("final")).unwrap();
        assert_eq!(fs.read(&p("final")).unwrap().unwrap(), b"snapshot");
        assert!(!fs.exists(&p("tmp")));
    }

    #[test]
    fn fail_op_is_transient() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("a")).unwrap();
        fs.schedule_fault(Fault {
            at_op: fs.op_count(),
            kind: FaultKind::FailOp,
        });
        assert!(f.write_all(b"x").is_err());
        f.write_all(b"y").unwrap();
        f.sync().unwrap();
        fs.recover();
        assert_eq!(fs.read(&p("a")).unwrap().unwrap(), b"y");
    }
}
