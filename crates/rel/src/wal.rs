//! Write-ahead log: durability for committed row-level changes.
//!
//! The log is a flat file of length-prefixed, checksummed records. Each
//! record is a committed row operation (insert / delete / update with full
//! row images), so replay is idempotent-enough for crash recovery: a torn
//! tail record fails its checksum and is truncated.
//!
//! Format per record:
//! ```text
//! [u32 len][u32 checksum][payload: op u8, table (u16+bytes), rows...]
//! ```

use crate::error::{Error, Result};
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sqlgraph_json::Json;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// A committed row-level operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Row inserted into `table`.
    Insert {
        /// Table name.
        table: String,
        /// Full row image.
        row: Vec<Value>,
    },
    /// Row deleted from `table`.
    Delete {
        /// Table name.
        table: String,
        /// Full row image (used to find the row on replay).
        row: Vec<Value>,
    },
    /// Row updated in `table`.
    Update {
        /// Table name.
        table: String,
        /// Previous row image.
        old: Vec<Value>,
        /// New row image.
        new: Vec<Value>,
    },
    /// A committed DDL statement, replayed verbatim so recovery can rebuild
    /// schemas and indexes before row records arrive.
    Ddl {
        /// The original SQL text.
        sql: String,
    },
}

/// An append-only WAL file.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    /// fsync after every commit batch when true (durability vs throughput).
    pub sync_on_commit: bool,
}

impl Wal {
    /// Open (creating if needed) a WAL at `path` for appending.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| Error::Wal(format!("open {}: {e}", path.display())))?;
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            sync_on_commit: false,
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a batch of committed records (one transaction) atomically
    /// enough: records are individually checksummed; the batch is flushed
    /// (and optionally fsynced) before returning.
    pub fn append_commit(&mut self, records: &[WalRecord]) -> Result<()> {
        let mut buf = BytesMut::new();
        for r in records {
            encode_record(r, &mut buf);
        }
        self.writer
            .write_all(&buf)
            .map_err(|e| Error::Wal(format!("write: {e}")))?;
        self.writer
            .flush()
            .map_err(|e| Error::Wal(format!("flush: {e}")))?;
        if self.sync_on_commit {
            self.writer
                .get_ref()
                .sync_data()
                .map_err(|e| Error::Wal(format!("fsync: {e}")))?;
        }
        Ok(())
    }

    /// Read every intact record from a WAL file. A corrupt/torn tail stops
    /// the scan without error (standard recovery semantics).
    pub fn read_all(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
        let mut file = match File::open(path.as_ref()) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(Error::Wal(format!("open for replay: {e}"))),
        };
        let mut data = Vec::new();
        file.read_to_end(&mut data)
            .map_err(|e| Error::Wal(format!("read: {e}")))?;
        let mut buf = Bytes::from(data);
        let mut out = Vec::new();
        while buf.remaining() >= 8 {
            let len = (&buf[0..4]).get_u32() as usize;
            let checksum = (&buf[4..8]).get_u32();
            if buf.remaining() < 8 + len {
                break; // torn tail
            }
            let payload = buf.slice(8..8 + len);
            if fletcher32(&payload) != checksum {
                break; // corrupt tail
            }
            match decode_record(&mut payload.clone()) {
                Ok(r) => out.push(r),
                Err(_) => break,
            }
            buf.advance(8 + len);
        }
        Ok(out)
    }
}

fn encode_record(r: &WalRecord, out: &mut BytesMut) {
    let mut payload = BytesMut::new();
    match r {
        WalRecord::Insert { table, row } => {
            payload.put_u8(0);
            put_str(&mut payload, table);
            put_row(&mut payload, row);
        }
        WalRecord::Delete { table, row } => {
            payload.put_u8(1);
            put_str(&mut payload, table);
            put_row(&mut payload, row);
        }
        WalRecord::Update { table, old, new } => {
            payload.put_u8(2);
            put_str(&mut payload, table);
            put_row(&mut payload, old);
            put_row(&mut payload, new);
        }
        WalRecord::Ddl { sql } => {
            payload.put_u8(3);
            put_str(&mut payload, sql);
        }
    }
    out.put_u32(payload.len() as u32);
    out.put_u32(fletcher32(&payload));
    out.extend_from_slice(&payload);
}

fn decode_record(buf: &mut Bytes) -> Result<WalRecord> {
    let op = get_u8(buf)?;
    let table = get_str(buf)?;
    Ok(match op {
        0 => WalRecord::Insert {
            table,
            row: get_row(buf)?,
        },
        1 => WalRecord::Delete {
            table,
            row: get_row(buf)?,
        },
        2 => WalRecord::Update {
            table,
            old: get_row(buf)?,
            new: get_row(buf)?,
        },
        3 => WalRecord::Ddl { sql: table },
        other => return Err(Error::Wal(format!("unknown WAL op {other}"))),
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_row(buf: &mut BytesMut, row: &[Value]) {
    buf.put_u32(row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Double(f) => {
            buf.put_u8(3);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Value::Json(j) => {
            buf.put_u8(5);
            put_str(buf, &j.to_string());
        }
        Value::Array(items) => {
            buf.put_u8(6);
            buf.put_u32(items.len() as u32);
            for item in items.iter() {
                put_value(buf, item);
            }
        }
    }
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated record".into()));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(Error::Wal("truncated record".into()));
    }
    Ok(buf.get_u32())
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(Error::Wal("truncated string".into()));
    }
    let bytes = buf.split_to(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::Wal("invalid UTF-8".into()))
}

fn get_row(buf: &mut Bytes) -> Result<Vec<Value>> {
    let n = get_u32(buf)? as usize;
    let mut row = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

fn get_value(buf: &mut Bytes) -> Result<Value> {
    Ok(match get_u8(buf)? {
        0 => Value::Null,
        1 => Value::Bool(get_u8(buf)? != 0),
        2 => {
            if buf.remaining() < 8 {
                return Err(Error::Wal("truncated int".into()));
            }
            Value::Int(buf.get_i64_le())
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(Error::Wal("truncated double".into()));
            }
            Value::Double(buf.get_f64_le())
        }
        4 => Value::str(get_str(buf)?),
        5 => {
            let text = get_str(buf)?;
            let json: Json = sqlgraph_json::parse(&text)
                .map_err(|e| Error::Wal(format!("bad JSON in WAL: {e}")))?;
            Value::json(json)
        }
        6 => {
            let n = get_u32(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(get_value(buf)?);
            }
            Value::array(items)
        }
        other => return Err(Error::Wal(format!("unknown value tag {other}"))),
    })
}

/// Fletcher-32 checksum — cheap and detects torn/garbled tails.
fn fletcher32(data: &[u8]) -> u32 {
    let (mut a, mut b) = (0u32, 0u32);
    for chunk in data.chunks(359) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= 65535;
        b %= 65535;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sqlgraph-wal-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                table: "va".into(),
                row: vec![
                    Value::Int(1),
                    Value::json(sqlgraph_json::parse(r#"{"name":"marko"}"#).unwrap()),
                ],
            },
            WalRecord::Delete {
                table: "ea".into(),
                row: vec![Value::Int(7), Value::str("knows")],
            },
            WalRecord::Update {
                table: "opa".into(),
                old: vec![Value::Null, Value::Double(0.5)],
                new: vec![Value::Bool(true), Value::array(vec![Value::Int(1)])],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&sample_records()).unwrap();
            wal.append_commit(&sample_records()[..1]).unwrap();
        }
        let records = Wal::read_all(&path).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0], sample_records()[0]);
        assert_eq!(records[3], sample_records()[0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&sample_records()).unwrap();
        }
        // Append garbage simulating a torn write.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[9, 9, 9, 9, 1]).unwrap();
        }
        let records = Wal::read_all(&path).unwrap();
        assert_eq!(records.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&sample_records()).unwrap();
        }
        // Flip a byte in the middle of the file (second record's payload).
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let records = Wal::read_all(&path).unwrap();
        assert!(records.len() < 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(Wal::read_all(tmp("never-created")).unwrap().is_empty());
    }
}
