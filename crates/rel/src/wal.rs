//! Write-ahead log: durability for committed row-level changes.
//!
//! The log is a sequence of *segment* files of length-prefixed, checksummed
//! records, written through the pluggable [`crate::io::Vfs`] layer. Each
//! committed transaction is one contiguous run of operation records closed
//! by a [`WalRecord::Commit`] marker, appended with a single write so a
//! torn tail can only ever lose the *whole* transaction, never half of it.
//! Replay applies commit-closed runs only; a tail without its marker is
//! discarded and truncated away before the log accepts new appends.
//!
//! Row operations carry the physical [`RowId`] they touched so replay can
//! target the exact slot even when duplicate row images exist; full images
//! are still logged for auditability and defense-in-depth checks.
//!
//! Segments rotate at checkpoint time (see [`crate::checkpoint`]): segment
//! `gen` holds everything committed since snapshot `gen` was taken, so
//! recovery is snapshot-load + tail-segment replay instead of a full
//! history scan.
//!
//! Format per record:
//! ```text
//! [u32 len][u32 checksum][payload: op u8, ...]
//! ```

use crate::error::{Error, Result};
use crate::index::RowId;
use crate::io::{Vfs, VfsFile};
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sqlgraph_json::Json;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A committed row-level operation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Row inserted into `table` at physical slot `row_id`.
    Insert {
        /// Table name.
        table: String,
        /// Slab slot the row landed in.
        row_id: RowId,
        /// Full row image.
        row: Vec<Value>,
    },
    /// Row deleted from `table`.
    Delete {
        /// Table name.
        table: String,
        /// Slab slot the row occupied.
        row_id: RowId,
        /// Full row image (for audit; replay targets `row_id`).
        row: Vec<Value>,
    },
    /// Row updated in `table`.
    Update {
        /// Table name.
        table: String,
        /// Slab slot the row occupies.
        row_id: RowId,
        /// Previous row image.
        old: Vec<Value>,
        /// New row image.
        new: Vec<Value>,
    },
    /// A committed DDL statement, replayed verbatim so recovery can rebuild
    /// schemas and indexes before row records arrive.
    Ddl {
        /// The original SQL text.
        sql: String,
    },
    /// Transaction boundary: everything since the previous marker commits
    /// atomically at timestamp `ts` on the MVCC commit clock. Written
    /// automatically by [`Wal::append_commit`]; replay restores the clock
    /// from the largest `ts` seen.
    Commit {
        /// Commit timestamp assigned by [`crate::txn::TxnManager`].
        ts: u64,
    },
}

/// Segment file path for generation `gen` under base path `base`: the base
/// path itself for generation 0 (backward compatible with single-file
/// logs), `<base>.g<gen>` afterwards.
pub fn segment_path(base: &Path, gen: u64) -> PathBuf {
    if gen == 0 {
        base.to_path_buf()
    } else {
        PathBuf::from(format!("{}.g{gen}", base.display()))
    }
}

/// Everything a scan learned about one segment file.
#[derive(Debug, Default)]
pub struct SegmentScan {
    /// Commit-closed transactions, in log order, each with its commit
    /// timestamp.
    pub commits: Vec<(u64, Vec<WalRecord>)>,
    /// Byte offset just past the last commit marker — the only safe append
    /// point. Everything beyond is torn, corrupt, or commit-less.
    pub valid_len: u64,
    /// Total file length scanned.
    pub file_len: u64,
    /// Records seen after the last commit marker (intact but uncommitted —
    /// discarded by recovery).
    pub dangling_records: usize,
}

/// An append-only WAL segment.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    base: PathBuf,
    gen: u64,
    file: Box<dyn VfsFile>,
    /// fsync after every commit batch when true (durability vs throughput).
    pub sync_on_commit: bool,
    /// Set after an append error: the on-disk tail is in an unknown state
    /// (the failed transaction's bytes may or may not be durable), so
    /// further appends could interleave new commits with a half-written
    /// one. The log refuses writes until the database is reopened, which
    /// truncates the tail back to the last commit marker. A transaction
    /// whose commit *errored* is therefore indeterminate: it is rolled back
    /// in memory, but if its bytes did reach disk intact, reopening will
    /// replay it.
    poisoned: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("base", &self.base)
            .field("gen", &self.gen)
            .field("sync_on_commit", &self.sync_on_commit)
            .finish()
    }
}

impl Wal {
    /// Open (creating if needed) the generation-0 segment at `path` for
    /// appending, on the real file system. Convenience for tests and
    /// single-segment use; recovery paths use [`Wal::open_segment`].
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        Wal::open_segment(Arc::new(crate::io::StdFs), path.as_ref(), 0)
    }

    /// Open segment `gen` of the log at `base` for appending.
    pub fn open_segment(vfs: Arc<dyn Vfs>, base: &Path, gen: u64) -> Result<Wal> {
        let path = segment_path(base, gen);
        let file = vfs
            .append(&path)
            .map_err(|e| Error::Wal(format!("open {}: {e}", path.display())))?;
        Ok(Wal {
            vfs,
            base: base.to_path_buf(),
            gen,
            file,
            sync_on_commit: false,
            poisoned: false,
        })
    }

    /// Base path of the log (segment files derive from it).
    pub fn base(&self) -> &Path {
        &self.base
    }

    /// Path of the active segment file.
    pub fn path(&self) -> PathBuf {
        segment_path(&self.base, self.gen)
    }

    /// Generation of the active segment.
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// The file-system layer this log writes through.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        self.vfs.clone()
    }

    /// Switch to a pre-opened segment handle (checkpoint rotation):
    /// subsequent commits append to it. Infallible by design — the caller
    /// opens the handle *before* installing the snapshot so the snapshot
    /// and active segment can never disagree. The old segment file is left
    /// on disk for the caller to retire.
    pub fn install_segment(&mut self, gen: u64, file: Box<dyn VfsFile>) {
        self.file = file;
        self.gen = gen;
    }

    /// Append one transaction: `records` followed by a commit marker, as a
    /// single write (so a torn tail drops the transaction atomically),
    /// flushed — and fsynced when `sync_on_commit` — before returning.
    pub fn append_commit(&mut self, records: &[WalRecord], ts: u64) -> Result<()> {
        if self.poisoned {
            return Err(Error::Wal(
                "log poisoned by an earlier append failure; reopen the database to recover".into(),
            ));
        }
        let mut buf = BytesMut::new();
        for r in records {
            encode_record(r, &mut buf);
        }
        encode_record(&WalRecord::Commit { ts }, &mut buf);
        if let Err(e) = self.file.write_all(&buf) {
            self.poisoned = true;
            return Err(Error::Wal(format!("write: {e}")));
        }
        if self.sync_on_commit {
            if let Err(e) = self.file.sync() {
                self.poisoned = true;
                return Err(Error::Wal(format!("fsync: {e}")));
            }
        }
        Ok(())
    }

    /// Whether an append error has made this log read-only (see the
    /// `poisoned` field docs).
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Scan a segment file: parse every intact record, group them into
    /// commit-closed transactions, and report the last safe append offset.
    /// A corrupt or torn record stops the scan without error (standard
    /// recovery semantics); so does an intact tail with no commit marker.
    pub fn scan_segment(vfs: &dyn Vfs, path: &Path) -> Result<SegmentScan> {
        let data = match vfs.read(path) {
            Ok(Some(d)) => d,
            Ok(None) => return Ok(SegmentScan::default()),
            Err(e) => return Err(Error::Wal(format!("open for replay: {e}"))),
        };
        let file_len = data.len() as u64;
        let mut buf = Bytes::from(data);
        let mut scan = SegmentScan {
            file_len,
            ..SegmentScan::default()
        };
        let mut offset = 0u64;
        let mut pending: Vec<WalRecord> = Vec::new();
        while buf.remaining() >= 8 {
            let len = (&buf[0..4]).get_u32() as usize;
            let checksum = (&buf[4..8]).get_u32();
            if buf.remaining() < 8 + len {
                break; // torn tail
            }
            let payload = buf.slice(8..8 + len);
            if fletcher32(&payload) != checksum {
                break; // corrupt record
            }
            let record = match decode_record(&mut payload.clone()) {
                Ok(r) => r,
                Err(_) => break,
            };
            buf.advance(8 + len);
            offset += 8 + len as u64;
            if let WalRecord::Commit { ts } = record {
                scan.commits.push((ts, std::mem::take(&mut pending)));
                scan.valid_len = offset;
            } else {
                pending.push(record);
            }
        }
        scan.dangling_records = pending.len();
        Ok(scan)
    }

    /// Every record of every *committed* transaction in the generation-0
    /// segment at `path`, flattened in log order. Convenience for tests.
    pub fn read_all(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
        let scan = Wal::scan_segment(&crate::io::StdFs, path.as_ref())?;
        Ok(scan.commits.into_iter().flat_map(|(_, r)| r).collect())
    }
}

fn encode_record(r: &WalRecord, out: &mut BytesMut) {
    let mut payload = BytesMut::new();
    match r {
        WalRecord::Insert { table, row_id, row } => {
            payload.put_u8(0);
            put_str(&mut payload, table);
            payload.put_u64_le(*row_id as u64);
            put_row(&mut payload, row);
        }
        WalRecord::Delete { table, row_id, row } => {
            payload.put_u8(1);
            put_str(&mut payload, table);
            payload.put_u64_le(*row_id as u64);
            put_row(&mut payload, row);
        }
        WalRecord::Update {
            table,
            row_id,
            old,
            new,
        } => {
            payload.put_u8(2);
            put_str(&mut payload, table);
            payload.put_u64_le(*row_id as u64);
            put_row(&mut payload, old);
            put_row(&mut payload, new);
        }
        WalRecord::Ddl { sql } => {
            payload.put_u8(3);
            put_str(&mut payload, sql);
        }
        WalRecord::Commit { ts } => {
            payload.put_u8(4);
            payload.put_u64_le(*ts);
        }
    }
    out.put_u32(payload.len() as u32);
    out.put_u32(fletcher32(&payload));
    out.extend_from_slice(&payload);
}

fn decode_record(buf: &mut Bytes) -> Result<WalRecord> {
    let op = get_u8(buf)?;
    if op == 4 {
        return Ok(WalRecord::Commit { ts: get_u64(buf)? });
    }
    let table = get_str(buf)?;
    Ok(match op {
        0 => WalRecord::Insert {
            table,
            row_id: get_u64(buf)? as RowId,
            row: get_row(buf)?,
        },
        1 => WalRecord::Delete {
            table,
            row_id: get_u64(buf)? as RowId,
            row: get_row(buf)?,
        },
        2 => WalRecord::Update {
            table,
            row_id: get_u64(buf)? as RowId,
            old: get_row(buf)?,
            new: get_row(buf)?,
        },
        3 => WalRecord::Ddl { sql: table },
        other => return Err(Error::Wal(format!("unknown WAL op {other}"))),
    })
}

pub(crate) fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn put_row(buf: &mut BytesMut, row: &[Value]) {
    buf.put_u32(row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

pub(crate) fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(*b as u8);
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Double(f) => {
            buf.put_u8(3);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
        Value::Json(j) => {
            buf.put_u8(5);
            put_str(buf, &j.to_string());
        }
        Value::Array(items) => {
            buf.put_u8(6);
            buf.put_u32(items.len() as u32);
            for item in items.iter() {
                put_value(buf, item);
            }
        }
    }
}

pub(crate) fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(Error::Wal("truncated record".into()));
    }
    Ok(buf.get_u8())
}

pub(crate) fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(Error::Wal("truncated record".into()));
    }
    Ok(buf.get_u32())
}

pub(crate) fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(Error::Wal("truncated record".into()));
    }
    Ok(buf.get_u64_le())
}

pub(crate) fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(Error::Wal("truncated string".into()));
    }
    let bytes = buf.split_to(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::Wal("invalid UTF-8".into()))
}

pub(crate) fn get_row(buf: &mut Bytes) -> Result<Vec<Value>> {
    let n = get_u32(buf)? as usize;
    let mut row = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

pub(crate) fn get_value(buf: &mut Bytes) -> Result<Value> {
    Ok(match get_u8(buf)? {
        0 => Value::Null,
        1 => Value::Bool(get_u8(buf)? != 0),
        2 => {
            if buf.remaining() < 8 {
                return Err(Error::Wal("truncated int".into()));
            }
            Value::Int(buf.get_i64_le())
        }
        3 => {
            if buf.remaining() < 8 {
                return Err(Error::Wal("truncated double".into()));
            }
            Value::Double(buf.get_f64_le())
        }
        4 => Value::str(get_str(buf)?),
        5 => {
            let text = get_str(buf)?;
            let json: Json = sqlgraph_json::parse(&text)
                .map_err(|e| Error::Wal(format!("bad JSON in WAL: {e}")))?;
            Value::json(json)
        }
        6 => {
            let n = get_u32(buf)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(get_value(buf)?);
            }
            Value::array(items)
        }
        other => return Err(Error::Wal(format!("unknown value tag {other}"))),
    })
}

/// Fletcher-32 checksum — cheap and detects torn/garbled tails.
pub(crate) fn fletcher32(data: &[u8]) -> u32 {
    let (mut a, mut b) = (0u32, 0u32);
    for chunk in data.chunks(359) {
        for &byte in chunk {
            a += byte as u32;
            b += a;
        }
        a %= 65535;
        b %= 65535;
    }
    (b << 16) | a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sqlgraph-wal-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Insert {
                table: "va".into(),
                row_id: 0,
                row: vec![
                    Value::Int(1),
                    Value::json(sqlgraph_json::parse(r#"{"name":"marko"}"#).unwrap()),
                ],
            },
            WalRecord::Delete {
                table: "ea".into(),
                row_id: 7,
                row: vec![Value::Int(7), Value::str("knows")],
            },
            WalRecord::Update {
                table: "opa".into(),
                row_id: 3,
                old: vec![Value::Null, Value::Double(0.5)],
                new: vec![Value::Bool(true), Value::array(vec![Value::Int(1)])],
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&sample_records(), 1).unwrap();
            wal.append_commit(&sample_records()[..1], 2).unwrap();
        }
        let records = Wal::read_all(&path).unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0], sample_records()[0]);
        assert_eq!(records[3], sample_records()[0]);
        let scan = Wal::scan_segment(&crate::io::StdFs, &path).unwrap();
        assert_eq!(scan.commits.len(), 2);
        assert_eq!(scan.commits[0].0, 1, "commit timestamps round-trip");
        assert_eq!(scan.commits[1].0, 2);
        assert_eq!(scan.valid_len, scan.file_len);
        assert_eq!(scan.dangling_records, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&sample_records(), 1).unwrap();
        }
        let good_len = std::fs::metadata(&path).unwrap().len();
        // Append garbage simulating a torn write.
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&[9, 9, 9, 9, 1]).unwrap();
        }
        let records = Wal::read_all(&path).unwrap();
        assert_eq!(records.len(), 3);
        let scan = Wal::scan_segment(&crate::io::StdFs, &path).unwrap();
        assert_eq!(scan.valid_len, good_len, "torn bytes are past valid_len");
        assert!(scan.file_len > scan.valid_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checksum_stops_replay() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&sample_records(), 1).unwrap();
        }
        // Flip a byte in the middle of the file (second record's payload).
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        // The commit marker is past the corruption, so nothing commits.
        let records = Wal::read_all(&path).unwrap();
        assert!(records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn commitless_tail_is_not_replayed() {
        let path = tmp("commitless");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(&sample_records(), 1).unwrap();
        }
        // Append an intact record with no commit marker (simulating a crash
        // that persisted only part of the next transaction's batch).
        {
            let mut buf = BytesMut::new();
            encode_record(&sample_records()[0], &mut buf);
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&buf).unwrap();
        }
        let scan = Wal::scan_segment(&crate::io::StdFs, &path).unwrap();
        assert_eq!(scan.commits.len(), 1);
        assert_eq!(scan.commits[0].1.len(), 3);
        assert_eq!(scan.dangling_records, 1);
        assert!(scan.valid_len < scan.file_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(Wal::read_all(tmp("never-created")).unwrap().is_empty());
    }

    #[test]
    fn segment_paths() {
        let base = Path::new("/x/db.wal");
        assert_eq!(segment_path(base, 0), PathBuf::from("/x/db.wal"));
        assert_eq!(segment_path(base, 3), PathBuf::from("/x/db.wal.g3"));
    }
}
