//! The engine's dynamic value type.
//!
//! `Value` must serve three masters: expression evaluation (SQL semantics
//! with NULLs), join/distinct hashing (equality must be canonical across
//! `Int`/`Double`), and ordering (`ORDER BY`, B-tree indexes need a total
//! order). The canonical rules:
//!
//! * SQL comparisons involving `Null` are *unknown* (`None` from
//!   [`Value::sql_cmp`]); `WHERE` treats unknown as false.
//! * `Int(3)` and `Double(3.0)` are equal and hash identically.
//! * [`Value::total_cmp`] is a total order with `Null` first and types
//!   ranked `Null < Bool < numbers < Str < Json < Array`.

use crate::error::{Error, Result};
use sqlgraph_json::Json;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically typed SQL value.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// SQL NULL.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 string; `Arc` so projection copies are cheap.
    Str(Arc<str>),
    /// JSON document column value.
    Json(Arc<Json>),
    /// Array value (used for traversal `path` tracking).
    Array(Arc<Vec<Value>>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a JSON value.
    pub fn json(j: Json) -> Value {
        Value::Json(Arc::new(j))
    }

    /// Build an array value.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Arc::new(items))
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric content widened to f64 (`Int` or `Double`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// String content, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean content, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// JSON content, if this is a `Json`.
    pub fn as_json(&self) -> Option<&Json> {
        match self {
            Value::Json(j) => Some(j),
            _ => None,
        }
    }

    /// Array content, if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Bool(_) => "BOOLEAN",
            Value::Int(_) => "INTEGER",
            Value::Double(_) => "DOUBLE",
            Value::Str(_) => "TEXT",
            Value::Json(_) => "JSON",
            Value::Array(_) => "ARRAY",
        }
    }

    /// SQL comparison: `None` when either side is NULL or the types are
    /// incomparable (e.g. `1 < 'a'` is unknown, matching the engine's
    /// lenient dynamic typing).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Value::Json(a), Value::Json(b)) => Some(a.total_cmp(b)),
            (Value::Array(a), Value::Array(b)) => Some(cmp_arrays(a, b)),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }

    /// SQL equality with NULL semantics: `None` if either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Total order for sorting and B-tree keys. NULL sorts first; distinct
    /// type classes are ranked; numbers compare across Int/Double.
    ///
    /// This is the engine-wide ordering contract — `ORDER BY`, B-tree index
    /// keys, and MIN/MAX all route through it, so it must be total even on
    /// inputs SQL comparison calls *unknown*:
    ///
    /// * `NULL` is the smallest value. With `ASC` (the default) NULLs come
    ///   first; `DESC` reverses the whole ordering, so NULLs come last.
    /// * Mixed types rank `NULL < BOOLEAN < numbers < TEXT < JSON < ARRAY`.
    /// * `Int` and `Double` compare numerically (`1 < 1.5 < 2`); `-0.0`
    ///   equals `0.0`; `NaN` compares greater than every other number and
    ///   equal to itself, so sorts never panic and ties stay stable.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Double(_) => 2,
                Value::Str(_) => 3,
                Value::Json(_) => 4,
                Value::Array(_) => 5,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.as_ref().cmp(b.as_ref()),
            (Value::Json(a), Value::Json(b)) => a.total_cmp(b),
            (Value::Array(a), Value::Array(b)) => cmp_arrays(a, b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                match x.partial_cmp(&y) {
                    Some(o) => o,
                    None => y.is_nan().cmp(&x.is_nan()).reverse(),
                }
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Cast for `CAST(e AS T)` and the attribute micro-benchmark queries.
    pub fn cast(&self, target: CastType) -> Result<Value> {
        let fail = || {
            Err(Error::Type(format!(
                "cannot cast {} to {:?}",
                self.type_name(),
                target
            )))
        };
        match target {
            CastType::Integer => match self {
                Value::Null => Ok(Value::Null),
                Value::Int(v) => Ok(Value::Int(*v)),
                Value::Double(v) => Ok(Value::Int(*v as i64)),
                Value::Bool(b) => Ok(Value::Int(*b as i64)),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| Error::Type(format!("cannot cast '{s}' to INTEGER"))),
                _ => fail(),
            },
            CastType::Double => match self {
                Value::Null => Ok(Value::Null),
                Value::Int(v) => Ok(Value::Double(*v as f64)),
                Value::Double(v) => Ok(Value::Double(*v)),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Double)
                    .map_err(|_| Error::Type(format!("cannot cast '{s}' to DOUBLE"))),
                _ => fail(),
            },
            CastType::Text => match self {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Str(s.clone())),
                other => Ok(Value::str(other.to_string())),
            },
            CastType::Boolean => match self {
                Value::Null => Ok(Value::Null),
                Value::Bool(b) => Ok(Value::Bool(*b)),
                Value::Int(v) => Ok(Value::Bool(*v != 0)),
                _ => fail(),
            },
        }
    }
}

/// Targets accepted by `CAST`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CastType {
    /// 64-bit integer.
    Integer,
    /// 64-bit float.
    Double,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Boolean,
}

fn cmp_arrays(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let o = x.total_cmp(y);
        if o != Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

/// Canonical equality used by hash joins, DISTINCT, and hash indexes:
/// equality agrees with `total_cmp == Equal` (so NULL == NULL here, unlike
/// SQL predicates — index keys need reflexive equality).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                b.hash(state);
            }
            // Numbers hash by canonical numeric value so Int(3) == Double(3.0)
            // hash identically.
            Value::Int(_) | Value::Double(_) => {
                state.write_u8(2);
                let f = self.as_f64().unwrap();
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 {
                    state.write_u8(0);
                    (f as i64).hash(state);
                } else {
                    state.write_u8(1);
                    let f = if f == 0.0 { 0.0 } else { f };
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                state.write_u8(3);
                s.hash(state);
            }
            Value::Json(j) => {
                state.write_u8(4);
                j.hash(state);
            }
            Value::Array(a) => {
                state.write_u8(5);
                for v in a.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Json(j) => write!(f, "{j}"),
            Value::Array(a) => {
                f.write_str("[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<Json> for Value {
    fn from(v: Json) -> Self {
        Value::json(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_semantics() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        // ... but canonical equality is reflexive for index keys.
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Double(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Double(3.0)));
        assert_eq!(Value::Int(3).sql_eq(&Value::Double(3.0)), Some(true));
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Double(3.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_are_unknown() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::str("a")), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_null_first() {
        let mut vals = [
            Value::str("a"),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Double(2.5),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Double(2.5));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::str("a"));
    }

    #[test]
    fn total_order_handles_nan_and_signed_zero() {
        let nan = Value::Double(f64::NAN);
        // NaN is greater than every other number and equal to itself.
        assert_eq!(
            nan.total_cmp(&Value::Double(f64::INFINITY)),
            Ordering::Greater
        );
        assert_eq!(Value::Int(i64::MAX).total_cmp(&nan), Ordering::Less);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        // ... but still below the string class.
        assert_eq!(nan.total_cmp(&Value::str("")), Ordering::Less);
        assert_eq!(
            Value::Double(-0.0).total_cmp(&Value::Double(0.0)),
            Ordering::Equal
        );
        assert_eq!(Value::Double(-0.0), Value::Int(0));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::str("42").cast(CastType::Integer).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::str(" 2.5 ").cast(CastType::Double).unwrap(),
            Value::Double(2.5)
        );
        assert_eq!(Value::Int(7).cast(CastType::Text).unwrap(), Value::str("7"));
        assert_eq!(Value::Null.cast(CastType::Integer).unwrap(), Value::Null);
        assert!(Value::str("x").cast(CastType::Integer).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(
            Value::array(vec![Value::Int(1), Value::str("a")]).to_string(),
            "[1, a]"
        );
    }
}
