//! Multi-version concurrency control: snapshot-isolation transactions.
//!
//! The paper's concurrency claim — LinkBench throughput 10–30× over the
//! graph-native stores — rests on the relational engine letting readers
//! proceed while writers commit. This module supplies that engine layer:
//!
//! * a global **commit clock** (`u64` timestamps, 0 = "always committed"),
//! * per-transaction **snapshots** (`ts` = last commit visible, `token` =
//!   this transaction's provisional-write marker),
//! * the **visibility predicate** every read path evaluates against a row
//!   version's `begin`/`end` stamps,
//! * the **active-snapshot registry** whose minimum drives the vacuum
//!   watermark (versions dead to every present and future snapshot are
//!   reclaimable),
//! * a SQL [`Session`] exposing `BEGIN` / `COMMIT` / `ROLLBACK`.
//!
//! ## Version stamps
//!
//! A row version (see [`crate::storage::Version`]) carries two atomic
//! timestamps. While a transaction's write is uncommitted the stamp holds a
//! *marker* — the transaction's token with the high bit set — and flips to
//! the real commit timestamp when the transaction commits (plain atomic
//! stores; no locks on the read side). `end == TS_INF` means "live".
//!
//! ## Commit protocol
//!
//! Commits serialize on a single mutex: reserve `ts = clock + 1`, append
//! the redo records + `Commit{ts}` to the WAL, stamp every provisional
//! version to `ts`, and only then advance the clock. Snapshots read the
//! clock *first*, so a snapshot either predates a commit entirely (its
//! versions still carry markers or a larger `ts` — invisible either way)
//! or postdates it entirely (fully stamped). Readers never block.

use crate::db::{Database, TxnState};
use crate::error::{Error, Result};
use crate::exec::Relation;
use crate::sql::ast::Statement;
use crate::value::Value;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// High bit marking a provisional (uncommitted) stamp: `TXN_BIT | token`.
pub const TXN_BIT: u64 = 1 << 63;
/// `end` stamp of a live (undeleted) version.
pub const TS_INF: u64 = u64::MAX;
/// Largest possible commit timestamp: a snapshot at `TS_LATEST` sees every
/// committed version and no provisional one.
pub const TS_LATEST: u64 = TXN_BIT - 1;

/// The provisional stamp for a transaction token.
#[inline]
pub fn marker(token: u64) -> u64 {
    TXN_BIT | token
}

/// Whether a stamp is a provisional marker (not a commit ts, not `TS_INF`).
#[inline]
pub fn is_marker(ts: u64) -> bool {
    ts & TXN_BIT != 0 && ts != TS_INF
}

/// A transaction's view of the database: every version committed at or
/// before `ts`, plus this transaction's own provisional writes (`token`).
///
/// Tokens start at 1; `token == 0` denotes a read-only snapshot that owns
/// no provisional writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Last commit timestamp visible to this snapshot.
    pub ts: u64,
    /// This transaction's write token (0 = none).
    pub token: u64,
}

impl Snapshot {
    /// The all-committed view: sees every committed version, no provisional
    /// ones. The view of single-version (pre-MVCC style) storage paths —
    /// bulk load, WAL replay, checkpoint encode.
    pub fn latest() -> Snapshot {
        Snapshot {
            ts: TS_LATEST,
            token: 0,
        }
    }

    /// The MVCC visibility predicate over a version's stamps.
    #[inline]
    pub fn sees(&self, begin: u64, end: u64) -> bool {
        // Created: either our own provisional write, or committed at or
        // before our snapshot.
        let created = if is_marker(begin) {
            begin == marker(self.token)
        } else {
            begin <= self.ts
        };
        if !created {
            return false;
        }
        // Not yet deleted: live, provisionally deleted by *someone else*
        // (their delete is invisible to us), or deleted after our snapshot.
        if end == TS_INF {
            return true;
        }
        if is_marker(end) {
            return end != marker(self.token);
        }
        end > self.ts
    }
}

/// A monotone commit-timestamp allocator, shareable across databases.
///
/// A single database owns a private oracle; a sharded deployment hands one
/// oracle to every shard so cross-shard commits carry one globally ordered
/// timestamp. The oracle only *allocates*; each database keeps its own
/// `applied` clock (the last timestamp it has fully stamped), so readers on
/// one shard never wait on commits happening on another. Allocation holes —
/// timestamps reserved by commits that later failed — are harmless: replay
/// and visibility only care about the stamps actually written.
#[derive(Debug, Default)]
pub struct TsOracle {
    /// Last allocated timestamp.
    next: AtomicU64,
}

impl TsOracle {
    /// A fresh oracle at 0.
    pub fn new() -> TsOracle {
        TsOracle::default()
    }

    /// Reserve the next commit timestamp (strictly increasing, never 0).
    pub fn allocate(&self) -> u64 {
        self.next.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Ratchet the allocator to at least `ts` (recovery path: replayed
    /// commits must never collide with future allocations).
    pub fn ratchet(&self, ts: u64) {
        self.next.fetch_max(ts, Ordering::AcqRel);
    }

    /// Last allocated timestamp.
    pub fn last(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }
}

/// The per-database transaction state: applied-commit clock, token
/// allocator, active-snapshot registry, and the commit serialization point.
/// Timestamps come from a [`TsOracle`] that may be shared between databases.
#[derive(Debug)]
pub struct TxnManager {
    /// Commit-timestamp allocator (shared across shards when sharded).
    oracle: Arc<TsOracle>,
    /// Last commit timestamp fully stamped *in this database*. Advanced
    /// *after* a commit is stamped, so any snapshot taken at the new value
    /// sees all of it. Always ≤ the oracle's last allocation.
    applied: AtomicU64,
    /// Next write token (starts at 1; 0 is the read-only token).
    next_token: AtomicU64,
    /// Registered snapshot timestamps → refcount. The minimum key is the
    /// vacuum watermark.
    active: Mutex<BTreeMap<u64, usize>>,
    /// Serializes commits: ts reservation + WAL append + stamping + clock
    /// advance happen atomically with respect to other commits.
    pub(crate) commit_mutex: Mutex<()>,
}

impl Default for TxnManager {
    fn default() -> TxnManager {
        TxnManager::new()
    }
}

impl TxnManager {
    /// A fresh manager at clock 0 with a private oracle.
    pub fn new() -> TxnManager {
        TxnManager::with_oracle(Arc::new(TsOracle::new()))
    }

    /// A fresh manager drawing timestamps from `oracle`.
    pub fn with_oracle(oracle: Arc<TsOracle>) -> TxnManager {
        TxnManager {
            oracle,
            applied: AtomicU64::new(0),
            next_token: AtomicU64::new(1),
            active: Mutex::new(BTreeMap::new()),
            commit_mutex: Mutex::new(()),
        }
    }

    /// The timestamp oracle this manager allocates from.
    pub fn oracle(&self) -> &Arc<TsOracle> {
        &self.oracle
    }

    /// Current applied-commit clock (this database's last stamped commit).
    pub fn now(&self) -> u64 {
        self.applied.load(Ordering::Acquire)
    }

    /// Reserve a commit timestamp (caller holds `commit_mutex`).
    pub(crate) fn allocate_ts(&self) -> u64 {
        self.oracle.allocate()
    }

    /// Advance the applied clock to `ts` (commit path). `fetch_max` rather
    /// than a store: a shared oracle means another shard may have allocated
    /// past us, and a multi-shard commit advances each participant.
    pub(crate) fn advance_clock(&self, ts: u64) {
        self.applied.fetch_max(ts, Ordering::AcqRel);
    }

    /// Ratchet the clock *and* the oracle up to at least `ts` (recovery).
    pub(crate) fn restore_clock(&self, ts: u64) {
        self.applied.fetch_max(ts, Ordering::AcqRel);
        self.oracle.ratchet(ts);
    }

    /// Begin a writing transaction: fresh token, snapshot registered in the
    /// active set so vacuum cannot reclaim versions it can still see.
    pub fn begin(&self) -> Snapshot {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        self.register(token)
    }

    /// Begin a read-only snapshot (token 0, registered).
    pub fn read_snapshot(&self) -> Snapshot {
        self.register(0)
    }

    fn register(&self, token: u64) -> Snapshot {
        // Read the clock under the registry lock so the watermark can never
        // pass a timestamp that is about to be registered.
        let mut active = self.active.lock();
        let ts = self.now();
        *active.entry(ts).or_insert(0) += 1;
        Snapshot { ts, token }
    }

    /// Release a snapshot previously returned by [`TxnManager::begin`] /
    /// [`TxnManager::read_snapshot`].
    pub fn release(&self, snap: Snapshot) {
        let mut active = self.active.lock();
        if let Some(n) = active.get_mut(&snap.ts) {
            *n -= 1;
            if *n == 0 {
                active.remove(&snap.ts);
            }
        }
    }

    /// The vacuum watermark: the oldest active snapshot timestamp, or the
    /// clock when nothing is active. A version whose committed `end` is at
    /// or below the watermark is invisible to every present and future
    /// snapshot (`end > ts` fails for all of them) and can be reclaimed.
    pub fn watermark(&self) -> u64 {
        let active = self.active.lock();
        active.keys().next().copied().unwrap_or_else(|| self.now())
    }

    /// Number of registered active snapshots (test/introspection hook).
    pub fn active_snapshots(&self) -> usize {
        self.active.lock().values().sum()
    }
}

/// A SQL session: autocommit by default, with `BEGIN` / `COMMIT` /
/// `ROLLBACK` controlling an explicit snapshot-isolation transaction.
/// Dropping a session with an open transaction rolls it back.
///
/// ```
/// use sqlgraph_rel::{Database, Session};
///
/// let db = Database::new();
/// db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)").unwrap();
/// let mut s = Session::new(&db);
/// s.execute("BEGIN").unwrap();
/// s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
/// s.execute("COMMIT").unwrap();
/// ```
pub struct Session<'a> {
    db: &'a Database,
    state: Option<TxnState>,
}

impl<'a> Session<'a> {
    /// A new session in autocommit mode.
    pub fn new(db: &'a Database) -> Session<'a> {
        Session { db, state: None }
    }

    /// The underlying database.
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.state.is_some()
    }

    /// Execute one statement; `BEGIN` / `COMMIT` / `ROLLBACK` switch the
    /// session between autocommit and an explicit transaction.
    pub fn execute(&mut self, sql: &str) -> Result<Relation> {
        self.execute_with_params(sql, &[])
    }

    /// [`Session::execute`] with positional `?` parameters.
    pub fn execute_with_params(&mut self, sql: &str, params: &[Value]) -> Result<Relation> {
        let stmt = self.db.parse_cached(sql)?;
        match &*stmt {
            Statement::Begin => {
                if self.state.is_some() {
                    return Err(Error::Invalid(
                        "BEGIN: a transaction is already open".into(),
                    ));
                }
                self.state = Some(self.db.begin_state());
                Ok(Relation::count(0))
            }
            Statement::Commit => match self.state.take() {
                Some(st) => self.db.commit_state(st).map(|()| Relation::count(0)),
                None => Err(Error::Invalid("COMMIT: no open transaction".into())),
            },
            Statement::Rollback => match self.state.take() {
                Some(st) => {
                    self.db.rollback_state(st);
                    Ok(Relation::count(0))
                }
                None => Err(Error::Invalid("ROLLBACK: no open transaction".into())),
            },
            _ => match &mut self.state {
                Some(st) => self.db.execute_in(&stmt, params, Some(sql), st),
                None => self.db.execute_statement(&stmt, params, Some(sql)),
            },
        }
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        if let Some(st) = self.state.take() {
            self.db.rollback_state(st);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_and_stamp_classification() {
        assert!(is_marker(marker(1)));
        assert!(is_marker(marker(0)));
        assert!(!is_marker(TS_INF));
        assert!(!is_marker(0));
        assert!(!is_marker(TS_LATEST));
    }

    #[test]
    fn visibility_predicate() {
        let snap = Snapshot { ts: 5, token: 3 };
        // Committed at/before the snapshot, live.
        assert!(snap.sees(5, TS_INF));
        assert!(snap.sees(0, TS_INF));
        // Committed after the snapshot.
        assert!(!snap.sees(6, TS_INF));
        // Own provisional insert; someone else's provisional insert.
        assert!(snap.sees(marker(3), TS_INF));
        assert!(!snap.sees(marker(4), TS_INF));
        // Deleted after the snapshot (still visible), at it (gone).
        assert!(snap.sees(1, 6));
        assert!(!snap.sees(1, 5));
        // Own provisional delete hides the row; a foreign one does not.
        assert!(!snap.sees(1, marker(3)));
        assert!(snap.sees(1, marker(4)));
        // The all-committed view ignores provisional writes entirely.
        let latest = Snapshot::latest();
        assert!(latest.sees(12345, TS_INF));
        assert!(!latest.sees(marker(1), TS_INF));
        assert!(latest.sees(1, marker(7)));
    }

    #[test]
    fn watermark_tracks_oldest_active() {
        let mgr = TxnManager::new();
        assert_eq!(mgr.watermark(), 0);
        let a = mgr.begin();
        mgr.advance_clock(10);
        let b = mgr.read_snapshot();
        assert_eq!(a.ts, 0);
        assert_eq!(b.ts, 10);
        assert_eq!(mgr.watermark(), 0, "oldest active snapshot pins it");
        mgr.release(a);
        assert_eq!(mgr.watermark(), 10);
        mgr.release(b);
        assert_eq!(mgr.watermark(), 10, "idle watermark = clock");
        assert_eq!(mgr.active_snapshots(), 0);
    }

    #[test]
    fn tokens_are_unique_and_nonzero() {
        let mgr = TxnManager::new();
        let a = mgr.begin();
        let b = mgr.begin();
        assert_ne!(a.token, 0);
        assert_ne!(a.token, b.token);
    }
}
