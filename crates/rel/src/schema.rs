//! Table schemas and column metadata.

use crate::error::{Error, Result};
use crate::value::Value;

/// Declared column type. The engine is dynamically typed at runtime (any
/// `Value` can be stored), but declared types drive `INSERT` coercions and
/// catalog introspection, mirroring how the paper's schema declares
/// `INTEGER` id columns next to `JSON` attribute columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Integer,
    /// 64-bit float.
    Double,
    /// UTF-8 text.
    Text,
    /// JSON document.
    Json,
    /// Boolean.
    Boolean,
    /// Any value (used by temporary/CTE tables).
    Any,
}

impl ColumnType {
    /// Parse a type name from SQL DDL.
    pub fn parse(name: &str) -> Result<ColumnType> {
        match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" | "BIGINT" => Ok(ColumnType::Integer),
            "DOUBLE" | "FLOAT" | "REAL" => Ok(ColumnType::Double),
            "TEXT" | "VARCHAR" | "STRING" | "CLOB" => Ok(ColumnType::Text),
            "JSON" => Ok(ColumnType::Json),
            "BOOLEAN" | "BOOL" => Ok(ColumnType::Boolean),
            "ANY" => Ok(ColumnType::Any),
            other => Err(Error::Schema(format!("unknown column type '{other}'"))),
        }
    }

    /// True if `value` may be stored in a column of this type. NULL is
    /// always accepted (no NOT NULL constraints in this engine).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Any, _)
                | (ColumnType::Integer, Value::Int(_))
                | (ColumnType::Double, Value::Double(_))
                | (ColumnType::Double, Value::Int(_))
                | (ColumnType::Text, Value::Str(_))
                | (ColumnType::Json, Value::Json(_))
                | (ColumnType::Boolean, Value::Bool(_))
        )
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Lower-cased column name (the engine is case-insensitive).
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

/// A table definition: name plus ordered columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Lower-cased table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl TableSchema {
    /// Create a schema, validating that column names are unique.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Result<TableSchema> {
        let name = name.into().to_ascii_lowercase();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(Error::Schema(format!(
                    "duplicate column '{}' in table '{name}'",
                    c.name
                )));
            }
        }
        Ok(TableSchema { name, columns })
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Validate and lightly coerce a row before insert: arity must match;
    /// `Int` widens to `Double` in double columns; anything else that the
    /// declared type does not admit is an error.
    pub fn check_row(&self, row: &mut [Value]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(Error::Schema(format!(
                "table '{}' expects {} values, got {}",
                self.name,
                self.arity(),
                row.len()
            )));
        }
        for (value, col) in row.iter_mut().zip(&self.columns) {
            if col.ty == ColumnType::Double {
                if let Value::Int(v) = value {
                    *value = Value::Double(*v as f64);
                }
            }
            if !col.ty.admits(value) {
                return Err(Error::Type(format!(
                    "column '{}.{}' ({ty:?}) cannot store a {}",
                    self.name,
                    col.name,
                    value.type_name(),
                    ty = col.ty,
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(
            "T",
            vec![
                Column {
                    name: "id".into(),
                    ty: ColumnType::Integer,
                },
                Column {
                    name: "w".into(),
                    ty: ColumnType::Double,
                },
                Column {
                    name: "name".into(),
                    ty: ColumnType::Text,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn names_are_case_insensitive() {
        let s = schema();
        assert_eq!(s.name, "t");
        assert_eq!(s.column_index("ID"), Some(0));
        assert_eq!(s.column_index("Name"), Some(2));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = TableSchema::new(
            "t",
            vec![
                Column {
                    name: "a".into(),
                    ty: ColumnType::Any,
                },
                Column {
                    name: "a".into(),
                    ty: ColumnType::Any,
                },
            ],
        );
        assert!(r.is_err());
    }

    #[test]
    fn check_row_coerces_and_rejects() {
        let s = schema();
        let mut ok = vec![Value::Int(1), Value::Int(2), Value::str("x")];
        s.check_row(&mut ok).unwrap();
        assert_eq!(ok[1], Value::Double(2.0));

        let mut bad_arity = vec![Value::Int(1)];
        assert!(s.check_row(&mut bad_arity).is_err());

        let mut bad_type = vec![Value::str("no"), Value::Null, Value::Null];
        assert!(s.check_row(&mut bad_type).is_err());

        let mut nulls = vec![Value::Null, Value::Null, Value::Null];
        s.check_row(&mut nulls).unwrap();
    }

    #[test]
    fn type_parse() {
        assert_eq!(ColumnType::parse("int").unwrap(), ColumnType::Integer);
        assert_eq!(ColumnType::parse("VARCHAR").unwrap(), ColumnType::Text);
        assert!(ColumnType::parse("blob").is_err());
    }
}
