//! Compressed sparse row (CSR) adjacency entries.
//!
//! A [`CsrEntry`] is a columnar, offset-delimited materialization of one
//! index's postings: for every distinct (non-NULL, single-part) key the
//! entry stores the *visible* matching rows' kept columns contiguously, so
//! an index-nested-loop probe becomes an O(1) group lookup plus a dense
//! range copy — no per-probe hashing over postings, no visibility re-checks,
//! no `key_of` re-validation. Integer columns (the common case: neighbor
//! vertex ids in the OPA/IPA adjacency tables) are stored delta-encoded and
//! null-suppressed ([`crate::batch::PackedIntVec`]) with per-group restarts.
//!
//! **Byte identity.** The builder filters postings exactly the way
//! `Access::Probe` execution does — `get_visible(rid, snap)` then an
//! `Index::key_of` re-check — and keeps the postings' order, so expanding a
//! probe key through a CSR entry yields the same rows in the same order the
//! row engine's index nested-loop join would produce.
//!
//! **MVCC validity.** An entry records the table's content version at build
//! time. The cache in [`crate::db::Database`] serves an entry only to
//! read-only snapshots (`token == 0`) taken at or past the table's newest
//! commit, and only while the content version is unchanged; in-transaction
//! readers build private entries against their own snapshot instead (see
//! `Database::csr_for`).

use crate::batch::{PackedIntVec, PackedIntWriter};
use crate::error::{Error, Result};
use crate::hasher::FxHashMap;
use crate::storage::Table;
use crate::txn::Snapshot;
use crate::value::Value;

/// Cache key: one entry per (table, index, kept-column set).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CsrKey {
    /// Table name (lowercase, as registered in the catalog).
    pub table: String,
    /// Index the adjacency is grouped by.
    pub index: String,
    /// Kept column positions, in output order.
    pub keep: Vec<usize>,
}

/// One kept column of a CSR entry.
#[derive(Debug)]
pub enum CsrCol {
    /// All-integer (or NULL) column: delta-encoded, null-suppressed.
    Packed(PackedIntVec),
    /// Anything else, stored as materialized values.
    Plain(Vec<Value>),
}

/// A built CSR adjacency entry (see module docs).
#[derive(Debug)]
pub struct CsrEntry {
    /// Probe key value → group ordinal.
    groups: FxHashMap<Value, u32>,
    /// Element range of group `g` is `offsets[g]..offsets[g+1]`.
    offsets: Vec<u32>,
    /// Kept columns, parallel to `CsrKey::keep`.
    cols: Vec<CsrCol>,
    /// Total element count.
    elems: usize,
    /// `Table::content_version` at build time.
    pub built_version: u64,
    /// Snapshot timestamp the entry was built under.
    pub built_ts: u64,
}

impl CsrEntry {
    /// Build an entry from `index_name`'s postings as seen by `snap`.
    /// The index must have a single key part.
    pub fn build(t: &Table, index_name: &str, keep: &[usize], snap: Snapshot) -> Result<CsrEntry> {
        let idx = t
            .indexes()
            .iter()
            .find(|i| i.name == index_name)
            .ok_or_else(|| Error::NotFound(format!("index '{index_name}'")))?;
        if idx.parts.len() != 1 {
            return Err(Error::Invalid(format!(
                "csr requires a single-part index; '{index_name}' has {} parts",
                idx.parts.len()
            )));
        }
        let mut groups = FxHashMap::default();
        let mut offsets: Vec<u32> = vec![0];
        let mut raw: Vec<Vec<Value>> = keep.iter().map(|_| Vec::new()).collect();
        let mut elems: u32 = 0;
        for (key, rids) in idx.entries() {
            let kv = &key.0[0];
            if kv.is_null() {
                // Probes skip NULL keys, so NULL groups can never be read.
                continue;
            }
            let before = elems;
            for &rid in rids {
                let Some(row) = t.get_visible(rid, snap) else {
                    continue;
                };
                // Postings may cover non-current versions of a chain whose
                // visible version carries a different key; re-check like the
                // probe path does.
                if idx.key_of(row) != *key {
                    continue;
                }
                for (ci, &col) in keep.iter().enumerate() {
                    raw[ci].push(row[col].clone());
                }
                elems += 1;
            }
            if elems == before {
                // Nothing visible under this key: same outcome as an absent
                // group, so don't store it.
                continue;
            }
            groups.insert(kv.clone(), offsets.len() as u32 - 1);
            offsets.push(elems);
        }
        let group_count = offsets.len() - 1;
        let cols = raw
            .into_iter()
            .map(|vals| {
                if vals
                    .iter()
                    .all(|v| matches!(v, Value::Int(_) | Value::Null))
                {
                    let mut w = PackedIntWriter::new();
                    for g in 0..group_count {
                        w.begin_group();
                        for v in &vals[offsets[g] as usize..offsets[g + 1] as usize] {
                            w.push(match v {
                                Value::Int(x) => Some(*x),
                                _ => None,
                            });
                        }
                    }
                    CsrCol::Packed(w.finish())
                } else {
                    CsrCol::Plain(vals)
                }
            })
            .collect();
        Ok(CsrEntry {
            groups,
            offsets,
            cols,
            elems: elems as usize,
            built_version: t.content_version(),
            built_ts: snap.ts,
        })
    }

    /// Number of distinct probe keys with at least one visible row.
    pub fn group_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total stored elements across all groups.
    pub fn elem_count(&self) -> usize {
        self.elems
    }

    /// Number of elements under `key` (0 when absent).
    pub fn fanout(&self, key: &Value) -> usize {
        match self.groups.get(key) {
            Some(&g) => (self.offsets[g as usize + 1] - self.offsets[g as usize]) as usize,
            None => 0,
        }
    }

    /// Append the elements under `key` to `out` (one `Vec<Value>` per kept
    /// column, in `keep` order) and return how many were appended. The
    /// element order is the index's posting order — the order the row
    /// engine's probe would have produced.
    pub fn expand_into(&self, key: &Value, out: &mut [Vec<Value>]) -> usize {
        let Some(&g) = self.groups.get(key) else {
            return 0;
        };
        let g = g as usize;
        let (lo, hi) = (self.offsets[g] as usize, self.offsets[g + 1] as usize);
        for (col, dst) in self.cols.iter().zip(out.iter_mut()) {
            match col {
                CsrCol::Packed(p) => {
                    dst.reserve(hi - lo);
                    p.for_each_in_group(g, lo, hi, |v| {
                        dst.push(v.map(Value::Int).unwrap_or(Value::Null))
                    });
                }
                CsrCol::Plain(vals) => dst.extend_from_slice(&vals[lo..hi]),
            }
        }
        hi - lo
    }

    /// Approximate heap footprint of the entry in bytes (compression
    /// observability; coarse for `Plain` columns).
    pub fn approx_bytes(&self) -> usize {
        let cols: usize = self
            .cols
            .iter()
            .map(|c| match c {
                CsrCol::Packed(p) => p.encoded_bytes(),
                CsrCol::Plain(vals) => vals.len() * std::mem::size_of::<Value>(),
            })
            .sum();
        cols + self.offsets.len() * 4 + self.groups.len() * std::mem::size_of::<(Value, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::schema::{Column, ColumnType, TableSchema};

    fn adjacency_table() -> Table {
        let col = |name: &str, ty: ColumnType| Column {
            name: name.into(),
            ty,
        };
        let schema = TableSchema::new(
            "adj",
            vec![
                col("id", ColumnType::Integer),
                col("src", ColumnType::Integer),
                col("dst", ColumnType::Integer),
                col("lbl", ColumnType::Text),
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index("adj_src", vec![1], false, IndexKind::Hash)
            .unwrap();
        for i in 0..60i64 {
            t.insert(vec![
                Value::Int(i),
                Value::Int(i % 7),
                Value::Int(1000 + i),
                Value::str(if i % 2 == 0 { "knows" } else { "likes" }),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn csr_matches_probe_order_and_visibility() {
        let t = adjacency_table();
        let snap = Snapshot::latest();
        let entry = CsrEntry::build(&t, "adj_src", &[2, 3], snap).unwrap();
        assert_eq!(entry.group_count(), 7);
        assert_eq!(entry.elem_count(), 60);
        for src in 0..7i64 {
            let key = Value::Int(src);
            // Reference: the probe path over postings.
            let idx = t.indexes().iter().find(|i| i.name == "adj_src").unwrap();
            let probe = crate::index::IndexKey(vec![key.clone()]);
            let mut want_dst = Vec::new();
            let mut want_lbl = Vec::new();
            for &rid in idx.lookup(&probe) {
                let Some(row) = t.get_visible(rid, snap) else {
                    continue;
                };
                if idx.key_of(row) != probe {
                    continue;
                }
                want_dst.push(row[2].clone());
                want_lbl.push(row[3].clone());
            }
            let mut out = vec![Vec::new(), Vec::new()];
            let n = entry.expand_into(&key, &mut out);
            assert_eq!(n, want_dst.len());
            assert_eq!(out[0], want_dst);
            assert_eq!(out[1], want_lbl);
        }
        // Absent and NULL keys expand to nothing.
        let mut out = vec![Vec::new(), Vec::new()];
        assert_eq!(entry.expand_into(&Value::Int(99), &mut out), 0);
        assert_eq!(entry.expand_into(&Value::Null, &mut out), 0);
    }

    #[test]
    fn csr_packs_integer_columns() {
        let t = adjacency_table();
        let entry = CsrEntry::build(&t, "adj_src", &[2], Snapshot::latest()).unwrap();
        // 60 sorted-ish neighbor ids should encode far below the 24 bytes a
        // Value each would take.
        assert!(entry.approx_bytes() < 60 * 8);
        let deleted_version = entry.built_version;
        assert!(deleted_version > 0, "inserts bump the content version");
    }

    #[test]
    fn csr_skips_rows_invisible_to_snapshot() {
        let mut t = adjacency_table();
        let snap = Snapshot::latest();
        // Delete every 'likes' edge; a fresh build must not see them.
        let doomed: Vec<usize> = t
            .iter()
            .filter(|(_, row)| row[3] == Value::str("likes"))
            .map(|(id, _)| id)
            .collect();
        for id in doomed {
            t.delete(id).unwrap();
        }
        let entry = CsrEntry::build(&t, "adj_src", &[2, 3], snap).unwrap();
        assert_eq!(entry.elem_count(), 30);
        let mut out = vec![Vec::new(), Vec::new()];
        entry.expand_into(&Value::Int(0), &mut out);
        assert!(out[1].iter().all(|v| *v == Value::str("knows")));
    }
}
