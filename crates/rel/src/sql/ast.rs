//! Parsed (name-based) SQL abstract syntax.

use crate::expr::{BinaryOp, UnaryOp};
use crate::index::IndexKind;
use crate::schema::ColumnType;
use crate::value::{CastType, Value};

/// A complete SQL statement.
#[derive(Debug, Clone)]
pub enum Statement {
    /// `SELECT ...` (possibly with a `WITH` prologue).
    Select(SelectStmt),
    /// `INSERT INTO t [(cols)] VALUES ... | SELECT ...`
    Insert {
        /// Target table name.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row source.
        source: InsertSource,
    },
    /// `UPDATE t SET c = e, ... [WHERE p]`
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional predicate.
        filter: Option<Expr>,
    },
    /// `DELETE FROM t [WHERE p]`
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        filter: Option<Expr>,
    },
    /// `CREATE TABLE [IF NOT EXISTS] t (col TYPE [PRIMARY KEY], ...)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions; the bool marks PRIMARY KEY.
        columns: Vec<(String, ColumnType, bool)>,
        /// Suppress the duplicate-table error.
        if_not_exists: bool,
    },
    /// `CREATE [UNIQUE] INDEX [IF NOT EXISTS] i ON t (key, ...) [USING
    /// HASH|BTREE]` — each key is a column or `JSON_VAL(col, 'member')`
    /// (functional index).
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name.
        table: String,
        /// Key definitions in order.
        columns: Vec<IndexColumn>,
        /// Unique constraint.
        unique: bool,
        /// Physical kind (default hash).
        kind: IndexKind,
        /// Suppress the duplicate-index error.
        if_not_exists: bool,
    },
    /// `DROP TABLE [IF EXISTS] t`
    DropTable {
        /// Table name.
        name: String,
        /// Suppress the missing-table error.
        if_exists: bool,
    },
    /// `CALL proc(args)` — invoke a registered stored procedure.
    Call {
        /// Procedure name.
        name: String,
        /// Argument expressions (evaluated against an empty row).
        args: Vec<Expr>,
    },
    /// `EXPLAIN SELECT ...` — run the query, returning the executor's
    /// access-path decisions instead of the rows.
    Explain(SelectStmt),
    /// `ANALYZE [t]` — collect exact per-column distinct-value statistics
    /// for one table (or every table) to feed the cost-based planner.
    Analyze {
        /// Target table; `None` analyzes every table.
        table: Option<String>,
    },
    /// `BEGIN [TRANSACTION]` — open a session transaction (see
    /// [`crate::txn::Session`]).
    Begin,
    /// `COMMIT` — commit the open session transaction.
    Commit,
    /// `ROLLBACK` — roll back the open session transaction.
    Rollback,
}

/// One index key definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexColumn {
    /// The column indexed.
    pub column: String,
    /// `Some(member)` for a `JSON_VAL(column, 'member')` functional key.
    pub json_key: Option<String>,
}

/// Row source for INSERT.
#[derive(Debug, Clone)]
pub enum InsertSource {
    /// Literal rows.
    Values(Vec<Vec<Expr>>),
    /// Rows produced by a query.
    Select(Box<SelectStmt>),
}

/// A query: optional CTEs, a set-expression body, and trailing clauses.
#[derive(Debug, Clone)]
pub struct SelectStmt {
    /// `WITH name AS (query), ...` — each CTE may reference earlier ones.
    pub ctes: Vec<(String, SelectStmt)>,
    /// The body.
    pub body: SetExpr,
    /// `ORDER BY expr [DESC], ...`
    pub order_by: Vec<(Expr, bool)>,
    /// `LIMIT n`
    pub limit: Option<Expr>,
    /// `OFFSET n`
    pub offset: Option<Expr>,
}

/// Body of a query: a single SELECT core or a set operation tree.
#[derive(Debug, Clone)]
pub enum SetExpr {
    /// A plain `SELECT`.
    Select(Box<SelectCore>),
    /// `left UNION [ALL] right`, etc. Set ops without ALL deduplicate.
    Op {
        /// Which set operation.
        op: SetOp,
        /// Keep duplicates (only meaningful for UNION).
        all: bool,
        /// Left input.
        left: Box<SetExpr>,
        /// Right input.
        right: Box<SetExpr>,
    },
}

/// Set operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// UNION.
    Union,
    /// INTERSECT.
    Intersect,
    /// EXCEPT.
    Except,
}

/// One `SELECT ... FROM ... WHERE ... GROUP BY ...` block.
#[derive(Debug, Clone)]
pub struct SelectCore {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<Projection>,
    /// Comma-separated FROM items (each possibly a JOIN tree). Empty for
    /// table-less selects (`SELECT 1`).
    pub from: Vec<FromItem>,
    /// WHERE predicate.
    pub filter: Option<Expr>,
    /// GROUP BY keys (empty + aggregates in projection = scalar aggregate).
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
}

/// One element of the projection list.
#[derive(Debug, Clone)]
pub enum Projection {
    /// `*`
    Wildcard,
    /// `t.*`
    TableWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// A FROM-clause item.
#[derive(Debug, Clone)]
pub enum FromItem {
    /// A named table (base table or CTE) with optional alias.
    Table {
        /// Table or CTE name.
        name: String,
        /// Alias (defaults to the name).
        alias: Option<String>,
    },
    /// A parenthesized subquery with mandatory alias.
    Subquery {
        /// The subquery.
        query: Box<SelectStmt>,
        /// Alias for the derived table.
        alias: String,
    },
    /// `TABLE (VALUES (e), (e), ...) AS t(c)` — a *lateral* row constructor:
    /// the expressions may reference columns of FROM items to the left.
    /// This is the unnest device the paper's adjacency templates use to turn
    /// the `VAL0..VALn` column triads back into rows.
    LateralValues {
        /// One row per parenthesized group; all rows must have equal arity.
        rows: Vec<Vec<Expr>>,
        /// Alias.
        alias: String,
        /// Output column names.
        columns: Vec<String>,
    },
    /// `TABLE (FUNC(args...)) AS t(c, ...)` — a lateral table function.
    /// Arguments may reference columns of FROM items to the left; the
    /// function emits zero or more rows per input row. The built-in
    /// `JSON_EDGES(doc [, label])` unnests a JSON adjacency document of the
    /// form `{"label": [{"eid": e, "val": v}, ...]}` into `(lbl, eid, val)`
    /// rows — the query device for the paper's JSON-adjacency comparison.
    LateralFunc {
        /// Function name.
        func: String,
        /// Argument expressions (lateral: may reference earlier FROM items).
        args: Vec<Expr>,
        /// Alias.
        alias: String,
        /// Output column names.
        columns: Vec<String>,
    },
    /// An explicit JOIN tree.
    Join {
        /// Left input.
        left: Box<FromItem>,
        /// Right input.
        right: Box<FromItem>,
        /// Join kind.
        kind: JoinKind,
        /// ON predicate.
        on: Expr,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT [OUTER] JOIN.
    LeftOuter,
}

/// A name-based expression (pre-resolution).
#[derive(Debug, Clone)]
pub enum Expr {
    /// Literal.
    Literal(Value),
    /// `?` positional parameter (0-based index).
    Param(usize),
    /// Column reference, optionally qualified.
    Column {
        /// Qualifier (table alias).
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary op.
    Unary(UnaryOp, Box<Expr>),
    /// Binary op.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `IS [NOT] NULL`.
    IsNull(Box<Expr>, bool),
    /// `[NOT] LIKE`.
    Like {
        /// Scrutinee.
        expr: Box<Expr>,
        /// Pattern.
        pattern: Box<Expr>,
        /// NOT LIKE.
        negated: bool,
    },
    /// `[NOT] IN (e, e, ...)`.
    InList {
        /// Scrutinee.
        expr: Box<Expr>,
        /// Candidate expressions.
        list: Vec<Expr>,
        /// NOT IN.
        negated: bool,
    },
    /// `[NOT] IN (SELECT ...)`.
    InSubquery {
        /// Scrutinee.
        expr: Box<Expr>,
        /// Single-column subquery.
        query: Box<SelectStmt>,
        /// NOT IN.
        negated: bool,
    },
    /// `[NOT] BETWEEN lo AND hi`.
    Between {
        /// Scrutinee.
        expr: Box<Expr>,
        /// Low bound (inclusive).
        lo: Box<Expr>,
        /// High bound (inclusive).
        hi: Box<Expr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// Function call — scalar or aggregate, disambiguated by the planner.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// `COUNT(DISTINCT e)` flag.
        distinct: bool,
    },
    /// `COUNT(*)`.
    CountStar,
    /// `CAST(e AS T)`.
    Cast(Box<Expr>, CastType),
    /// Array subscript `e[i]`.
    Subscript(Box<Expr>, Box<Expr>),
}
