//! SQL lexer.

use crate::error::{Error, Result};
use crate::value::Value;

/// A token with its byte offset (for error reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset in the source.
    pub offset: usize,
    /// Token kind/payload.
    pub kind: TokenKind,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (kept verbatim; parser matches case-insensitively).
    Ident(String),
    /// Numeric literal, already converted.
    Number(Value),
    /// String literal (single quotes, `''` escape).
    Str(String),
    /// `?` positional parameter.
    Param,
    /// Punctuation / operators.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `||`
    Concat,
}

/// Tokenize the whole input. Comments (`-- ...` to end of line) are skipped.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Consume a full UTF-8 character.
                            let rest = &sql[i..];
                            let c = rest.chars().next().expect("non-empty");
                            s.push(c);
                            i += c.len_utf8();
                        }
                        None => {
                            return Err(Error::Parse {
                                offset: start,
                                message: "unterminated string literal".into(),
                            })
                        }
                    }
                }
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Str(s),
                });
            }
            b'"' => {
                // Quoted identifier.
                i += 1;
                let id_start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(Error::Parse {
                        offset: start,
                        message: "unterminated quoted identifier".into(),
                    });
                }
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Ident(sql[id_start..i].to_string()),
                });
                i += 1;
            }
            b'0'..=b'9' => {
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && matches!(bytes[i], b'e' | b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && matches!(bytes[j], b'+' | b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &sql[start..i];
                let value = if is_float {
                    Value::Double(text.parse().map_err(|_| Error::Parse {
                        offset: start,
                        message: format!("bad float literal '{text}'"),
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => Value::Int(v),
                        Err(_) => Value::Double(text.parse().map_err(|_| Error::Parse {
                            offset: start,
                            message: format!("bad number literal '{text}'"),
                        })?),
                    }
                };
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Number(value),
                });
            }
            b'?' => {
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Param,
                });
                i += 1;
            }
            _ if b == b'_' || b.is_ascii_alphabetic() => {
                while i < bytes.len()
                    && (bytes[i] == b'_' || bytes[i] == b'$' || bytes[i].is_ascii_alphanumeric())
                {
                    i += 1;
                }
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Ident(sql[start..i].to_string()),
                });
            }
            _ => {
                let two = bytes.get(i + 1).copied();
                let (sym, len) = match (b, two) {
                    (b'<', Some(b'>')) => (Symbol::Ne, 2),
                    (b'!', Some(b'=')) => (Symbol::Ne, 2),
                    (b'<', Some(b'=')) => (Symbol::Le, 2),
                    (b'>', Some(b'=')) => (Symbol::Ge, 2),
                    (b'|', Some(b'|')) => (Symbol::Concat, 2),
                    (b'(', _) => (Symbol::LParen, 1),
                    (b')', _) => (Symbol::RParen, 1),
                    (b'[', _) => (Symbol::LBracket, 1),
                    (b']', _) => (Symbol::RBracket, 1),
                    (b',', _) => (Symbol::Comma, 1),
                    (b'.', _) => (Symbol::Dot, 1),
                    (b'*', _) => (Symbol::Star, 1),
                    (b';', _) => (Symbol::Semicolon, 1),
                    (b'=', _) => (Symbol::Eq, 1),
                    (b'<', _) => (Symbol::Lt, 1),
                    (b'>', _) => (Symbol::Gt, 1),
                    (b'+', _) => (Symbol::Plus, 1),
                    (b'-', _) => (Symbol::Minus, 1),
                    (b'/', _) => (Symbol::Slash, 1),
                    (b'%', _) => (Symbol::Percent, 1),
                    _ => {
                        return Err(Error::Parse {
                            offset: i,
                            message: format!("unexpected character '{}'", b as char),
                        })
                    }
                };
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Symbol(sym),
                });
                i += len;
            }
        }
    }
    tokens.push(Token {
        offset: sql.len(),
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("SELECT a.b, 'it''s' FROM t WHERE x >= 1.5 -- comment\n AND y <> ?");
        assert!(ks.contains(&TokenKind::Ident("SELECT".into())));
        assert!(ks.contains(&TokenKind::Str("it's".into())));
        assert!(ks.contains(&TokenKind::Number(Value::Double(1.5))));
        assert!(ks.contains(&TokenKind::Symbol(Symbol::Ge)));
        assert!(ks.contains(&TokenKind::Symbol(Symbol::Ne)));
        assert!(ks.contains(&TokenKind::Param));
        assert!(!ks
            .iter()
            .any(|k| matches!(k, TokenKind::Ident(s) if s == "comment")));
    }

    #[test]
    fn concat_and_brackets() {
        let ks = kinds("a || b [0]");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Symbol(Symbol::Concat),
                TokenKind::Ident("b".into()),
                TokenKind::Symbol(Symbol::LBracket),
                TokenKind::Number(Value::Int(0)),
                TokenKind::Symbol(Symbol::RBracket),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unicode_strings() {
        let ks = kinds("'héllo 😀'");
        assert_eq!(ks[0], TokenKind::Str("héllo 😀".into()));
    }

    #[test]
    fn quoted_identifiers() {
        let ks = kinds("\"Weird Name\"");
        assert_eq!(ks[0], TokenKind::Ident("Weird Name".into()));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn big_int_literal_falls_to_double() {
        let ks = kinds("99999999999999999999");
        assert!(matches!(ks[0], TokenKind::Number(Value::Double(_))));
    }
}
