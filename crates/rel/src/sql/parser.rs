//! Recursive-descent SQL parser for the engine's dialect.
//!
//! Grammar (informal):
//!
//! ```text
//! statement   := select | insert | update | delete | create | drop | call
//! select      := [WITH cte ("," cte)*] set_expr
//!                [ORDER BY expr [DESC] ("," ...)*] [LIMIT e] [OFFSET e]
//! set_expr    := core ((UNION [ALL] | INTERSECT | EXCEPT) core)*
//! core        := SELECT [DISTINCT] proj ("," proj)*
//!                [FROM from ("," from)*] [WHERE e]
//!                [GROUP BY e ("," e)*] [HAVING e]
//!              | "(" select ")"
//! from        := unit (join)*
//! unit        := name [AS? alias]
//!              | "(" select ")" AS? alias
//!              | TABLE "(" VALUES row ("," row)* ")" AS? alias "(" cols ")"
//! join        := [LEFT [OUTER] | INNER] JOIN unit ON e
//! ```
//!
//! Expression precedence (loosest first): `OR`, `AND`, `NOT`, comparison
//! (`= <> < <= > >= LIKE IN BETWEEN IS`), additive (`+ - ||`),
//! multiplicative (`* / %`), unary, postfix subscript, primary.

use crate::error::{Error, Result};
use crate::expr::{BinaryOp, UnaryOp};
use crate::index::IndexKind;
use crate::schema::ColumnType;
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Symbol, Token, TokenKind};
use crate::value::{CastType, Value};

/// Parse one SQL statement (an optional trailing `;` is accepted).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_symbol(Symbol::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a statement and report how many `?` parameters it uses.
pub fn parse_statement_with_params(sql: &str) -> Result<(Statement, usize)> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_symbol(Symbol::Semicolon);
    p.expect_eof()?;
    Ok((stmt, p.params))
}

const RESERVED: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "LIMIT",
    "OFFSET",
    "UNION",
    "INTERSECT",
    "EXCEPT",
    "ALL",
    "DISTINCT",
    "AS",
    "ON",
    "JOIN",
    "LEFT",
    "INNER",
    "OUTER",
    "AND",
    "OR",
    "NOT",
    "NULL",
    "TRUE",
    "FALSE",
    "IN",
    "IS",
    "LIKE",
    "BETWEEN",
    "CAST",
    "VALUES",
    "TABLE",
    "WITH",
    "INSERT",
    "INTO",
    "UPDATE",
    "SET",
    "DELETE",
    "CREATE",
    "UNIQUE",
    "INDEX",
    "USING",
    "DROP",
    "IF",
    "EXISTS",
    "CALL",
    "PRIMARY",
    "KEY",
    "WHEN",
    "CASE",
];

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    /// True if the current token is the keyword `kw` (case-insensitive).
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn at_symbol(&self, s: Symbol) -> bool {
        matches!(self.peek(), TokenKind::Symbol(sym) if *sym == s)
    }

    fn eat_symbol(&mut self, s: Symbol) -> bool {
        if self.at_symbol(s) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Symbol) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err("unexpected trailing tokens"))
        }
    }

    /// Expect any identifier (reserved words allowed when quoted).
    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            TokenKind::Ident(_) => match self.advance() {
                TokenKind::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            _ => Err(self.err("expected identifier")),
        }
    }

    /// An identifier usable as an alias: rejects reserved words so clause
    /// keywords terminate FROM lists.
    fn alias_ident(&mut self) -> Option<String> {
        if let TokenKind::Ident(s) = self.peek() {
            if !RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                let s = s.clone();
                self.advance();
                return Some(s);
            }
        }
        None
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Statement> {
        if self.at_keyword("SELECT") || self.at_keyword("WITH") || self.at_symbol(Symbol::LParen) {
            return Ok(Statement::Select(self.select_stmt()?));
        }
        if self.eat_keyword("INSERT") {
            return self.insert_stmt();
        }
        if self.eat_keyword("UPDATE") {
            return self.update_stmt();
        }
        if self.eat_keyword("DELETE") {
            return self.delete_stmt();
        }
        if self.eat_keyword("CREATE") {
            return self.create_stmt();
        }
        if self.eat_keyword("DROP") {
            return self.drop_stmt();
        }
        if self.eat_keyword("CALL") {
            return self.call_stmt();
        }
        if self.eat_keyword("EXPLAIN") {
            return Ok(Statement::Explain(self.select_stmt()?));
        }
        if self.eat_keyword("ANALYZE") {
            let table = if matches!(self.peek(), TokenKind::Ident(_)) {
                Some(self.ident()?)
            } else {
                None
            };
            return Ok(Statement::Analyze { table });
        }
        if self.eat_keyword("BEGIN") {
            let _ = self.eat_keyword("TRANSACTION") || self.eat_keyword("WORK");
            return Ok(Statement::Begin);
        }
        if self.eat_keyword("COMMIT") {
            let _ = self.eat_keyword("TRANSACTION") || self.eat_keyword("WORK");
            return Ok(Statement::Commit);
        }
        if self.eat_keyword("ROLLBACK") {
            let _ = self.eat_keyword("TRANSACTION") || self.eat_keyword("WORK");
            return Ok(Statement::Rollback);
        }
        Err(self.err("expected a statement"))
    }

    fn insert_stmt(&mut self) -> Result<Statement> {
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        let mut columns = None;
        if self.at_symbol(Symbol::LParen) {
            // Lookahead: `(` may start a column list or a parenthesized SELECT.
            let save = self.pos;
            self.advance();
            if matches!(self.peek(), TokenKind::Ident(s) if !s.eq_ignore_ascii_case("SELECT")) {
                let mut cols = vec![self.ident()?];
                while self.eat_symbol(Symbol::Comma) {
                    cols.push(self.ident()?);
                }
                self.expect_symbol(Symbol::RParen)?;
                columns = Some(cols);
            } else {
                self.pos = save;
            }
        }
        let source = if self.eat_keyword("VALUES") {
            let mut rows = vec![self.paren_expr_list()?];
            while self.eat_symbol(Symbol::Comma) {
                rows.push(self.paren_expr_list()?);
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Select(Box::new(self.select_stmt()?))
        };
        Ok(Statement::Insert {
            table,
            columns,
            source,
        })
    }

    fn update_stmt(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Symbol::Eq)?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_symbol(Symbol::Comma) {
                break;
            }
        }
        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            assignments,
            filter,
        })
    }

    fn delete_stmt(&mut self) -> Result<Statement> {
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn create_stmt(&mut self) -> Result<Statement> {
        let unique = self.eat_keyword("UNIQUE");
        if self.eat_keyword("TABLE") {
            if unique {
                return Err(self.err("UNIQUE applies to indexes, not tables"));
            }
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = ColumnType::parse(&self.ident()?)?;
                let mut pk = false;
                if self.eat_keyword("PRIMARY") {
                    self.expect_keyword("KEY")?;
                    pk = true;
                }
                columns.push((col, ty, pk));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            });
        }
        if self.eat_keyword("INDEX") {
            let if_not_exists = self.if_not_exists()?;
            let name = self.ident()?;
            self.expect_keyword("ON")?;
            let table = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = vec![self.index_key()?];
            while self.eat_symbol(Symbol::Comma) {
                columns.push(self.index_key()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            let kind = if self.eat_keyword("USING") {
                match self.ident()?.to_ascii_uppercase().as_str() {
                    "HASH" => IndexKind::Hash,
                    "BTREE" => IndexKind::BTree,
                    other => return Err(self.err(format!("unknown index kind '{other}'"))),
                }
            } else {
                IndexKind::Hash
            };
            return Ok(Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
                kind,
                if_not_exists,
            });
        }
        Err(self.err("expected TABLE or INDEX after CREATE"))
    }

    /// One index key: `col` or `JSON_VAL(col, 'member')`.
    fn index_key(&mut self) -> Result<IndexColumn> {
        let first = self.ident()?;
        if first.eq_ignore_ascii_case("JSON_VAL") && self.eat_symbol(Symbol::LParen) {
            let column = self.ident()?;
            self.expect_symbol(Symbol::Comma)?;
            let member = match self.peek() {
                TokenKind::Str(_) => match self.advance() {
                    TokenKind::Str(s) => s,
                    _ => unreachable!(),
                },
                _ => return Err(self.err("JSON_VAL index key needs a string member")),
            };
            self.expect_symbol(Symbol::RParen)?;
            return Ok(IndexColumn {
                column,
                json_key: Some(member),
            });
        }
        Ok(IndexColumn {
            column: first,
            json_key: None,
        })
    }

    fn if_not_exists(&mut self) -> Result<bool> {
        if self.eat_keyword("IF") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn drop_stmt(&mut self) -> Result<Statement> {
        self.expect_keyword("TABLE")?;
        let if_exists = if self.eat_keyword("IF") {
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn call_stmt(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_symbol(Symbol::LParen)?;
        let mut args = Vec::new();
        if !self.at_symbol(Symbol::RParen) {
            args.push(self.expr()?);
            while self.eat_symbol(Symbol::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(Statement::Call { name, args })
    }

    // ---- queries ----

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        let mut ctes = Vec::new();
        if self.eat_keyword("WITH") {
            loop {
                let name = self.ident()?;
                self.expect_keyword("AS")?;
                self.expect_symbol(Symbol::LParen)?;
                let query = self.select_stmt()?;
                self.expect_symbol(Symbol::RParen)?;
                ctes.push((name, query));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            Some(self.expr()?)
        } else {
            None
        };
        let offset = if self.eat_keyword("OFFSET") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SelectStmt {
            ctes,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.set_core()?;
        loop {
            let op = if self.eat_keyword("UNION") {
                SetOp::Union
            } else if self.eat_keyword("INTERSECT") {
                SetOp::Intersect
            } else if self.eat_keyword("EXCEPT") {
                SetOp::Except
            } else {
                break;
            };
            let all = self.eat_keyword("ALL");
            let right = self.set_core()?;
            left = SetExpr::Op {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn set_core(&mut self) -> Result<SetExpr> {
        if self.eat_symbol(Symbol::LParen) {
            // Parenthesized query used as a set operand: inline its body.
            // (ORDER BY/LIMIT inside set operands are not supported.)
            let inner = self.select_stmt()?;
            self.expect_symbol(Symbol::RParen)?;
            if !inner.ctes.is_empty() || !inner.order_by.is_empty() || inner.limit.is_some() {
                return Err(self.err(
                    "WITH/ORDER BY/LIMIT are not supported inside parenthesized set operands",
                ));
            }
            return Ok(inner.body);
        }
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut projections = vec![self.projection()?];
        while self.eat_symbol(Symbol::Comma) {
            projections.push(self.projection()?);
        }
        let mut from = Vec::new();
        if self.eat_keyword("FROM") {
            from.push(self.parse_from_item()?);
            while self.eat_symbol(Symbol::Comma) {
                from.push(self.parse_from_item()?);
            }
        }
        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(Symbol::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(SetExpr::Select(Box::new(SelectCore {
            distinct,
            projections,
            from,
            filter,
            group_by,
            having,
        })))
    }

    fn projection(&mut self) -> Result<Projection> {
        if self.eat_symbol(Symbol::Star) {
            return Ok(Projection::Wildcard);
        }
        // `t.*`
        if let TokenKind::Ident(name) = self.peek() {
            let name = name.clone();
            if matches!(
                self.tokens.get(self.pos + 1).map(|t| &t.kind),
                Some(TokenKind::Symbol(Symbol::Dot))
            ) && matches!(
                self.tokens.get(self.pos + 2).map(|t| &t.kind),
                Some(TokenKind::Symbol(Symbol::Star))
            ) {
                self.advance();
                self.advance();
                self.advance();
                return Ok(Projection::TableWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else {
            self.alias_ident()
        };
        Ok(Projection::Expr { expr, alias })
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let mut item = self.parse_from_unit()?;
        loop {
            let kind = if self.eat_keyword("LEFT") {
                self.eat_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::LeftOuter
            } else if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.eat_keyword("JOIN") {
                JoinKind::Inner
            } else {
                break;
            };
            let right = self.parse_from_unit()?;
            self.expect_keyword("ON")?;
            let on = self.expr()?;
            item = FromItem::Join {
                left: Box::new(item),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(item)
    }

    fn parse_from_unit(&mut self) -> Result<FromItem> {
        if self.eat_keyword("TABLE") {
            self.expect_symbol(Symbol::LParen)?;
            // `TABLE(FUNC(args...))` — lateral table function.
            if !self.at_keyword("VALUES") {
                let func = self.ident()?;
                self.expect_symbol(Symbol::LParen)?;
                let mut args = Vec::new();
                if !self.at_symbol(Symbol::RParen) {
                    args.push(self.expr()?);
                    while self.eat_symbol(Symbol::Comma) {
                        args.push(self.expr()?);
                    }
                }
                self.expect_symbol(Symbol::RParen)?;
                self.expect_symbol(Symbol::RParen)?;
                self.eat_keyword("AS");
                let alias = self.ident()?;
                self.expect_symbol(Symbol::LParen)?;
                let mut columns = vec![self.ident()?];
                while self.eat_symbol(Symbol::Comma) {
                    columns.push(self.ident()?);
                }
                self.expect_symbol(Symbol::RParen)?;
                return Ok(FromItem::LateralFunc {
                    func,
                    args,
                    alias,
                    columns,
                });
            }
            self.expect_keyword("VALUES")?;
            let mut rows = vec![self.paren_expr_list()?];
            while self.eat_symbol(Symbol::Comma) {
                rows.push(self.paren_expr_list()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            self.eat_keyword("AS");
            let alias = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = vec![self.ident()?];
            while self.eat_symbol(Symbol::Comma) {
                columns.push(self.ident()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            let arity = rows[0].len();
            if rows.iter().any(|r| r.len() != arity) || columns.len() != arity {
                return Err(self.err("TABLE(VALUES ...) rows and column list must agree in arity"));
            }
            return Ok(FromItem::LateralValues {
                rows,
                alias,
                columns,
            });
        }
        if self.eat_symbol(Symbol::LParen) {
            let query = self.select_stmt()?;
            self.expect_symbol(Symbol::RParen)?;
            self.eat_keyword("AS");
            let alias = self
                .alias_ident()
                .ok_or_else(|| self.err("derived table requires an alias"))?;
            return Ok(FromItem::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else {
            self.alias_ident()
        };
        Ok(FromItem::Table { name, alias })
    }

    fn paren_expr_list(&mut self) -> Result<Vec<Expr>> {
        self.expect_symbol(Symbol::LParen)?;
        let mut out = vec![self.expr()?];
        while self.eat_symbol(Symbol::Comma) {
            out.push(self.expr()?);
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(out)
    }

    // ---- expressions ----

    /// Entry point: lowest precedence (OR).
    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary(BinaryOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary(BinaryOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull(Box::new(left), negated));
        }
        // [NOT] LIKE / IN / BETWEEN
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_keyword("IN") {
            self.expect_symbol(Symbol::LParen)?;
            if self.at_keyword("SELECT") || self.at_keyword("WITH") {
                let query = self.select_stmt()?;
                self.expect_symbol(Symbol::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Symbol::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let lo = self.additive()?;
            self.expect_keyword("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                lo: Box::new(lo),
                hi: Box::new(hi),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected LIKE, IN, or BETWEEN after NOT"));
        }
        let op = if self.eat_symbol(Symbol::Eq) {
            BinaryOp::Eq
        } else if self.eat_symbol(Symbol::Ne) {
            BinaryOp::Ne
        } else if self.eat_symbol(Symbol::Le) {
            BinaryOp::Le
        } else if self.eat_symbol(Symbol::Lt) {
            BinaryOp::Lt
        } else if self.eat_symbol(Symbol::Ge) {
            BinaryOp::Ge
        } else if self.eat_symbol(Symbol::Gt) {
            BinaryOp::Gt
        } else {
            return Ok(left);
        };
        let right = self.additive()?;
        Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_symbol(Symbol::Plus) {
                BinaryOp::Add
            } else if self.eat_symbol(Symbol::Minus) {
                BinaryOp::Sub
            } else if self.eat_symbol(Symbol::Concat) {
                BinaryOp::Concat
            } else {
                break;
            };
            let right = self.multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = if self.eat_symbol(Symbol::Star) {
                BinaryOp::Mul
            } else if self.eat_symbol(Symbol::Slash) {
                BinaryOp::Div
            } else if self.eat_symbol(Symbol::Percent) {
                BinaryOp::Mod
            } else {
                break;
            };
            let right = self.unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol(Symbol::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        if self.eat_symbol(Symbol::Plus) {
            return self.unary();
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        while self.eat_symbol(Symbol::LBracket) {
            let idx = self.expr()?;
            self.expect_symbol(Symbol::RBracket)?;
            e = Expr::Subscript(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::Number(v) => {
                self.advance();
                Ok(Expr::Literal(v))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::str(s)))
            }
            TokenKind::Param => {
                self.advance();
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            TokenKind::Symbol(Symbol::LParen) => {
                self.advance();
                // Scalar subquery is not supported; parenthesized expression.
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    self.advance();
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if name.eq_ignore_ascii_case("CAST") {
                    self.advance();
                    self.expect_symbol(Symbol::LParen)?;
                    let e = self.expr()?;
                    self.expect_keyword("AS")?;
                    let ty_name = self.ident()?;
                    let ty = match ColumnType::parse(&ty_name)? {
                        ColumnType::Integer => CastType::Integer,
                        ColumnType::Double => CastType::Double,
                        ColumnType::Text => CastType::Text,
                        ColumnType::Boolean => CastType::Boolean,
                        other => return Err(self.err(format!("cannot CAST to {other:?}"))),
                    };
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::Cast(Box::new(e), ty));
                }
                if RESERVED.iter().any(|k| name.eq_ignore_ascii_case(k)) {
                    return Err(self.err(format!("unexpected keyword '{name}' in expression")));
                }
                self.advance();
                // Function call?
                if self.at_symbol(Symbol::LParen) {
                    self.advance();
                    // COUNT(*) special case.
                    if name.eq_ignore_ascii_case("COUNT") && self.eat_symbol(Symbol::Star) {
                        self.expect_symbol(Symbol::RParen)?;
                        return Ok(Expr::CountStar);
                    }
                    let distinct = self.eat_keyword("DISTINCT");
                    let mut args = Vec::new();
                    if !self.at_symbol(Symbol::RParen) {
                        args.push(self.expr()?);
                        while self.eat_symbol(Symbol::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::Call {
                        name,
                        args,
                        distinct,
                    });
                }
                // Qualified column `t.c`?
                if self.at_symbol(Symbol::Dot) {
                    self.advance();
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column { table: None, name })
            }
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b AS x FROM t WHERE a = 1");
        let SetExpr::Select(core) = &s.body else {
            panic!()
        };
        assert_eq!(core.projections.len(), 2);
        assert_eq!(core.from.len(), 1);
        assert!(core.filter.is_some());
    }

    #[test]
    fn with_ctes_and_set_ops() {
        let s = sel("WITH t1 AS (SELECT 1 AS v), t2 AS (SELECT 2 AS v) \
             SELECT v FROM t1 UNION ALL SELECT v FROM t2 ORDER BY v DESC LIMIT 5 OFFSET 1");
        assert_eq!(s.ctes.len(), 2);
        assert!(matches!(
            s.body,
            SetExpr::Op {
                op: SetOp::Union,
                all: true,
                ..
            }
        ));
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].1);
        assert!(s.limit.is_some() && s.offset.is_some());
    }

    #[test]
    fn joins() {
        let s = sel("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y JOIN c ON c.z = a.x");
        let SetExpr::Select(core) = &s.body else {
            panic!()
        };
        let FromItem::Join { kind, left, .. } = &core.from[0] else {
            panic!()
        };
        assert_eq!(*kind, JoinKind::Inner);
        let FromItem::Join { kind, .. } = left.as_ref() else {
            panic!()
        };
        assert_eq!(*kind, JoinKind::LeftOuter);
    }

    #[test]
    fn lateral_values() {
        let s = sel(
            "SELECT t.val FROM opa p, TABLE(VALUES(p.val0),(p.val1)) AS t(val) WHERE t.val IS NOT NULL",
        );
        let SetExpr::Select(core) = &s.body else {
            panic!()
        };
        assert_eq!(core.from.len(), 2);
        let FromItem::LateralValues { rows, columns, .. } = &core.from[1] else {
            panic!("expected lateral values")
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(columns, &["val"]);
    }

    #[test]
    fn expressions() {
        let s = sel(
            "SELECT CAST(x AS INTEGER), COUNT(*), COUNT(DISTINCT y), JSON_VAL(a, 'k'), \
             p.path[0], -x + 2 * 3, a || b FROM t \
             WHERE x LIKE '%en' AND y NOT IN (1, 2) AND z BETWEEN 1 AND 5 \
             AND w IS NOT NULL AND v IN (SELECT q FROM u) OR NOT flag",
        );
        let SetExpr::Select(core) = &s.body else {
            panic!()
        };
        assert_eq!(core.projections.len(), 7);
        assert!(core.filter.is_some());
    }

    #[test]
    fn ddl_and_dml() {
        assert!(matches!(
            parse_statement("CREATE TABLE t (id INTEGER PRIMARY KEY, attr JSON)").unwrap(),
            Statement::CreateTable { ref columns, .. } if columns.len() == 2 && columns[0].2
        ));
        assert!(matches!(
            parse_statement("CREATE UNIQUE INDEX i ON t (a, b) USING BTREE").unwrap(),
            Statement::CreateIndex { unique: true, kind: IndexKind::BTree, ref columns, .. }
                if columns.len() == 2
        ));
        assert!(matches!(
            parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap(),
            Statement::Insert { columns: Some(ref c), source: InsertSource::Values(ref v), .. }
                if c.len() == 2 && v.len() == 2
        ));
        assert!(matches!(
            parse_statement("INSERT INTO t SELECT * FROM u").unwrap(),
            Statement::Insert {
                source: InsertSource::Select(_),
                ..
            }
        ));
        assert!(matches!(
            parse_statement("UPDATE t SET a = a + 1 WHERE id = ?").unwrap(),
            Statement::Update { ref assignments, .. } if assignments.len() == 1
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE id < 0").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse_statement("CALL add_vertex(1, '{}')").unwrap(),
            Statement::Call { ref args, .. } if args.len() == 2
        ));
    }

    #[test]
    fn params_counted() {
        let (_, n) = parse_statement_with_params("SELECT * FROM t WHERE a = ? AND b = ?").unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn derived_table_requires_alias() {
        assert!(parse_statement("SELECT * FROM (SELECT 1 AS v)").is_err());
        assert!(parse_statement("SELECT * FROM (SELECT 1 AS v) d").is_ok());
    }

    #[test]
    fn keyword_does_not_become_alias() {
        let s = sel("SELECT a FROM t WHERE a = 1");
        let SetExpr::Select(core) = &s.body else {
            panic!()
        };
        let FromItem::Table { alias, .. } = &core.from[0] else {
            panic!()
        };
        assert!(alias.is_none());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELEC * FROM t",
            "SELECT * FROM t WHERE",
            "INSERT t VALUES (1)",
            "CREATE TABLE t",
        ] {
            assert!(parse_statement(bad).is_err(), "should reject {bad:?}");
        }
    }
}
