//! SQL front end: lexer, AST, and parser.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use parser::{parse_statement, parse_statement_with_params};
