//! A fast, non-cryptographic hasher for internal hash tables.
//!
//! SipHash (std's default) dominates profile time for the small integer keys
//! (vertex/edge IDs) that graph workloads hash billions of times. This is
//! the FxHash algorithm used by rustc: multiply-rotate mixing, ~1ns per
//! word. HashDoS is not a concern — keys are engine-generated IDs, not
//! attacker-controlled input.

use std::hash::{BuildHasherDefault, Hasher};

/// FxHash state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with FxHash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_eq!(hash_one("abc"), hash_one("abc"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_one(1u64), hash_one(2u64));
        assert_ne!(hash_one("a"), hash_one("b"));
        assert_ne!(hash_one([1u8, 0]), hash_one([1u8, 0, 0]));
    }

    #[test]
    fn map_works() {
        let mut m: FxHashMap<i64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(-5, "neg");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.get(&-5), Some(&"neg"));
        assert_eq!(m.get(&2), None);
    }
}
