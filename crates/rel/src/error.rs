//! Engine error type.

use std::fmt;

/// Every fallible engine operation returns `Result<T, Error>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// SQL text failed to lex or parse. Carries position and message.
    Parse { offset: usize, message: String },
    /// Query referenced an unknown table, column, index, or procedure.
    NotFound(String),
    /// Schema violation: duplicate table, duplicate key on a unique index,
    /// arity mismatch, duplicate column, etc.
    Schema(String),
    /// Type mismatch during expression evaluation or a failed cast.
    Type(String),
    /// A statement-level constraint failed (e.g. parameter index out of range).
    Invalid(String),
    /// Write-ahead log I/O or corruption.
    Wal(String),
    /// The transaction was rolled back by user code.
    RolledBack(String),
    /// Snapshot-isolation write-write conflict (first-updater-wins): the
    /// transaction raced a concurrent writer and should be retried.
    TxnConflict(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Schema(msg) => write!(f, "schema error: {msg}"),
            Error::Type(msg) => write!(f, "type error: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid request: {msg}"),
            Error::Wal(msg) => write!(f, "WAL error: {msg}"),
            Error::RolledBack(msg) => write!(f, "transaction rolled back: {msg}"),
            Error::TxnConflict(msg) => write!(f, "transaction conflict: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;
