//! Engine error type.

use std::fmt;

/// Every fallible engine operation returns `Result<T, Error>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// SQL text failed to lex or parse. Carries position and message.
    Parse { offset: usize, message: String },
    /// Query referenced an unknown table, column, index, or procedure.
    NotFound(String),
    /// Schema violation: duplicate table, duplicate key on a unique index,
    /// arity mismatch, duplicate column, etc.
    Schema(String),
    /// Type mismatch during expression evaluation or a failed cast.
    Type(String),
    /// A statement-level constraint failed (e.g. parameter index out of range).
    Invalid(String),
    /// Write-ahead log I/O or corruption.
    Wal(String),
    /// The transaction was rolled back by user code.
    RolledBack(String),
    /// Snapshot-isolation write-write conflict (first-updater-wins): the
    /// transaction raced a concurrent writer and should be retried.
    TxnConflict(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "SQL parse error at byte {offset}: {message}")
            }
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::Schema(msg) => write!(f, "schema error: {msg}"),
            Error::Type(msg) => write!(f, "type error: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid request: {msg}"),
            Error::Wal(msg) => write!(f, "WAL error: {msg}"),
            Error::RolledBack(msg) => write!(f, "transaction rolled back: {msg}"),
            Error::TxnConflict(msg) => write!(f, "transaction conflict: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Stable numeric code for the wire protocol's typed error frames.
    /// Codes 1–8 are reserved for this enum; the server crate layers its
    /// own codes (protocol violations, auth, shutdown, …) above 8.
    pub fn wire_code(&self) -> u8 {
        match self {
            Error::Parse { .. } => 1,
            Error::NotFound(_) => 2,
            Error::Schema(_) => 3,
            Error::Type(_) => 4,
            Error::Invalid(_) => 5,
            Error::Wal(_) => 6,
            Error::RolledBack(_) => 7,
            Error::TxnConflict(_) => 8,
        }
    }

    /// Auxiliary `u32` carried alongside the code (byte offset for parse
    /// errors, 0 otherwise).
    pub fn wire_aux(&self) -> u32 {
        match self {
            Error::Parse { offset, .. } => u32::try_from(*offset).unwrap_or(u32::MAX),
            _ => 0,
        }
    }

    /// The message field for the wire frame (without the variant prefix,
    /// which [`Error::from_wire`] restores from the code).
    pub fn wire_message(&self) -> &str {
        match self {
            Error::Parse { message, .. } => message,
            Error::NotFound(m)
            | Error::Schema(m)
            | Error::Type(m)
            | Error::Invalid(m)
            | Error::Wal(m)
            | Error::RolledBack(m)
            | Error::TxnConflict(m) => m,
        }
    }

    /// Reconstruct an engine error from its wire representation; `None`
    /// for codes outside the 1–8 range this enum owns.
    pub fn from_wire(code: u8, aux: u32, message: &str) -> Option<Error> {
        Some(match code {
            1 => Error::Parse {
                offset: aux as usize,
                message: message.to_string(),
            },
            2 => Error::NotFound(message.to_string()),
            3 => Error::Schema(message.to_string()),
            4 => Error::Type(message.to_string()),
            5 => Error::Invalid(message.to_string()),
            6 => Error::Wal(message.to_string()),
            7 => Error::RolledBack(message.to_string()),
            8 => Error::TxnConflict(message.to_string()),
            _ => return None,
        })
    }
}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, Error>;
