//! In-memory table storage: an append-only slab of row *version chains*,
//! kept consistent with the table's indexes on every mutation.
//!
//! Each slab slot holds the versions of one logical row, oldest → newest,
//! stamped with `begin`/`end` commit timestamps (see [`crate::txn`]). A
//! snapshot sees at most one version per chain. An empty chain is a
//! tombstone. `RowId`s are slab positions and stay stable for index
//! entries and undo logs.
//!
//! Two mutation APIs coexist:
//!
//! * the **destructive** API (`insert`/`delete`/`update`/`undelete`) edits
//!   chains as single committed versions — WAL replay, checkpoint restore,
//!   and bulk load run single-threaded with no snapshots active, so they
//!   need no history;
//! * the **MVCC** API (`mvcc_insert`/`mvcc_delete`/`mvcc_update` plus the
//!   `rollback_*` inverses, `stamp_commit`, and `vacuum`) grows chains with
//!   provisional versions stamped by a transaction token, enforcing
//!   first-updater-wins at write time.
//!
//! Index postings cover the union of keys across every version of a chain
//! (deduplicated per chain), so a reader at any snapshot finds its version
//! through the index; read paths re-check visibility and key match.

use crate::error::{Error, Result};
use crate::index::{Index, IndexKey, IndexKind, KeyPart, RowId};
use crate::schema::TableSchema;
use crate::txn::{self, Snapshot};
use crate::value::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// One version of a row: the payload plus its validity interval.
///
/// `begin`/`end` are atomics so commit stamping (marker → timestamp) can
/// run under a table *read* lock while scans proceed; the stores are
/// simple releases, and every transition is from-marker-to-final.
#[derive(Debug)]
pub struct Version {
    begin: AtomicU64,
    end: AtomicU64,
    row: Box<[Value]>,
}

impl Version {
    fn committed(row: Box<[Value]>) -> Version {
        Version {
            begin: AtomicU64::new(0),
            end: AtomicU64::new(txn::TS_INF),
            row,
        }
    }

    fn provisional(row: Box<[Value]>, token: u64) -> Version {
        Version {
            begin: AtomicU64::new(txn::marker(token)),
            end: AtomicU64::new(txn::TS_INF),
            row,
        }
    }

    /// The row payload.
    pub fn row(&self) -> &[Value] {
        &self.row
    }

    /// Creation stamp: commit timestamp or provisional marker.
    pub fn begin(&self) -> u64 {
        self.begin.load(Ordering::Acquire)
    }

    /// Deletion stamp: `TS_INF` while live.
    pub fn end(&self) -> u64 {
        self.end.load(Ordering::Acquire)
    }

    /// Whether `snap` sees this version.
    pub fn visible(&self, snap: Snapshot) -> bool {
        snap.sees(self.begin(), self.end())
    }
}

/// A row's version chain, oldest → newest. Empty = tombstone.
#[derive(Debug, Default)]
pub struct Slot {
    versions: Vec<Version>,
}

impl Slot {
    /// The version `snap` sees, if any. At most one version of a chain is
    /// visible to a given snapshot; scan newest-first since recent
    /// snapshots want recent versions.
    pub fn visible(&self, snap: Snapshot) -> Option<&[Value]> {
        self.versions
            .iter()
            .rev()
            .find(|v| v.visible(snap))
            .map(Version::row)
    }

    /// All versions, oldest → newest.
    pub fn versions(&self) -> &[Version] {
        &self.versions
    }

    fn latest(&self) -> Option<&Version> {
        self.versions.last()
    }
}

/// First-updater-wins admission: may the transaction `(token, snap)`
/// modify a chain whose newest version is `v`?
///
/// Rejecting at write time (rather than validating at commit) means a
/// transaction never wastes work building on a row it cannot commit.
fn check_write(v: &Version, token: u64, snap: Snapshot) -> Result<()> {
    let own = txn::marker(token);
    let e = v.end();
    if e != txn::TS_INF {
        // Newest version already superseded: by us (logic error upstream),
        // by another in-flight transaction, or by a commit we may not even
        // see yet. All are write-write conflicts under first-updater-wins.
        return Err(if e == own {
            Error::Invalid("row already deleted in this transaction".into())
        } else {
            Error::TxnConflict("row is being written by a concurrent transaction".into())
        });
    }
    let b = v.begin();
    if txn::is_marker(b) {
        if b != own {
            return Err(Error::TxnConflict(
                "row was inserted by a concurrent uncommitted transaction".into(),
            ));
        }
    } else if b > snap.ts {
        return Err(Error::TxnConflict(
            "row was modified after this transaction's snapshot".into(),
        ));
    }
    Ok(())
}

/// A stored table: schema + version-chain slab + indexes.
#[derive(Debug)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Slot>,
    indexes: Vec<Index>,
    live: usize,
    /// Analyzed statistics (`ANALYZE`), if collected. Deliberately not
    /// invalidated on mutation — stats go stale, the planner compensates by
    /// capping ndv at the live row count.
    stats: Option<crate::stats::TableStats>,
    /// Physical-content counter: bumped on every mutation of the version
    /// slab or indexes (inserts, deletes, updates, MVCC stamps/rollbacks,
    /// vacuum pruning, index DDL) and on `ANALYZE`. Derived caches (the CSR
    /// adjacency cache) key their validity on it: an unchanged counter
    /// proves the bytes the cache was built from are untouched.
    version: std::sync::atomic::AtomicU64,
    /// Highest commit timestamp stamped into this table (0 = none). A
    /// snapshot at `ts >= last_commit_ts` sees every committed version and
    /// no in-flight ones, so caches built under one such snapshot can be
    /// served to any other.
    last_commit_ts: std::sync::atomic::AtomicU64,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            live: 0,
            stats: None,
            version: std::sync::atomic::AtomicU64::new(0),
            last_commit_ts: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Rebuild a table from a serialized slab (checkpoint load): slots are
    /// installed verbatim — tombstones included — so physical `RowId`s and
    /// scan order match the snapshotted table exactly. Every restored row
    /// is a single committed version. Rows are validated against the
    /// schema; indexes must be created afterwards (they backfill on
    /// creation).
    pub fn from_slots(schema: TableSchema, slots: Vec<Option<Vec<Value>>>) -> Result<Table> {
        let mut live = 0;
        let mut rows = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot {
                None => rows.push(Slot::default()),
                Some(mut row) => {
                    schema.check_row(&mut row)?;
                    rows.push(Slot {
                        versions: vec![Version::committed(row.into_boxed_slice())],
                    });
                    live += 1;
                }
            }
        }
        Ok(Table {
            schema,
            rows,
            indexes: Vec::new(),
            live,
            stats: None,
            version: std::sync::atomic::AtomicU64::new(0),
            last_commit_ts: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Install analyzed statistics (see [`crate::stats::TableStats`]).
    /// Counts as a content-version bump: `ANALYZE` marks a point where
    /// derived caches built from the pre-analyze table must be rebuilt.
    pub fn set_stats(&mut self, stats: crate::stats::TableStats) {
        self.stats = Some(stats);
        self.bump_version();
    }

    /// Current physical-content version (see the field docs).
    pub fn content_version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Highest commit timestamp stamped into this table (0 = none).
    pub fn last_commit_ts(&self) -> u64 {
        self.last_commit_ts
            .load(std::sync::atomic::Ordering::Acquire)
    }

    #[inline]
    fn bump_version(&self) {
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Analyzed statistics, if `ANALYZE` has been run on this table.
    pub fn stats(&self) -> Option<&crate::stats::TableStats> {
        self.stats.as_ref()
    }

    /// Number of live rows. Counts committed-live rows plus uncommitted
    /// inserts minus uncommitted deletes — an estimate for the planner and
    /// the exact count in any single-writer window.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Upper bound of row ids ever allocated (including tombstones).
    pub fn slab_len(&self) -> usize {
        self.rows.len()
    }

    /// Fetch a row as of the all-committed view.
    pub fn get(&self, id: RowId) -> Option<&[Value]> {
        self.get_visible(id, Snapshot::latest())
    }

    /// Fetch the version of row `id` visible to `snap`, if any.
    pub fn get_visible(&self, id: RowId, snap: Snapshot) -> Option<&[Value]> {
        self.rows.get(id).and_then(|s| s.visible(snap))
    }

    /// Raw slab access for morsel-parallel scans: slot `i` is row id `i`'s
    /// version chain. Workers slice disjoint ranges of this slab so a
    /// parallel scan visits rows in exactly `iter()`'s order.
    pub fn slots(&self) -> &[Slot] {
        &self.rows
    }

    /// Materialize the rows of slab range `range` visible to `snap`
    /// (pruned to `keep` columns, in `keep` order) as one columnar batch —
    /// the batch engine's scan primitive. Visits slots in slab order, so
    /// concatenating the batches of consecutive ranges reproduces a serial
    /// scan exactly.
    pub fn batch_range(
        &self,
        range: std::ops::Range<usize>,
        keep: &[usize],
        snap: Snapshot,
    ) -> crate::batch::Batch {
        let mut builders: Vec<crate::batch::ColBuilder> = keep
            .iter()
            .map(|_| crate::batch::ColBuilder::new())
            .collect();
        let mut len = 0usize;
        for slot in &self.rows[range] {
            let Some(r) = slot.visible(snap) else {
                continue;
            };
            for (b, &i) in builders.iter_mut().zip(keep) {
                b.push(&r[i]);
            }
            len += 1;
        }
        crate::batch::Batch {
            cols: builders
                .into_iter()
                .map(crate::batch::ColBuilder::finish)
                .collect(),
            len,
            sel: None,
        }
    }

    /// Iterate `(RowId, row)` over rows in the all-committed view.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.iter_snap(Snapshot::latest())
    }

    /// Iterate `(RowId, row)` over rows visible to `snap`.
    pub fn iter_snap(&self, snap: Snapshot) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(move |(id, s)| s.visible(snap).map(|row| (id, row)))
    }

    // ------------------------------------------------------------------
    // Destructive API: single committed versions, no history. WAL replay,
    // checkpoint restore, and bulk load — single-threaded, no snapshots.
    // ------------------------------------------------------------------

    /// Insert a row (validated/coerced against the schema) as a single
    /// committed version, updating all indexes. Returns the new row's id.
    ///
    /// On a unique violation the row is not inserted and previously updated
    /// indexes are rolled back, so the table stays consistent.
    pub fn insert(&mut self, mut row: Vec<Value>) -> Result<RowId> {
        self.schema.check_row(&mut row)?;
        let id = self.rows.len();
        for i in 0..self.indexes.len() {
            if let Err(e) = self.indexes[i].insert(&row, id) {
                for j in 0..i {
                    self.indexes[j].remove(&row, id);
                }
                return Err(e);
            }
        }
        self.rows.push(Slot {
            versions: vec![Version::committed(row.into_boxed_slice())],
        });
        self.live += 1;
        self.bump_version();
        Ok(id)
    }

    /// Delete a row by id, discarding its whole version chain. Returns the
    /// newest version's values.
    pub fn delete(&mut self, id: RowId) -> Result<Vec<Value>> {
        if id >= self.rows.len() {
            return Err(Error::Invalid(format!("row {id} out of range")));
        }
        let mut versions = std::mem::take(&mut self.rows[id].versions);
        if versions.is_empty() {
            return Err(Error::Invalid(format!("row {id} already deleted")));
        }
        for v in &versions {
            for i in 0..self.indexes.len() {
                let key = self.indexes[i].key_of(v.row());
                // Postings are deduplicated per chain; removing a key twice
                // is a no-op.
                self.indexes[i].remove_key(&key, id);
            }
        }
        let newest = versions.pop().expect("chain checked non-empty");
        if newest.end() == txn::TS_INF {
            self.live -= 1;
        }
        self.bump_version();
        Ok(newest.row.into_vec())
    }

    /// Replace a row in place with a single committed version, updating
    /// indexes. Returns the newest old values.
    pub fn update(&mut self, id: RowId, mut new_row: Vec<Value>) -> Result<Vec<Value>> {
        self.schema.check_row(&mut new_row)?;
        if self
            .rows
            .get(id)
            .and_then(Slot::latest)
            .is_none_or(|v| v.end() != txn::TS_INF)
        {
            return Err(Error::Invalid(format!("row {id} not live")));
        }
        // Drop the old chain's postings, then insert the new key set with
        // unique checks; on a violation restore the old postings verbatim.
        let old_keys: Vec<Vec<IndexKey>> = self
            .indexes
            .iter()
            .map(|idx| {
                let mut keys: Vec<IndexKey> = self.rows[id]
                    .versions
                    .iter()
                    .map(|v| idx.key_of(v.row()))
                    .collect();
                keys.sort();
                keys.dedup();
                keys
            })
            .collect();
        for (i, keys) in old_keys.iter().enumerate() {
            for key in keys {
                self.indexes[i].remove_key(key, id);
            }
        }
        for i in 0..self.indexes.len() {
            if let Err(e) = self.indexes[i].insert(&new_row, id) {
                for j in 0..i {
                    self.indexes[j].remove(&new_row, id);
                }
                for (j, keys) in old_keys.iter().enumerate() {
                    for key in keys {
                        self.indexes[j].add(key.clone(), id);
                    }
                }
                return Err(e);
            }
        }
        let mut versions = std::mem::replace(
            &mut self.rows[id].versions,
            vec![Version::committed(new_row.into_boxed_slice())],
        );
        let newest = versions.pop().expect("liveness checked above");
        self.bump_version();
        Ok(newest.row.into_vec())
    }

    /// Re-insert a previously deleted row at its original id (recovery
    /// path). The slot must currently be a tombstone.
    pub fn undelete(&mut self, id: RowId, row: Vec<Value>) -> Result<()> {
        if id >= self.rows.len() {
            return Err(Error::Invalid(format!("row {id} out of range")));
        }
        if !self.rows[id].versions.is_empty() {
            return Err(Error::Invalid(format!("row {id} is live; cannot undelete")));
        }
        for idx in &mut self.indexes {
            idx.insert(&row, id)?;
        }
        self.rows[id].versions = vec![Version::committed(row.into_boxed_slice())];
        self.live += 1;
        self.bump_version();
        Ok(())
    }

    // ------------------------------------------------------------------
    // MVCC API: provisional versions under a transaction token, with
    // first-updater-wins conflict detection. Callers hold the table's
    // write lock for mutation; `stamp_commit` needs only a read lock.
    // ------------------------------------------------------------------

    /// Uniqueness under MVCC: a key is taken if any version carrying it is
    /// live (`end == TS_INF`) in the *current state* — the newest committed
    /// or provisionally written state, not the transaction's snapshot —
    /// matching the write-time first-updater-wins discipline.
    fn check_unique_mvcc(&self, idx_i: usize, key: &IndexKey, token: u64) -> Result<()> {
        let idx = &self.indexes[idx_i];
        if !idx.unique {
            return Ok(());
        }
        let own = txn::marker(token);
        for &rid in idx.lookup(key) {
            for v in self.rows[rid].versions() {
                if idx.key_of(v.row()) != *key {
                    continue;
                }
                let e = v.end();
                if e == txn::TS_INF {
                    let b = v.begin();
                    return Err(if txn::is_marker(b) && b != own {
                        // Someone else's uncommitted insert holds the key;
                        // whether it commits is undecided.
                        Error::TxnConflict(format!(
                            "concurrent insert contends unique index '{}'",
                            idx.name
                        ))
                    } else {
                        Error::Schema(format!("unique index '{}' violated", idx.name))
                    });
                }
                if txn::is_marker(e) && e != own {
                    // Another in-flight transaction is deleting the holder;
                    // if it rolls back the key is taken again.
                    return Err(Error::TxnConflict(format!(
                        "unique key contended on index '{}'",
                        idx.name
                    )));
                }
                // Committed delete or our own provisional delete: key free.
            }
        }
        Ok(())
    }

    /// Insert a provisional row version for transaction `token`.
    pub fn mvcc_insert(&mut self, mut row: Vec<Value>, token: u64) -> Result<RowId> {
        self.schema.check_row(&mut row)?;
        for i in 0..self.indexes.len() {
            let key = self.indexes[i].key_of(&row);
            self.check_unique_mvcc(i, &key, token)?;
        }
        let id = self.rows.len();
        for idx in &mut self.indexes {
            let key = idx.key_of(&row);
            idx.add(key, id);
        }
        self.rows.push(Slot {
            versions: vec![Version::provisional(row.into_boxed_slice(), token)],
        });
        self.live += 1;
        self.bump_version();
        Ok(id)
    }

    /// Provisionally delete row `id`: stamp the newest version's `end`
    /// with the transaction's marker. Fails with [`Error::TxnConflict`]
    /// if another transaction got there first.
    pub fn mvcc_delete(&mut self, id: RowId, token: u64, snap: Snapshot) -> Result<()> {
        let v = self
            .rows
            .get(id)
            .and_then(Slot::latest)
            .ok_or_else(|| Error::Invalid(format!("row {id} not live")))?;
        check_write(v, token, snap)?;
        v.end.store(txn::marker(token), Ordering::Release);
        self.live -= 1;
        self.bump_version();
        Ok(())
    }

    /// Provisionally replace row `id`: end-stamp the newest version with
    /// the transaction's marker and append a provisional successor.
    pub fn mvcc_update(
        &mut self,
        id: RowId,
        mut new_row: Vec<Value>,
        token: u64,
        snap: Snapshot,
    ) -> Result<()> {
        self.schema.check_row(&mut new_row)?;
        {
            let v = self
                .rows
                .get(id)
                .and_then(Slot::latest)
                .ok_or_else(|| Error::Invalid(format!("row {id} not live")))?;
            check_write(v, token, snap)?;
            for i in 0..self.indexes.len() {
                if !self.indexes[i].unique {
                    continue;
                }
                let new_key = self.indexes[i].key_of(&new_row);
                if self.indexes[i].key_of(v.row()) == new_key {
                    continue;
                }
                self.check_unique_mvcc(i, &new_key, token)?;
            }
        }
        // Postings only for keys the chain doesn't already cover.
        let to_add: Vec<(usize, IndexKey)> = self
            .indexes
            .iter()
            .enumerate()
            .filter_map(|(i, idx)| {
                let key = idx.key_of(&new_row);
                let covered = self.rows[id]
                    .versions
                    .iter()
                    .any(|v| idx.key_of(v.row()) == key);
                (!covered).then_some((i, key))
            })
            .collect();
        let own = txn::marker(token);
        let slot = &mut self.rows[id];
        slot.versions
            .last()
            .expect("liveness checked above")
            .end
            .store(own, Ordering::Release);
        slot.versions
            .push(Version::provisional(new_row.into_boxed_slice(), token));
        for (i, key) in to_add {
            self.indexes[i].add(key, id);
        }
        self.bump_version();
        Ok(())
    }

    /// Undo a provisional insert: pop the version and drop its postings.
    pub fn rollback_insert(&mut self, id: RowId, token: u64) {
        let v = self.rows[id]
            .versions
            .pop()
            .expect("rollback insert: version exists");
        debug_assert_eq!(v.begin(), txn::marker(token));
        self.unindex_unless_shared(id, v.row());
        self.live -= 1;
        self.bump_version();
    }

    /// Undo a provisional delete: clear the marker back to live.
    pub fn rollback_delete(&mut self, id: RowId, token: u64) {
        let v = self.rows[id]
            .versions
            .last()
            .expect("rollback delete: version exists");
        debug_assert_eq!(v.end(), txn::marker(token));
        v.end.store(txn::TS_INF, Ordering::Release);
        self.live += 1;
        self.bump_version();
    }

    /// Undo a provisional update: pop the successor, drop its unshared
    /// postings, revive the predecessor.
    pub fn rollback_update(&mut self, id: RowId, token: u64) {
        let v = self.rows[id]
            .versions
            .pop()
            .expect("rollback update: successor exists");
        debug_assert_eq!(v.begin(), txn::marker(token));
        self.unindex_unless_shared(id, v.row());
        let prev = self.rows[id]
            .versions
            .last()
            .expect("rollback update: predecessor exists");
        debug_assert_eq!(prev.end(), txn::marker(token));
        prev.end.store(txn::TS_INF, Ordering::Release);
        self.bump_version();
    }

    /// Replace transaction `token`'s markers on row `id` with commit
    /// timestamp `ts`. Idempotent; needs only a shared table guard — the
    /// stamps are atomics and chain structure is untouched. Records `ts`
    /// as the table's newest commit and bumps the content version so
    /// derived caches built before the commit are invalidated.
    pub fn stamp_commit(&self, id: RowId, token: u64, ts: u64) {
        let own = txn::marker(token);
        let Some(slot) = self.rows.get(id) else {
            return;
        };
        for v in &slot.versions {
            if v.begin.load(Ordering::Acquire) == own {
                v.begin.store(ts, Ordering::Release);
            }
            if v.end.load(Ordering::Acquire) == own {
                v.end.store(ts, Ordering::Release);
            }
        }
        self.last_commit_ts.fetch_max(ts, Ordering::AcqRel);
        self.bump_version();
    }

    /// Reclaim versions invisible to every present and future snapshot:
    /// committed `end <= watermark`. Returns the number pruned.
    pub fn vacuum(&mut self, watermark: u64) -> usize {
        let mut pruned = 0;
        for id in 0..self.rows.len() {
            let has_dead = self.rows[id].versions.iter().any(|v| {
                let e = v.end();
                e != txn::TS_INF && !txn::is_marker(e) && e <= watermark
            });
            if !has_dead {
                continue;
            }
            let mut removed: Vec<Box<[Value]>> = Vec::new();
            self.rows[id].versions.retain_mut(|v| {
                let e = v.end();
                let dead = e != txn::TS_INF && !txn::is_marker(e) && e <= watermark;
                if dead {
                    removed.push(std::mem::take(&mut v.row));
                }
                !dead
            });
            for row in &removed {
                self.unindex_unless_shared(id, row);
            }
            pruned += removed.len();
        }
        if pruned > 0 {
            self.bump_version();
        }
        pruned
    }

    /// Drop row `id`'s postings for `row`'s keys, unless another surviving
    /// version of the chain still carries the key.
    fn unindex_unless_shared(&mut self, id: RowId, row: &[Value]) {
        for i in 0..self.indexes.len() {
            let key = self.indexes[i].key_of(row);
            let shared = self.rows[id]
                .versions
                .iter()
                .any(|v| self.indexes[i].key_of(v.row()) == key);
            if !shared {
                self.indexes[i].remove_key(&key, id);
            }
        }
    }

    /// Create and backfill an index over `columns`.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: Vec<usize>,
        unique: bool,
        kind: IndexKind,
    ) -> Result<()> {
        self.create_index_with_parts(
            name,
            columns.into_iter().map(KeyPart::Column).collect(),
            unique,
            kind,
        )
    }

    /// Create and backfill an index over arbitrary key parts (plain columns
    /// or `JSON_VAL` extractions — functional indexes). Backfill covers
    /// every version of every chain (deduplicated per chain); unique
    /// enforcement applies to the committed-live version of each chain.
    pub fn create_index_with_parts(
        &mut self,
        name: impl Into<String>,
        parts: Vec<KeyPart>,
        unique: bool,
        kind: IndexKind,
    ) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(Error::Schema(format!("index '{name}' already exists")));
        }
        if parts.iter().any(|p| p.column() >= self.schema.arity()) {
            return Err(Error::Schema(format!(
                "index '{name}' references a column out of range"
            )));
        }
        let latest = Snapshot::latest();
        let mut idx = Index::with_parts(name, parts, unique, kind);
        for (id, slot) in self.rows.iter().enumerate() {
            let mut seen: Vec<IndexKey> = Vec::new();
            for v in slot.versions.iter().rev() {
                let key = idx.key_of(v.row());
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key.clone());
                if v.visible(latest) {
                    idx.insert(v.row(), id)?;
                } else {
                    idx.add(key, id);
                }
            }
        }
        self.indexes.push(idx);
        self.bump_version();
        Ok(())
    }

    /// Remove the index named `name`. Returns whether it existed. Used by
    /// transaction rollback to undo a journaled `CREATE INDEX`.
    pub fn drop_index(&mut self, name: &str) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|i| i.name != name);
        if self.indexes.len() != before {
            self.bump_version();
            return true;
        }
        false
    }

    /// Find an index whose key columns are exactly `columns` (order matters).
    pub fn index_on(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.columns == columns)
    }

    /// Find an index whose *first* key column is `column` and that can serve
    /// point lookups on a prefix. Used by the planner for single-column
    /// equality predicates.
    pub fn index_with_prefix(&self, column: usize) -> Option<&Index> {
        // Exact single-column index preferred; otherwise a composite whose
        // key starts with `column` can still narrow a B-tree range.
        self.indexes
            .iter()
            .find(|i| i.columns.len() == 1 && i.columns[0] == column)
            .or_else(|| {
                self.indexes
                    .iter()
                    .find(|i| i.columns.first() == Some(&column) && i.kind() == IndexKind::BTree)
            })
    }

    /// All indexes (for introspection / stats).
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Row ids matching `key` on the index named `index`. Postings may
    /// cover non-current versions; callers re-check visibility.
    pub fn index_lookup(&self, index: &str, key: &IndexKey) -> Result<Vec<RowId>> {
        let idx = self
            .indexes
            .iter()
            .find(|i| i.name == index)
            .ok_or_else(|| Error::NotFound(format!("index '{index}'")))?;
        Ok(idx.lookup(key).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                Column {
                    name: "id".into(),
                    ty: ColumnType::Integer,
                },
                Column {
                    name: "v".into(),
                    ty: ColumnType::Any,
                },
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index("t_pk", vec![0], true, IndexKind::Hash)
            .unwrap();
        t
    }

    #[test]
    fn insert_get_iter() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        let b = t.insert(vec![Value::Int(2), Value::str("b")]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap()[1], Value::str("a"));
        let ids: Vec<_> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, [a, b]);
    }

    #[test]
    fn delete_tombstones_and_indexes() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        let removed = t.delete(a).unwrap();
        assert_eq!(removed[0], Value::Int(1));
        assert_eq!(t.len(), 1);
        assert!(t.get(a).is_none());
        assert!(t.delete(a).is_err());
        // id 1 is reusable now via the unique index.
        t.insert(vec![Value::Int(1), Value::str("again")]).unwrap();
    }

    #[test]
    fn unique_violation_leaves_table_consistent() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        assert!(t.insert(vec![Value::Int(1), Value::Null]).is_err());
        assert_eq!(t.len(), 1);
        let key = IndexKey(vec![Value::Int(1)]);
        assert_eq!(t.index_lookup("t_pk", &key).unwrap().len(), 1);
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        t.update(a, vec![Value::Int(9), Value::str("y")]).unwrap();
        assert!(t
            .index_lookup("t_pk", &IndexKey(vec![Value::Int(1)]))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(9)]))
                .unwrap(),
            [a]
        );
    }

    #[test]
    fn update_unique_conflict_restores_old_state() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let b = t.insert(vec![Value::Int(2), Value::str("keep")]).unwrap();
        assert!(t.update(b, vec![Value::Int(1), Value::Null]).is_err());
        // b unchanged and still findable under its old key.
        assert_eq!(t.get(b).unwrap()[1], Value::str("keep"));
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(2)]))
                .unwrap(),
            [b]
        );
    }

    #[test]
    fn undelete_restores_row() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        let row = t.delete(a).unwrap();
        t.undelete(a, row).unwrap();
        assert_eq!(t.get(a).unwrap()[0], Value::Int(1));
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(1)]))
                .unwrap(),
            [a]
        );
    }

    #[test]
    fn backfilled_index() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        }
        t.create_index("t_v", vec![1], false, IndexKind::BTree)
            .unwrap();
        let ids = t
            .index_lookup("t_v", &IndexKey(vec![Value::Int(0)]))
            .unwrap();
        assert_eq!(ids.len(), 4); // 0, 3, 6, 9
        assert!(t
            .create_index("t_v", vec![1], false, IndexKind::Hash)
            .is_err());
    }

    // ---------------- MVCC ----------------

    fn snap(ts: u64, token: u64) -> Snapshot {
        Snapshot { ts, token }
    }

    #[test]
    fn mvcc_insert_visible_only_to_owner_until_stamped() {
        let mut t = table();
        let id = t
            .mvcc_insert(vec![Value::Int(1), Value::str("a")], 7)
            .unwrap();
        assert_eq!(t.len(), 1, "live counter includes provisional inserts");
        assert!(t.get_visible(id, snap(0, 7)).is_some(), "owner sees it");
        assert!(t.get_visible(id, snap(0, 8)).is_none(), "others do not");
        assert!(t.get(id).is_none(), "all-committed view does not");
        t.stamp_commit(id, 7, 5);
        assert!(t.get_visible(id, snap(5, 0)).is_some());
        assert!(t.get_visible(id, snap(4, 0)).is_none(), "older snapshot");
        assert!(t.get(id).is_some());
    }

    #[test]
    fn mvcc_update_builds_chain_and_keeps_old_version_readable() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::str("old")]).unwrap();
        let s = snap(0, 3);
        t.mvcc_update(id, vec![Value::Int(1), Value::str("new")], 3, s)
            .unwrap();
        // Owner sees the new version; a plain snapshot still sees the old.
        assert_eq!(t.get_visible(id, s).unwrap()[1], Value::str("new"));
        assert_eq!(t.get_visible(id, snap(0, 0)).unwrap()[1], Value::str("old"));
        t.stamp_commit(id, 3, 4);
        assert_eq!(t.get_visible(id, snap(3, 0)).unwrap()[1], Value::str("old"));
        assert_eq!(t.get_visible(id, snap(4, 0)).unwrap()[1], Value::str("new"));
    }

    #[test]
    fn first_updater_wins_conflicts() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let s1 = snap(0, 1);
        let s2 = snap(0, 2);
        t.mvcc_update(id, vec![Value::Int(1), Value::str("a")], 1, s1)
            .unwrap();
        // A second writer hits the in-flight marker.
        assert!(matches!(
            t.mvcc_update(id, vec![Value::Int(1), Value::str("b")], 2, s2),
            Err(Error::TxnConflict(_))
        ));
        assert!(matches!(
            t.mvcc_delete(id, 2, s2),
            Err(Error::TxnConflict(_))
        ));
        // After commit at ts 5, a snapshot from before the commit still
        // conflicts (it would overwrite a version it cannot see).
        t.stamp_commit(id, 1, 5);
        assert!(matches!(
            t.mvcc_delete(id, 2, snap(0, 2)),
            Err(Error::TxnConflict(_))
        ));
        // A snapshot at/after the commit may proceed.
        t.mvcc_delete(id, 2, snap(5, 2)).unwrap();
    }

    #[test]
    fn rollbacks_restore_prior_state() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::str("keep")]).unwrap();
        let s = snap(0, 9);
        let b = t.mvcc_insert(vec![Value::Int(2), Value::Null], 9).unwrap();
        t.mvcc_update(a, vec![Value::Int(7), Value::str("tmp")], 9, s)
            .unwrap();
        // Undo in reverse order, as the journal does.
        t.rollback_update(a, 9);
        t.rollback_insert(b, 9);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(a).unwrap()[1], Value::str("keep"));
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(1)]))
                .unwrap(),
            [a]
        );
        assert!(t
            .index_lookup("t_pk", &IndexKey(vec![Value::Int(7)]))
            .unwrap()
            .is_empty());
        assert!(t
            .index_lookup("t_pk", &IndexKey(vec![Value::Int(2)]))
            .unwrap()
            .is_empty());

        let s2 = snap(0, 11);
        t.mvcc_delete(a, 11, s2).unwrap();
        assert_eq!(t.len(), 0);
        t.rollback_delete(a, 11);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(a).unwrap()[0], Value::Int(1));
    }

    #[test]
    fn mvcc_unique_respects_liveness_not_history() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        // Live key blocks an MVCC insert.
        assert!(matches!(
            t.mvcc_insert(vec![Value::Int(1), Value::Null], 2),
            Err(Error::Schema(_))
        ));
        // Delete committed at ts 3: the key is free for current writers
        // even though the old version is still readable at ts <= 2.
        t.mvcc_delete(a, 1, snap(0, 1)).unwrap();
        t.stamp_commit(a, 1, 3);
        let b = t
            .mvcc_insert(vec![Value::Int(1), Value::str("new")], 2)
            .unwrap();
        t.stamp_commit(b, 2, 4);
        assert_eq!(t.get_visible(a, snap(2, 0)).unwrap()[0], Value::Int(1));
        assert_eq!(t.get_visible(b, snap(4, 0)).unwrap()[1], Value::str("new"));
        // An uncommitted foreign insert holding the key is a conflict, not
        // a hard schema error.
        let mut t2 = table();
        t2.mvcc_insert(vec![Value::Int(5), Value::Null], 1).unwrap();
        assert!(matches!(
            t2.mvcc_insert(vec![Value::Int(5), Value::Null], 2),
            Err(Error::TxnConflict(_))
        ));
    }

    #[test]
    fn vacuum_prunes_below_watermark() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::str("v0")]).unwrap();
        t.mvcc_update(id, vec![Value::Int(2), Value::str("v1")], 1, snap(0, 1))
            .unwrap();
        t.stamp_commit(id, 1, 2);
        t.mvcc_update(id, vec![Value::Int(3), Value::str("v2")], 2, snap(2, 2))
            .unwrap();
        t.stamp_commit(id, 2, 4);
        assert_eq!(t.slots()[id].versions().len(), 3);
        // Watermark 1: v0 (end=2) still visible to a snapshot at ts 1.
        assert_eq!(t.vacuum(1), 0);
        // Watermark 2: v0 dead everywhere, v1 (end=4) still needed.
        assert_eq!(t.vacuum(2), 1);
        assert_eq!(t.slots()[id].versions().len(), 2);
        assert!(t
            .index_lookup("t_pk", &IndexKey(vec![Value::Int(1)]))
            .unwrap()
            .is_empty());
        // Watermark 4: only the live version remains; its key survives.
        assert_eq!(t.vacuum(4), 1);
        assert_eq!(t.slots()[id].versions().len(), 1);
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(3)]))
                .unwrap(),
            [id]
        );
        // A fully deleted chain vacuums to an empty tombstone.
        let d = t.insert(vec![Value::Int(9), Value::Null]).unwrap();
        t.mvcc_delete(d, 3, snap(4, 3)).unwrap();
        t.stamp_commit(d, 3, 5);
        assert_eq!(t.vacuum(5), 1);
        assert!(t.slots()[d].versions().is_empty());
        assert!(t
            .index_lookup("t_pk", &IndexKey(vec![Value::Int(9)]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn key_cycling_updates_keep_postings_deduplicated() {
        let mut t = table();
        let id = t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        let s = snap(0, 1);
        // 1 -> 2 -> 1: the chain covers key 1 twice but posts it once.
        t.mvcc_update(id, vec![Value::Int(2), Value::str("b")], 1, s)
            .unwrap();
        t.mvcc_update(id, vec![Value::Int(1), Value::str("c")], 1, s)
            .unwrap();
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(1)]))
                .unwrap(),
            [id]
        );
        // Rolling back the chain leaves exactly the original posting.
        t.rollback_update(id, 1);
        t.rollback_update(id, 1);
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(1)]))
                .unwrap(),
            [id]
        );
        assert!(t
            .index_lookup("t_pk", &IndexKey(vec![Value::Int(2)]))
            .unwrap()
            .is_empty());
        assert_eq!(t.get(id).unwrap()[1], Value::str("a"));
    }
}
