//! In-memory table storage: an append-only row slab with tombstones, kept
//! consistent with the table's indexes on every mutation.

use crate::error::{Error, Result};
use crate::index::{Index, IndexKey, IndexKind, KeyPart, RowId};
use crate::schema::TableSchema;
use crate::value::Value;

/// A stored table: schema + rows + indexes.
///
/// Rows live in a slab; deletion tombstones the slot (`None`) so `RowId`s
/// stay stable for index entries and undo logs. `live` counts non-tombstone
/// rows for cardinality estimates.
#[derive(Debug)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    rows: Vec<Option<Box<[Value]>>>,
    indexes: Vec<Index>,
    live: usize,
    /// Analyzed statistics (`ANALYZE`), if collected. Deliberately not
    /// invalidated on mutation — stats go stale, the planner compensates by
    /// capping ndv at the live row count.
    stats: Option<crate::stats::TableStats>,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            live: 0,
            stats: None,
        }
    }

    /// Rebuild a table from a serialized slab (checkpoint load): slots are
    /// installed verbatim — tombstones included — so physical `RowId`s and
    /// scan order match the snapshotted table exactly. Rows are validated
    /// against the schema; indexes must be created afterwards (they
    /// backfill on creation).
    pub fn from_slots(schema: TableSchema, slots: Vec<Option<Vec<Value>>>) -> Result<Table> {
        let mut live = 0;
        let mut rows = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot {
                None => rows.push(None),
                Some(mut row) => {
                    schema.check_row(&mut row)?;
                    rows.push(Some(row.into_boxed_slice()));
                    live += 1;
                }
            }
        }
        Ok(Table {
            schema,
            rows,
            indexes: Vec::new(),
            live,
            stats: None,
        })
    }

    /// Install analyzed statistics (see [`crate::stats::TableStats`]).
    pub fn set_stats(&mut self, stats: crate::stats::TableStats) {
        self.stats = Some(stats);
    }

    /// Analyzed statistics, if `ANALYZE` has been run on this table.
    pub fn stats(&self) -> Option<&crate::stats::TableStats> {
        self.stats.as_ref()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Upper bound of row ids ever allocated (including tombstones).
    pub fn slab_len(&self) -> usize {
        self.rows.len()
    }

    /// Fetch a live row.
    pub fn get(&self, id: RowId) -> Option<&[Value]> {
        self.rows.get(id).and_then(|r| r.as_deref())
    }

    /// Raw slab access for morsel-parallel scans: slot `i` is row id `i`,
    /// `None` marks a tombstone. Workers slice disjoint ranges of this
    /// slab so a parallel scan visits rows in exactly `iter()`'s order.
    pub fn slots(&self) -> &[Option<Box<[Value]>>] {
        &self.rows
    }

    /// Materialize the live rows of slab range `range` (pruned to `keep`
    /// columns, in `keep` order) as one columnar batch — the batch engine's
    /// scan primitive. Visits slots in slab order, so concatenating the
    /// batches of consecutive ranges reproduces a serial scan exactly.
    pub fn batch_range(
        &self,
        range: std::ops::Range<usize>,
        keep: &[usize],
    ) -> crate::batch::Batch {
        let mut builders: Vec<crate::batch::ColBuilder> = keep
            .iter()
            .map(|_| crate::batch::ColBuilder::new())
            .collect();
        let mut len = 0usize;
        for slot in &self.rows[range] {
            let Some(r) = slot else { continue };
            for (b, &i) in builders.iter_mut().zip(keep) {
                b.push(&r[i]);
            }
            len += 1;
        }
        crate::batch::Batch {
            cols: builders
                .into_iter()
                .map(crate::batch::ColBuilder::finish)
                .collect(),
            len,
            sel: None,
        }
    }

    /// Iterate `(RowId, row)` over live rows.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &[Value])> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(id, r)| r.as_deref().map(|row| (id, row)))
    }

    /// Insert a row (validated/coerced against the schema), updating all
    /// indexes. Returns the new row's id.
    ///
    /// On a unique violation the row is not inserted and previously updated
    /// indexes are rolled back, so the table stays consistent.
    pub fn insert(&mut self, mut row: Vec<Value>) -> Result<RowId> {
        self.schema.check_row(&mut row)?;
        let id = self.rows.len();
        for i in 0..self.indexes.len() {
            if let Err(e) = self.indexes[i].insert(&row, id) {
                for j in 0..i {
                    self.indexes[j].remove(&row, id);
                }
                return Err(e);
            }
        }
        self.rows.push(Some(row.into_boxed_slice()));
        self.live += 1;
        Ok(id)
    }

    /// Delete a row by id, returning the removed values.
    pub fn delete(&mut self, id: RowId) -> Result<Vec<Value>> {
        let slot = self
            .rows
            .get_mut(id)
            .ok_or_else(|| Error::Invalid(format!("row {id} out of range")))?;
        let row = slot
            .take()
            .ok_or_else(|| Error::Invalid(format!("row {id} already deleted")))?;
        for idx in &mut self.indexes {
            idx.remove(&row, id);
        }
        self.live -= 1;
        Ok(row.into_vec())
    }

    /// Replace a row in place, updating indexes. Returns the old values.
    pub fn update(&mut self, id: RowId, mut new_row: Vec<Value>) -> Result<Vec<Value>> {
        self.schema.check_row(&mut new_row)?;
        let old = self
            .rows
            .get(id)
            .and_then(|r| r.clone())
            .ok_or_else(|| Error::Invalid(format!("row {id} not live")))?;
        for idx in &mut self.indexes {
            idx.remove(&old, id);
        }
        for i in 0..self.indexes.len() {
            if let Err(e) = self.indexes[i].insert(&new_row, id) {
                // Restore: undo partial inserts, re-add old entries.
                for j in 0..i {
                    self.indexes[j].remove(&new_row, id);
                }
                for idx in &mut self.indexes {
                    idx.insert(&old, id).expect("restoring prior index state");
                }
                return Err(e);
            }
        }
        self.rows[id] = Some(new_row.into_boxed_slice());
        Ok(old.into_vec())
    }

    /// Re-insert a previously deleted row at its original id (transaction
    /// rollback path). The slot must currently be a tombstone.
    pub fn undelete(&mut self, id: RowId, row: Vec<Value>) -> Result<()> {
        let slot = self
            .rows
            .get_mut(id)
            .ok_or_else(|| Error::Invalid(format!("row {id} out of range")))?;
        if slot.is_some() {
            return Err(Error::Invalid(format!("row {id} is live; cannot undelete")));
        }
        for idx in &mut self.indexes {
            idx.insert(&row, id)?;
        }
        *slot = Some(row.into_boxed_slice());
        self.live += 1;
        Ok(())
    }

    /// Create and backfill an index over `columns`.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        columns: Vec<usize>,
        unique: bool,
        kind: IndexKind,
    ) -> Result<()> {
        self.create_index_with_parts(
            name,
            columns.into_iter().map(KeyPart::Column).collect(),
            unique,
            kind,
        )
    }

    /// Create and backfill an index over arbitrary key parts (plain columns
    /// or `JSON_VAL` extractions — functional indexes).
    pub fn create_index_with_parts(
        &mut self,
        name: impl Into<String>,
        parts: Vec<KeyPart>,
        unique: bool,
        kind: IndexKind,
    ) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(Error::Schema(format!("index '{name}' already exists")));
        }
        if parts.iter().any(|p| p.column() >= self.schema.arity()) {
            return Err(Error::Schema(format!(
                "index '{name}' references a column out of range"
            )));
        }
        let mut idx = Index::with_parts(name, parts, unique, kind);
        for (id, row) in self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(id, r)| r.as_deref().map(|row| (id, row)))
        {
            idx.insert(row, id)?;
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// Remove the index named `name`. Returns whether it existed. Used by
    /// transaction rollback to undo a journaled `CREATE INDEX`.
    pub fn drop_index(&mut self, name: &str) -> bool {
        let before = self.indexes.len();
        self.indexes.retain(|i| i.name != name);
        self.indexes.len() != before
    }

    /// Find an index whose key columns are exactly `columns` (order matters).
    pub fn index_on(&self, columns: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.columns == columns)
    }

    /// Find an index whose *first* key column is `column` and that can serve
    /// point lookups on a prefix. Used by the planner for single-column
    /// equality predicates.
    pub fn index_with_prefix(&self, column: usize) -> Option<&Index> {
        // Exact single-column index preferred; otherwise a composite whose
        // key starts with `column` can still narrow a B-tree range.
        self.indexes
            .iter()
            .find(|i| i.columns.len() == 1 && i.columns[0] == column)
            .or_else(|| {
                self.indexes
                    .iter()
                    .find(|i| i.columns.first() == Some(&column) && i.kind() == IndexKind::BTree)
            })
    }

    /// All indexes (for introspection / stats).
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Row ids matching `key` on the index named `index`.
    pub fn index_lookup(&self, index: &str, key: &IndexKey) -> Result<Vec<RowId>> {
        let idx = self
            .indexes
            .iter()
            .find(|i| i.name == index)
            .ok_or_else(|| Error::NotFound(format!("index '{index}'")))?;
        Ok(idx.lookup(key).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                Column {
                    name: "id".into(),
                    ty: ColumnType::Integer,
                },
                Column {
                    name: "v".into(),
                    ty: ColumnType::Any,
                },
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index("t_pk", vec![0], true, IndexKind::Hash)
            .unwrap();
        t
    }

    #[test]
    fn insert_get_iter() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::str("a")]).unwrap();
        let b = t.insert(vec![Value::Int(2), Value::str("b")]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap()[1], Value::str("a"));
        let ids: Vec<_> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, [a, b]);
    }

    #[test]
    fn delete_tombstones_and_indexes() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        let removed = t.delete(a).unwrap();
        assert_eq!(removed[0], Value::Int(1));
        assert_eq!(t.len(), 1);
        assert!(t.get(a).is_none());
        assert!(t.delete(a).is_err());
        // id 1 is reusable now via the unique index.
        t.insert(vec![Value::Int(1), Value::str("again")]).unwrap();
    }

    #[test]
    fn unique_violation_leaves_table_consistent() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        assert!(t.insert(vec![Value::Int(1), Value::Null]).is_err());
        assert_eq!(t.len(), 1);
        let key = IndexKey(vec![Value::Int(1)]);
        assert_eq!(t.index_lookup("t_pk", &key).unwrap().len(), 1);
    }

    #[test]
    fn update_moves_index_entries() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        t.update(a, vec![Value::Int(9), Value::str("y")]).unwrap();
        assert!(t
            .index_lookup("t_pk", &IndexKey(vec![Value::Int(1)]))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(9)]))
                .unwrap(),
            [a]
        );
    }

    #[test]
    fn update_unique_conflict_restores_old_state() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let b = t.insert(vec![Value::Int(2), Value::str("keep")]).unwrap();
        assert!(t.update(b, vec![Value::Int(1), Value::Null]).is_err());
        // b unchanged and still findable under its old key.
        assert_eq!(t.get(b).unwrap()[1], Value::str("keep"));
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(2)]))
                .unwrap(),
            [b]
        );
    }

    #[test]
    fn undelete_restores_row() {
        let mut t = table();
        let a = t.insert(vec![Value::Int(1), Value::str("x")]).unwrap();
        let row = t.delete(a).unwrap();
        t.undelete(a, row).unwrap();
        assert_eq!(t.get(a).unwrap()[0], Value::Int(1));
        assert_eq!(
            t.index_lookup("t_pk", &IndexKey(vec![Value::Int(1)]))
                .unwrap(),
            [a]
        );
    }

    #[test]
    fn backfilled_index() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Int(i % 3)]).unwrap();
        }
        t.create_index("t_v", vec![1], false, IndexKind::BTree)
            .unwrap();
        let ids = t
            .index_lookup("t_v", &IndexKey(vec![Value::Int(0)]))
            .unwrap();
        assert_eq!(ids.len(), 4); // 0, 3, 6, 9
        assert!(t
            .create_index("t_v", vec![1], false, IndexKind::Hash)
            .is_err());
    }
}
