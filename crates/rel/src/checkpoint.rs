//! Checkpoints: full-state snapshots that bound WAL replay.
//!
//! A snapshot serializes the complete catalog — every table's schema,
//! indexes, and row slab (tombstones included, so physical [`RowId`]s and
//! scan order survive byte-for-byte) — into a single checksummed,
//! length-prefixed file. It is written to a temp file, fsynced, and
//! atomically installed with a rename, then the WAL rotates to a fresh
//! segment. Recovery becomes snapshot-load + tail-segment replay: O(delta
//! since last checkpoint) instead of O(history).
//!
//! Snapshot generation `g` means "the state at the start of WAL segment
//! `g`": recovery loads the snapshot and replays segments `g, g+1, …` in
//! order. Crash-safety of the install protocol is exercised point-by-point
//! by `crates/rel/tests/crash_recovery.rs`.
//!
//! [`RowId`]: crate::index::RowId

use crate::error::{Error, Result};
use crate::index::{IndexKind, KeyPart};
use crate::io::Vfs;
use crate::schema::{Column, ColumnType, TableSchema};
use crate::storage::Table;
use crate::value::Value;
use crate::wal::{fletcher32, get_row, get_str, get_u32, get_u64, get_u8, put_row, put_str};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::{Path, PathBuf};

const MAGIC: &str = "SQLGSNAP";
// Version 2 added the MVCC commit clock to the header.
const VERSION: u32 = 2;

/// Snapshot file path for the log rooted at `base`.
pub fn snapshot_path(base: &Path) -> PathBuf {
    PathBuf::from(format!("{}.ckpt", base.display()))
}

/// Temp path the snapshot is staged at before the atomic rename.
pub fn snapshot_tmp_path(base: &Path) -> PathBuf {
    PathBuf::from(format!("{}.ckpt.tmp", base.display()))
}

/// What [`crate::Database::checkpoint`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Generation of the snapshot just installed (== the fresh WAL segment).
    pub gen: u64,
    /// Snapshot file size in bytes.
    pub bytes: u64,
    /// Tables serialized.
    pub tables: usize,
    /// Old WAL segments deleted after the rotation.
    pub retired_segments: usize,
}

/// What [`crate::Database::open`] found and did during recovery. Exposed
/// via [`crate::Database::recovery_report`] so callers (and tests) can
/// verify that recovery was bounded and observe truncation of corrupt or
/// commit-less WAL tails.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation of the snapshot loaded, if one existed.
    pub snapshot_gen: Option<u64>,
    /// Tables restored from the snapshot.
    pub snapshot_tables: usize,
    /// WAL segment files scanned (snapshot generation onward).
    pub segments_scanned: usize,
    /// Committed transactions replayed from those segments.
    pub commits_replayed: usize,
    /// Operation records inside those transactions.
    pub records_replayed: usize,
    /// Bytes discarded past the last valid commit across all segments
    /// (torn tails, corrupt records, commit-less batches).
    pub bytes_truncated: u64,
    /// Intact records discarded because no commit marker followed them.
    pub dangling_records: usize,
}

/// A deserialized snapshot: the generation it anchors plus fully rebuilt
/// tables (slabs installed, indexes recreated and backfilled).
#[derive(Debug)]
pub struct Snapshot {
    /// Replay WAL segments with generation >= this.
    pub gen: u64,
    /// MVCC commit clock at the moment the snapshot was cut; recovery
    /// restores the [`crate::txn::TxnManager`] clock to at least this.
    pub clock: u64,
    /// Rebuilt tables, in serialized order.
    pub tables: Vec<Table>,
    /// Snapshot file size.
    pub bytes: u64,
}

fn put_record(out: &mut BytesMut, payload: &BytesMut) {
    out.put_u32(payload.len() as u32);
    out.put_u32(fletcher32(payload));
    out.extend_from_slice(payload);
}

fn next_record(buf: &mut Bytes) -> Result<Bytes> {
    if buf.remaining() < 8 {
        return Err(Error::Wal("snapshot: truncated record header".into()));
    }
    let len = (&buf[0..4]).get_u32() as usize;
    let checksum = (&buf[4..8]).get_u32();
    if buf.remaining() < 8 + len {
        return Err(Error::Wal("snapshot: truncated record body".into()));
    }
    let payload = buf.slice(8..8 + len);
    if fletcher32(&payload) != checksum {
        return Err(Error::Wal("snapshot: checksum mismatch".into()));
    }
    buf.advance(8 + len);
    Ok(payload)
}

fn column_type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Integer => 0,
        ColumnType::Double => 1,
        ColumnType::Text => 2,
        ColumnType::Json => 3,
        ColumnType::Boolean => 4,
        ColumnType::Any => 5,
    }
}

fn column_type_from(tag: u8) -> Result<ColumnType> {
    Ok(match tag {
        0 => ColumnType::Integer,
        1 => ColumnType::Double,
        2 => ColumnType::Text,
        3 => ColumnType::Json,
        4 => ColumnType::Boolean,
        5 => ColumnType::Any,
        other => return Err(Error::Wal(format!("snapshot: bad column type {other}"))),
    })
}

fn encode_table(table: &Table) -> BytesMut {
    let mut p = BytesMut::new();
    put_str(&mut p, &table.schema.name);
    p.put_u32(table.schema.columns.len() as u32);
    for col in &table.schema.columns {
        put_str(&mut p, &col.name);
        p.put_u8(column_type_tag(col.ty));
    }
    let indexes = table.indexes();
    p.put_u32(indexes.len() as u32);
    for idx in indexes {
        put_str(&mut p, &idx.name);
        p.put_u8(idx.unique as u8);
        p.put_u8(match idx.kind() {
            IndexKind::Hash => 0,
            IndexKind::BTree => 1,
        });
        p.put_u32(idx.parts.len() as u32);
        for part in &idx.parts {
            match part {
                KeyPart::Column(c) => {
                    p.put_u8(0);
                    p.put_u32(*c as u32);
                }
                KeyPart::JsonKey(c, key) => {
                    p.put_u8(1);
                    p.put_u32(*c as u32);
                    put_str(&mut p, key);
                }
            }
        }
    }
    let slots = table.slots();
    p.put_u64_le(slots.len() as u64);
    // Serialize each chain's committed-live version; a chain holding only
    // provisional (uncommitted) versions snapshots as a tombstone — its
    // transaction either commits into the fresh WAL segment or vanishes.
    let latest = crate::txn::Snapshot::latest();
    for slot in slots {
        match slot.visible(latest) {
            None => p.put_u8(0),
            Some(row) => {
                p.put_u8(1);
                put_row(&mut p, row);
            }
        }
    }
    p
}

fn decode_table(payload: Bytes) -> Result<Table> {
    let mut buf = payload;
    let name = get_str(&mut buf)?;
    let ncols = get_u32(&mut buf)? as usize;
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let cname = get_str(&mut buf)?;
        let ty = column_type_from(get_u8(&mut buf)?)?;
        columns.push(Column { name: cname, ty });
    }
    let schema = TableSchema::new(name, columns)?;
    struct IndexMeta {
        name: String,
        unique: bool,
        kind: IndexKind,
        parts: Vec<KeyPart>,
    }
    let nindexes = get_u32(&mut buf)? as usize;
    let mut index_meta = Vec::with_capacity(nindexes);
    for _ in 0..nindexes {
        let iname = get_str(&mut buf)?;
        let unique = get_u8(&mut buf)? != 0;
        let kind = match get_u8(&mut buf)? {
            0 => IndexKind::Hash,
            1 => IndexKind::BTree,
            other => return Err(Error::Wal(format!("snapshot: bad index kind {other}"))),
        };
        let nparts = get_u32(&mut buf)? as usize;
        let mut parts = Vec::with_capacity(nparts);
        for _ in 0..nparts {
            let tag = get_u8(&mut buf)?;
            let col = get_u32(&mut buf)? as usize;
            parts.push(match tag {
                0 => KeyPart::Column(col),
                1 => KeyPart::JsonKey(col, get_str(&mut buf)?),
                other => return Err(Error::Wal(format!("snapshot: bad key part {other}"))),
            });
        }
        index_meta.push(IndexMeta {
            name: iname,
            unique,
            kind,
            parts,
        });
    }
    let nslots = get_u64(&mut buf)? as usize;
    let mut slots: Vec<Option<Vec<Value>>> = Vec::with_capacity(nslots.min(1 << 20));
    for _ in 0..nslots {
        match get_u8(&mut buf)? {
            0 => slots.push(None),
            1 => slots.push(Some(get_row(&mut buf)?)),
            other => return Err(Error::Wal(format!("snapshot: bad slot tag {other}"))),
        }
    }
    let mut table = Table::from_slots(schema, slots)?;
    for meta in index_meta {
        table.create_index_with_parts(meta.name, meta.parts, meta.unique, meta.kind)?;
    }
    Ok(table)
}

/// Serialize `tables` into snapshot bytes anchored at generation `gen`,
/// with the MVCC commit clock standing at `clock`.
pub(crate) fn encode_snapshot(gen: u64, clock: u64, tables: &[&Table]) -> Vec<u8> {
    let mut out = BytesMut::new();
    let mut header = BytesMut::new();
    put_str(&mut header, MAGIC);
    header.put_u32(VERSION);
    header.put_u64_le(gen);
    header.put_u64_le(clock);
    header.put_u32(tables.len() as u32);
    put_record(&mut out, &header);
    for table in tables {
        let payload = encode_table(table);
        put_record(&mut out, &payload);
    }
    let mut footer = BytesMut::new();
    put_str(&mut footer, "END");
    put_record(&mut out, &footer);
    out.to_vec()
}

/// Stage snapshot bytes at the temp path, fsync, and atomically install
/// them at the snapshot path. Returns the byte size written.
pub(crate) fn install_snapshot(vfs: &dyn Vfs, base: &Path, bytes: &[u8]) -> Result<u64> {
    let tmp = snapshot_tmp_path(base);
    let dst = snapshot_path(base);
    let mut file = vfs
        .create(&tmp)
        .map_err(|e| Error::Wal(format!("checkpoint: create {}: {e}", tmp.display())))?;
    file.write_all(bytes)
        .map_err(|e| Error::Wal(format!("checkpoint: write: {e}")))?;
    file.sync()
        .map_err(|e| Error::Wal(format!("checkpoint: fsync: {e}")))?;
    drop(file);
    vfs.rename(&tmp, &dst)
        .map_err(|e| Error::Wal(format!("checkpoint: install rename: {e}")))?;
    Ok(bytes.len() as u64)
}

/// Load the snapshot for the log rooted at `base`, if one is installed.
///
/// A missing snapshot returns `Ok(None)` (cold start / pre-checkpoint
/// database). A present-but-corrupt snapshot is an error: the WAL segments
/// it anchors are not a full history, so silently ignoring it would
/// resurrect an old state.
pub(crate) fn load_snapshot(vfs: &dyn Vfs, base: &Path) -> Result<Option<Snapshot>> {
    let path = snapshot_path(base);
    let data = match vfs.read(&path) {
        Ok(Some(d)) => d,
        Ok(None) => return Ok(None),
        Err(e) => {
            return Err(Error::Wal(format!(
                "snapshot: read {}: {e}",
                path.display()
            )))
        }
    };
    let bytes = data.len() as u64;
    let mut buf = Bytes::from(data);
    let mut header = next_record(&mut buf)?;
    if get_str(&mut header)? != MAGIC {
        return Err(Error::Wal("snapshot: bad magic".into()));
    }
    let version = get_u32(&mut header)?;
    if version != VERSION {
        return Err(Error::Wal(format!(
            "snapshot: unsupported version {version}"
        )));
    }
    let gen = get_u64(&mut header)?;
    let clock = get_u64(&mut header)?;
    let ntables = get_u32(&mut header)? as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        tables.push(decode_table(next_record(&mut buf)?)?);
    }
    let mut footer = next_record(&mut buf)?;
    if get_str(&mut footer)? != "END" {
        return Err(Error::Wal("snapshot: missing footer".into()));
    }
    Ok(Some(Snapshot {
        gen,
        clock,
        tables,
        bytes,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SimFs;
    use crate::value::Value;

    fn sample_table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                Column {
                    name: "id".into(),
                    ty: ColumnType::Integer,
                },
                Column {
                    name: "doc".into(),
                    ty: ColumnType::Json,
                },
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index("t_pk", vec![0], true, IndexKind::Hash)
            .unwrap();
        t.create_index_with_parts(
            "t_name",
            vec![KeyPart::JsonKey(1, "name".into())],
            false,
            IndexKind::BTree,
        )
        .unwrap();
        for i in 0..5 {
            t.insert(vec![
                Value::Int(i),
                Value::json(sqlgraph_json::parse(&format!(r#"{{"name":"n{i}"}}"#)).unwrap()),
            ])
            .unwrap();
        }
        t.delete(2).unwrap(); // leave a tombstone in the slab
        t
    }

    #[test]
    fn snapshot_roundtrip_preserves_slab_and_indexes() {
        let t = sample_table();
        let fs = SimFs::new();
        let base = Path::new("/db.wal");
        let bytes = encode_snapshot(7, 42, &[&t]);
        install_snapshot(&fs, base, &bytes).unwrap();
        let snap = load_snapshot(&fs, base).unwrap().unwrap();
        assert_eq!(snap.gen, 7);
        assert_eq!(snap.clock, 42, "commit clock survives the round trip");
        assert_eq!(snap.tables.len(), 1);
        let r = &snap.tables[0];
        assert_eq!(r.schema, t.schema);
        assert_eq!(r.len(), t.len());
        assert_eq!(r.slab_len(), t.slab_len());
        assert!(r.get(2).is_none(), "tombstone preserved");
        let ids: Vec<_> = r.iter().map(|(id, _)| id).collect();
        let orig: Vec<_> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, orig, "physical row ids preserved");
        assert_eq!(r.indexes().len(), 2);
        let hits = r
            .index_lookup("t_name", &crate::index::IndexKey(vec![Value::str("n3")]))
            .unwrap();
        assert_eq!(hits, [3], "functional index rebuilt and backfilled");
    }

    #[test]
    fn missing_snapshot_is_none_corrupt_is_error() {
        let fs = SimFs::new();
        let base = Path::new("/db.wal");
        assert!(load_snapshot(&fs, base).unwrap().is_none());
        let t = sample_table();
        let mut bytes = encode_snapshot(1, 0, &[&t]);
        install_snapshot(&fs, base, &bytes).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs.install(&snapshot_path(base), bytes);
        assert!(load_snapshot(&fs, base).is_err());
    }
}
