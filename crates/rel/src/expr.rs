//! Compiled (column-resolved) expressions and their evaluator.
//!
//! The SQL parser produces name-based expressions (`crate::sql::ast::Expr`);
//! the planner resolves names against the FROM scope and emits this compact
//! form where column references are offsets into the executor's flattened
//! row. Evaluation is row-at-a-time.

use crate::error::{Error, Result};
use crate::hasher::FxHashSet;
use crate::value::{CastType, Value};
use sqlgraph_json::Json;
use std::cmp::Ordering;
use std::sync::Arc;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean NOT (three-valued: NOT NULL is NULL).
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer / integer stays integral; division by zero is NULL).
    Div,
    /// Modulo.
    Mod,
    /// Equality (`=`).
    Eq,
    /// Inequality (`<>` / `!=`).
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND (three-valued).
    And,
    /// Logical OR (three-valued).
    Or,
    /// `||`: string concatenation, or array append/concatenation.
    Concat,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `JSON_VAL(doc, key)`: extract a scalar from a JSON document.
    JsonVal,
    /// `COALESCE(a, b, ...)`: first non-NULL argument.
    Coalesce,
    /// `LENGTH(s)`: string length in characters, or array length.
    Length,
    /// `LOWER(s)`.
    Lower,
    /// `UPPER(s)`.
    Upper,
    /// `SUBSTR(s, start1, len)`: 1-based start, like SQL.
    Substr,
    /// `ABS(n)`.
    Abs,
    /// `ARRAY(a, b, ...)`: construct an array value.
    Array,
    /// `IS_SIMPLE_PATH(arr)`: 1 if the array has no repeated elements —
    /// the UDF backing Gremlin's `simplePath()` (paper §4.3, filter pipes).
    IsSimplePath,
    /// `JSON_KEYS(doc)`: array of the document's top-level keys.
    JsonKeys,
    /// `ELEMENT_AT(arr, i)`: 0-based array access (NULL out of range).
    ElementAt,
    /// `ARRAY_APPEND(arr, v)`: append `v` as a single element (unlike `||`,
    /// which concatenates when `v` is itself an array). This is the path
    /// accumulator in the Gremlin translation.
    ArrayAppend,
}

impl Func {
    /// Resolve a function name (case-insensitive).
    pub fn parse(name: &str) -> Option<Func> {
        Some(match name.to_ascii_uppercase().as_str() {
            "JSON_VAL" => Func::JsonVal,
            "COALESCE" => Func::Coalesce,
            "LENGTH" => Func::Length,
            "LOWER" => Func::Lower,
            "UPPER" => Func::Upper,
            "SUBSTR" | "SUBSTRING" => Func::Substr,
            "ABS" => Func::Abs,
            "ARRAY" => Func::Array,
            "IS_SIMPLE_PATH" | "ISSIMPLEPATH" => Func::IsSimplePath,
            "JSON_KEYS" => Func::JsonKeys,
            "ELEMENT_AT" => Func::ElementAt,
            "ARRAY_APPEND" => Func::ArrayAppend,
            _ => return None,
        })
    }
}

/// A compiled expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Literal constant.
    Const(Value),
    /// Column offset into the executor row.
    Col(usize),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `e IS NULL` / `e IS NOT NULL` (negated = true).
    IsNull(Box<Expr>, bool),
    /// `e LIKE pattern` (pattern evaluated per row; usually constant).
    Like {
        /// Scrutinee.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: Box<Expr>,
        /// True for NOT LIKE.
        negated: bool,
    },
    /// `e IN (v1, v2, ...)` against a precomputed set (list literals and
    /// materialized subqueries both compile to this).
    InSet {
        /// Scrutinee.
        expr: Box<Expr>,
        /// The membership set (canonical Value equality).
        set: Arc<FxHashSet<Value>>,
        /// True for NOT IN.
        negated: bool,
    },
    /// Scalar function call.
    Call(Func, Vec<Expr>),
    /// `CAST(e AS T)`.
    Cast(Box<Expr>, CastType),
    /// Array subscript `e[i]`, 0-based.
    Subscript(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluate against a flattened row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::Invalid(format!("column offset {i} out of range"))),
            Expr::Unary(op, e) => eval_unary(*op, e.eval(row)?),
            Expr::Binary(op, l, r) => {
                // Short-circuit AND/OR before evaluating the right side.
                match op {
                    BinaryOp::And | BinaryOp::Or => eval_logic(*op, l, r, row),
                    _ => eval_binary(*op, l.eval(row)?, r.eval(row)?),
                }
            }
            Expr::IsNull(e, negated) => {
                let v = e.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                match (v, p) {
                    (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                    (Value::Str(s), Value::Str(p)) => {
                        Ok(Value::Bool(like_match(&s, &p) != *negated))
                    }
                    (v, p) => Err(Error::Type(format!(
                        "LIKE requires strings, got {} LIKE {}",
                        v.type_name(),
                        p.type_name()
                    ))),
                }
            }
            Expr::InSet { expr, set, negated } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let found = set.contains(&v);
                // SQL subtlety: `x NOT IN (set containing NULL)` is NULL
                // when x is absent; our sets never contain NULL (filtered at
                // build time), so plain boolean logic is correct.
                Ok(Value::Bool(found != *negated))
            }
            Expr::Call(func, args) => eval_call(*func, args, row),
            Expr::Cast(e, ty) => e.eval(row)?.cast(*ty),
            Expr::Subscript(e, i) => {
                let v = e.eval(row)?;
                let idx = i.eval(row)?;
                match (&v, idx.as_int()) {
                    (Value::Null, _) => Ok(Value::Null),
                    (Value::Array(a), Some(i)) if i >= 0 => {
                        Ok(a.get(i as usize).cloned().unwrap_or(Value::Null))
                    }
                    (Value::Array(_), _) => Ok(Value::Null),
                    _ => Err(Error::Type(format!("cannot subscript a {}", v.type_name()))),
                }
            }
        }
    }

    /// Evaluate as a WHERE predicate: NULL (unknown) is false.
    pub fn eval_bool(&self, row: &[Value]) -> Result<bool> {
        Ok(matches!(self.eval(row)?, Value::Bool(true)))
    }

    /// Visit all column offsets referenced by the expression.
    pub fn visit_columns(&self, f: &mut impl FnMut(usize)) {
        match self {
            Expr::Const(_) => {}
            Expr::Col(i) => f(*i),
            Expr::Unary(_, e) | Expr::IsNull(e, _) | Expr::Cast(e, _) => e.visit_columns(f),
            Expr::Binary(_, l, r) | Expr::Subscript(l, r) => {
                l.visit_columns(f);
                r.visit_columns(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.visit_columns(f);
                pattern.visit_columns(f);
            }
            Expr::InSet { expr, .. } => expr.visit_columns(f),
            Expr::Call(_, args) => {
                for a in args {
                    a.visit_columns(f);
                }
            }
        }
    }

    /// Rewrite column offsets through `map` (planner uses this to shift
    /// expressions onto a join's combined row layout).
    pub fn shift_columns(&mut self, delta: usize) {
        match self {
            Expr::Const(_) => {}
            Expr::Col(i) => *i += delta,
            Expr::Unary(_, e) | Expr::IsNull(e, _) | Expr::Cast(e, _) => e.shift_columns(delta),
            Expr::Binary(_, l, r) | Expr::Subscript(l, r) => {
                l.shift_columns(delta);
                r.shift_columns(delta);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.shift_columns(delta);
                pattern.shift_columns(delta);
            }
            Expr::InSet { expr, .. } => expr.shift_columns(delta),
            Expr::Call(_, args) => {
                for a in args {
                    a.shift_columns(delta);
                }
            }
        }
    }

    /// Rewrite every column offset through `f` — used to re-base a compiled
    /// expression onto a different row layout (e.g. pushing a scan-local
    /// predicate from the combined join layout down onto the bare table row).
    pub fn map_columns(&mut self, f: &mut impl FnMut(usize) -> usize) {
        match self {
            Expr::Const(_) => {}
            Expr::Col(i) => *i = f(*i),
            Expr::Unary(_, e) | Expr::IsNull(e, _) | Expr::Cast(e, _) => e.map_columns(f),
            Expr::Binary(_, l, r) | Expr::Subscript(l, r) => {
                l.map_columns(f);
                r.map_columns(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.map_columns(f);
                pattern.map_columns(f);
            }
            Expr::InSet { expr, .. } => expr.map_columns(f),
            Expr::Call(_, args) => {
                for a in args {
                    a.map_columns(f);
                }
            }
        }
    }
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
            Value::Double(f) => Ok(Value::Double(-f)),
            other => Err(Error::Type(format!("cannot negate {}", other.type_name()))),
        },
        UnaryOp::Not => match v {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(Error::Type(format!(
                "NOT requires a boolean, got {}",
                other.type_name()
            ))),
        },
    }
}

fn eval_logic(op: BinaryOp, l: &Expr, r: &Expr, row: &[Value]) -> Result<Value> {
    let lv = l.eval(row)?;
    let lb = match &lv {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        other => {
            return Err(Error::Type(format!(
                "logical operand must be boolean, got {}",
                other.type_name()
            )))
        }
    };
    // Three-valued short circuit.
    match (op, lb) {
        (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
        (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
        _ => {}
    }
    let rv = r.eval(row)?;
    let rb = match &rv {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        other => {
            return Err(Error::Type(format!(
                "logical operand must be boolean, got {}",
                other.type_name()
            )))
        }
    };
    let out = match op {
        BinaryOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinaryOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!("eval_logic only handles AND/OR"),
    };
    Ok(out.map(Value::Bool).unwrap_or(Value::Null))
}

fn eval_binary(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        Eq | Ne | Lt | Le | Gt | Ge => {
            let cmp = l.sql_cmp(&r);
            Ok(match cmp {
                None => Value::Null,
                Some(o) => Value::Bool(match op {
                    Eq => o == Ordering::Equal,
                    Ne => o != Ordering::Equal,
                    Lt => o == Ordering::Less,
                    Le => o != Ordering::Greater,
                    Gt => o == Ordering::Greater,
                    Ge => o != Ordering::Less,
                    _ => unreachable!(),
                }),
            })
        }
        Add | Sub | Mul | Div | Mod => arith(op, l, r),
        Concat => concat(l, r),
        And | Or => unreachable!("handled in eval_logic"),
    }
}

fn arith(op: BinaryOp, l: Value, r: Value) -> Result<Value> {
    use BinaryOp::*;
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => {
            let (a, b) = (*a, *b);
            Ok(match op {
                Add => Value::Int(a.wrapping_add(b)),
                Sub => Value::Int(a.wrapping_sub(b)),
                Mul => Value::Int(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.wrapping_div(b))
                    }
                }
                Mod => {
                    if b == 0 {
                        Value::Null
                    } else {
                        Value::Int(a.wrapping_rem(b))
                    }
                }
                _ => unreachable!(),
            })
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(Error::Type(format!(
                        "arithmetic on {} and {}",
                        l.type_name(),
                        r.type_name()
                    )))
                }
            };
            Ok(Value::Double(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a % b,
                _ => unreachable!(),
            }))
        }
    }
}

fn concat(l: Value, r: Value) -> Result<Value> {
    match (l, r) {
        (Value::Null, v) | (v, Value::Null) if !v.is_null() => Ok(Value::Null),
        (Value::Null, Value::Null) => Ok(Value::Null),
        // Array || Array = concatenation; Array || scalar = append.
        (Value::Array(a), Value::Array(b)) => {
            let mut out = Vec::with_capacity(a.len() + b.len());
            out.extend(a.iter().cloned());
            out.extend(b.iter().cloned());
            Ok(Value::array(out))
        }
        (Value::Array(a), v) => {
            let mut out = Vec::with_capacity(a.len() + 1);
            out.extend(a.iter().cloned());
            out.push(v);
            Ok(Value::array(out))
        }
        (v, Value::Array(b)) => {
            let mut out = Vec::with_capacity(b.len() + 1);
            out.push(v);
            out.extend(b.iter().cloned());
            Ok(Value::array(out))
        }
        (l, r) => {
            let mut s = l.to_string();
            s.push_str(&r.to_string());
            Ok(Value::str(s))
        }
    }
}

/// Convert a JSON scalar into an engine value; containers stay JSON.
pub fn json_to_value(j: &Json) -> Value {
    match j {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Num(n) => match n.as_i64() {
            Some(i) if n.is_int() => Value::Int(i),
            _ => Value::Double(n.as_f64()),
        },
        Json::Str(s) => Value::str(s.as_str()),
        other => Value::json(other.clone()),
    }
}

fn eval_call(func: Func, args: &[Expr], row: &[Value]) -> Result<Value> {
    let need = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(Error::Invalid(format!(
                "{func:?} expects {n} arguments, got {}",
                args.len()
            )))
        }
    };
    match func {
        Func::JsonVal => {
            need(2)?;
            let doc = args[0].eval(row)?;
            let key = args[1].eval(row)?;
            match (&doc, &key) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Json(j), Value::Str(k)) => {
                    Ok(j.get(k).map(json_to_value).unwrap_or(Value::Null))
                }
                _ => Err(Error::Type(format!(
                    "JSON_VAL requires (JSON, TEXT), got ({}, {})",
                    doc.type_name(),
                    key.type_name()
                ))),
            }
        }
        Func::Coalesce => {
            for a in args {
                let v = a.eval(row)?;
                if !v.is_null() {
                    return Ok(v);
                }
            }
            Ok(Value::Null)
        }
        Func::Length => {
            need(1)?;
            match args[0].eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                Value::Array(a) => Ok(Value::Int(a.len() as i64)),
                other => Err(Error::Type(format!("LENGTH of {}", other.type_name()))),
            }
        }
        Func::Lower | Func::Upper => {
            need(1)?;
            match args[0].eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::str(if func == Func::Lower {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                })),
                other => Err(Error::Type(format!("{func:?} of {}", other.type_name()))),
            }
        }
        Func::Substr => {
            need(3)?;
            let s = args[0].eval(row)?;
            let start = args[1].eval(row)?;
            let len = args[2].eval(row)?;
            match (s, start.as_int(), len.as_int()) {
                (Value::Null, _, _) => Ok(Value::Null),
                (Value::Str(s), Some(start), Some(len)) if start >= 1 && len >= 0 => {
                    let out: String = s
                        .chars()
                        .skip(start as usize - 1)
                        .take(len as usize)
                        .collect();
                    Ok(Value::str(out))
                }
                _ => Err(Error::Type(
                    "SUBSTR requires (TEXT, start>=1, len>=0)".into(),
                )),
            }
        }
        Func::Abs => {
            need(1)?;
            match args[0].eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
                Value::Double(f) => Ok(Value::Double(f.abs())),
                other => Err(Error::Type(format!("ABS of {}", other.type_name()))),
            }
        }
        Func::Array => {
            let mut out = Vec::with_capacity(args.len());
            for a in args {
                out.push(a.eval(row)?);
            }
            Ok(Value::array(out))
        }
        Func::IsSimplePath => {
            need(1)?;
            match args[0].eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Array(a) => {
                    let mut seen = FxHashSet::default();
                    let simple = a.iter().all(|v| seen.insert(v.clone()));
                    Ok(Value::Int(simple as i64))
                }
                other => Err(Error::Type(format!(
                    "IS_SIMPLE_PATH of {}",
                    other.type_name()
                ))),
            }
        }
        Func::JsonKeys => {
            need(1)?;
            match args[0].eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Json(j) => match j.as_object() {
                    Some(o) => Ok(Value::array(o.keys().map(Value::str).collect())),
                    None => Ok(Value::array(Vec::new())),
                },
                other => Err(Error::Type(format!("JSON_KEYS of {}", other.type_name()))),
            }
        }
        Func::ElementAt => {
            need(2)?;
            Expr::Subscript(Box::new(args[0].clone()), Box::new(args[1].clone())).eval(row)
        }
        Func::ArrayAppend => {
            need(2)?;
            let arr = args[0].eval(row)?;
            let item = args[1].eval(row)?;
            match arr {
                Value::Null => Ok(Value::Null),
                Value::Array(a) => {
                    let mut out = Vec::with_capacity(a.len() + 1);
                    out.extend(a.iter().cloned());
                    out.push(item);
                    Ok(Value::array(out))
                }
                other => Err(Error::Type(format!(
                    "ARRAY_APPEND requires an array, got {}",
                    other.type_name()
                ))),
            }
        }
    }
}

/// SQL LIKE matcher: `%` = any run, `_` = any single character.
/// Works on characters, not bytes, so multi-byte text is safe.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Iterative two-pointer algorithm with backtracking to the last `%`.
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            pi = star_p + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    fn bin(op: BinaryOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    #[test]
    fn arithmetic() {
        let row = [];
        assert_eq!(
            bin(BinaryOp::Add, c(2i64), c(3i64)).eval(&row).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            bin(BinaryOp::Div, c(7i64), c(2i64)).eval(&row).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            bin(BinaryOp::Div, c(7i64), c(0i64)).eval(&row).unwrap(),
            Value::Null
        );
        assert_eq!(
            bin(BinaryOp::Mul, c(2i64), c(1.5f64)).eval(&row).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(
            bin(BinaryOp::Add, c(1i64), Expr::Const(Value::Null))
                .eval(&row)
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn three_valued_logic() {
        let row = [];
        let null = || Expr::Const(Value::Null);
        let t = || c(true);
        let f = || c(false);
        assert_eq!(
            bin(BinaryOp::And, f(), null()).eval(&row).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            bin(BinaryOp::And, t(), null()).eval(&row).unwrap(),
            Value::Null
        );
        assert_eq!(
            bin(BinaryOp::Or, t(), null()).eval(&row).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            bin(BinaryOp::Or, f(), null()).eval(&row).unwrap(),
            Value::Null
        );
        assert_eq!(
            Expr::Unary(UnaryOp::Not, Box::new(null()))
                .eval(&row)
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn short_circuit_avoids_rhs_errors() {
        // false AND <type error> must not error.
        let row = [];
        let bad = bin(BinaryOp::Add, c(true), c(1i64));
        assert_eq!(
            bin(BinaryOp::And, c(false), bad).eval(&row).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn comparisons_with_nulls() {
        let row = [];
        assert_eq!(
            bin(BinaryOp::Eq, c(1i64), Expr::Const(Value::Null))
                .eval(&row)
                .unwrap(),
            Value::Null
        );
        assert!(!bin(BinaryOp::Eq, c(1i64), Expr::Const(Value::Null))
            .eval_bool(&row)
            .unwrap());
        assert_eq!(
            bin(BinaryOp::Le, c(1i64), c(1.0f64)).eval(&row).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("", "%"));
        assert!(!like_match("hello", "h_lo"));
        assert!(!like_match("hello", "hello_"));
        assert!(like_match("abcabc", "%abc"));
        assert!(like_match("résumé", "r_sum_"));
        assert!(like_match("Montreal Carabins@en", "%@en"));
    }

    #[test]
    fn json_val_extraction() {
        let doc = sqlgraph_json::parse(r#"{"name":"marko","age":29,"w":0.5,"ok":true,"tags":[1]}"#)
            .unwrap();
        let row = [Value::json(doc)];
        let jv = |key: &str| {
            Expr::Call(Func::JsonVal, vec![Expr::Col(0), c(key)])
                .eval(&row)
                .unwrap()
        };
        assert_eq!(jv("name"), Value::str("marko"));
        assert_eq!(jv("age"), Value::Int(29));
        assert_eq!(jv("w"), Value::Double(0.5));
        assert_eq!(jv("ok"), Value::Bool(true));
        assert_eq!(jv("missing"), Value::Null);
        assert!(matches!(jv("tags"), Value::Json(_)));
    }

    #[test]
    fn array_concat_and_subscript() {
        let row = [];
        let arr = bin(
            BinaryOp::Concat,
            Expr::Call(Func::Array, vec![c(1i64)]),
            c(2i64),
        );
        let v = arr.eval(&row).unwrap();
        assert_eq!(v, Value::array(vec![Value::Int(1), Value::Int(2)]));
        let sub = Expr::Subscript(Box::new(Expr::Const(v)), Box::new(c(0i64)));
        assert_eq!(sub.eval(&row).unwrap(), Value::Int(1));
    }

    #[test]
    fn simple_path_udf() {
        let row = [];
        let mk = |items: Vec<i64>| {
            Expr::Call(
                Func::IsSimplePath,
                vec![Expr::Const(Value::array(
                    items.into_iter().map(Value::Int).collect(),
                ))],
            )
        };
        assert_eq!(mk(vec![1, 2, 3]).eval(&row).unwrap(), Value::Int(1));
        assert_eq!(mk(vec![1, 2, 1]).eval(&row).unwrap(), Value::Int(0));
    }

    #[test]
    fn string_functions() {
        let row = [];
        assert_eq!(
            Expr::Call(Func::Substr, vec![c("hello"), c(2i64), c(3i64)])
                .eval(&row)
                .unwrap(),
            Value::str("ell")
        );
        assert_eq!(
            Expr::Call(Func::Lower, vec![c("AbC")]).eval(&row).unwrap(),
            Value::str("abc")
        );
        assert_eq!(
            Expr::Call(Func::Length, vec![c("héllo")])
                .eval(&row)
                .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            Expr::Call(Func::Coalesce, vec![Expr::Const(Value::Null), c(7i64)])
                .eval(&row)
                .unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn in_set() {
        let row = [];
        let mut set = FxHashSet::default();
        set.insert(Value::Int(1));
        set.insert(Value::str("a"));
        let e = Expr::InSet {
            expr: Box::new(c(1i64)),
            set: Arc::new(set.clone()),
            negated: false,
        };
        assert_eq!(e.eval(&row).unwrap(), Value::Bool(true));
        let e2 = Expr::InSet {
            expr: Box::new(c(2i64)),
            set: Arc::new(set),
            negated: true,
        };
        assert_eq!(e2.eval(&row).unwrap(), Value::Bool(true));
    }
}
