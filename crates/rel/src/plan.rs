//! Physical plan IR: the planning half of the former monolithic executor.
//!
//! [`plan_from`] turns a FROM list + WHERE clause into a [`FromPlan`] — an
//! explicit, fully-decided physical operator tree. Every decision the old
//! interleaved executor made mid-flight lives here now: join order (the
//! cost-based [`plan_join_order`]), access-path selection per table
//! ([`Access`]: index probe, point, range, or full scan), predicate
//! pushdown (scan-local filters), hash-key extraction ([`Attach::Hash`]),
//! and projection pruning ([`Needs`]). The executor (`exec::exec_from`)
//! consumes the IR without making any planning choices of its own, and
//! EXPLAIN renders the same tree that runs.
//!
//! The planning pass mirrors the retired in-line planner *decision for
//! decision* — the same conjunct-retirement order, the same compile-attempt
//! semantics (a conjunct that fails to compile against the current scope is
//! simply retried after the next unit extends the scope), the same
//! inclusive-range + residual-filter treatment of B-tree bounds — so planned
//! results are byte-identical to the seed engine's.

use crate::error::{Error, Result};
use crate::exec::{
    compile_expr, filter_rows, run_join_tree, run_select, Env, Relation, Scope, TableFunc,
};
use crate::expr::{BinaryOp, Expr};
use crate::hasher::{FxHashMap, FxHashSet};
use crate::sql::ast;
use crate::value::Value;

// ---------------------------------------------------------------------------
// The physical plan IR
// ---------------------------------------------------------------------------

/// A fully-planned FROM pipeline: an ordered list of attach steps, the final
/// name-resolution scope (restored to textual order), and residual filters
/// that run after the last attach.
pub(crate) struct FromPlan {
    /// Attach steps in execution order (post join-reorder).
    pub(crate) steps: Vec<Step>,
    /// Final scope, entries in textual order (offsets point at the physical
    /// row layout, which follows execution order).
    pub(crate) scope: Scope,
    /// Conjuncts that resolve only against the full scope, compiled, in
    /// original conjunct order.
    pub(crate) residual: Vec<Expr>,
}

/// One unit attachment: produce the unit's rows ([`StepKind`]) and combine
/// them with the rows accumulated so far ([`Attach`]).
pub(crate) struct Step {
    /// Display label (alias, or `a+b` for join-tree units).
    pub(crate) label: String,
    /// Planner's estimated cumulative cardinality after this step.
    pub(crate) est: Option<f64>,
    pub(crate) kind: StepKind,
    pub(crate) attach: Attach,
    /// Ready conjuncts applied to the combined rows right after the attach
    /// (combined layout), in conjunct order.
    pub(crate) after: Vec<Expr>,
    /// Execution-time observations, filled by the executor and read by the
    /// EXPLAIN renderer.
    pub(crate) exec: StepExec,
}

/// Cardinalities and DOPs observed while executing a [`Step`].
#[derive(Debug, Default, Clone)]
pub(crate) struct StepExec {
    /// Combined rows after the attach and `after` filters.
    pub(crate) actual: Option<usize>,
    /// Rows seen by the scan (live table rows for full scans, matched rows
    /// for range scans).
    pub(crate) scan_rows: Option<usize>,
    /// Morsel DOP used by a full scan.
    pub(crate) scan_dop: Option<usize>,
    /// Per-pushed-filter (rows before, rows after). Full scans fuse all
    /// locals into one entry.
    pub(crate) local_counts: Vec<(usize, usize)>,
    /// Hash-join build rows, or cross-join right-side rows.
    pub(crate) join_rows: Option<usize>,
    /// DOP used by the hash/cross join.
    pub(crate) join_dop: Option<usize>,
    /// Distinct probe groups in the CSR entry a csr scan went through.
    pub(crate) csr_groups: Option<usize>,
    /// Whether a csr step emitted factorized lists (`true`) or had to
    /// flatten into rows (`false`). `None` for non-csr steps.
    pub(crate) list_out: Option<bool>,
}

/// How a step produces its unit rows.
pub(crate) enum StepKind {
    /// Base-table scan (pruned to `keep` columns) with a chosen access path
    /// and fused local filters (unit layout).
    Scan {
        /// Lower-cased table name.
        table: String,
        keep: Vec<usize>,
        access: Access,
        locals: Vec<Expr>,
    },
    /// Pre-materialized relation (CTE clone, derived table, or an explicit
    /// JOIN tree executed at plan time), with plan-time pushdown already
    /// applied. `pushed` records per-filter (before, after) counts and
    /// `rows` the final cardinality, both for EXPLAIN.
    Rel {
        rel: Relation,
        pushed: Vec<(usize, usize)>,
        rows: usize,
    },
    /// Lateral `TABLE (VALUES ...)`: value expressions compiled against the
    /// *prior* scope, evaluated once per accumulated row.
    LateralValues { rows: Vec<Vec<Expr>>, arity: usize },
    /// Lateral table function call.
    LateralFunc {
        func: TableFunc,
        args: Vec<Expr>,
        arity: usize,
    },
}

/// Access path of a base-table scan.
pub(crate) enum Access {
    /// Index nested-loop join: per accumulated row, build a key from
    /// `parts` and probe `index`. Consumes the left side inside the scan.
    Probe {
        index: String,
        parts: Vec<ProbePart>,
    },
    /// Compressed adjacency probe: like `Probe`, but through a cached CSR
    /// entry ([`crate::csr::CsrEntry`]) built lazily from the index — an
    /// O(1) group lookup plus a dense range copy per accumulated row, with
    /// the expansion kept as offset-delimited lists (factorized) until an
    /// operator needs row semantics. Byte-identical to `Probe`.
    Csr {
        index: String,
        /// The single probe-key expression (combined layout).
        part: Expr,
    },
    /// Constant-key index lookup.
    Point {
        index: String,
        key: Vec<Value>,
        parts: usize,
    },
    /// Single-part B-tree range scan (inclusive bounds; exact predicates
    /// remain in `locals`).
    Range {
        index: String,
        lo: Option<Value>,
        hi: Option<Value>,
    },
    /// Full (morsel-parallel) scan.
    Full,
}

/// One component of an index-probe key.
pub(crate) enum ProbePart {
    Const(Value),
    /// Expression over already-attached columns (combined layout).
    Probe(Expr),
}

/// How the unit rows combine with the accumulated rows.
pub(crate) enum Attach {
    /// Handled inside the scan ([`Access::Probe`]).
    Probe,
    /// Hash equi-join; `rkey` is already re-based onto the unit layout.
    Hash { lkey: Expr, rkey: Expr },
    /// Cartesian product.
    Cross,
    /// Lateral flatten (one unit row set per accumulated row).
    Flatten,
}

// ---------------------------------------------------------------------------
// Projection pruning
// ---------------------------------------------------------------------------

/// Projection-pruning analysis of a SELECT core: which columns of each
/// FROM alias the statement can reference.
#[derive(Debug, Default)]
pub(crate) struct Needs {
    /// Qualified references per (lower-cased) alias.
    per_alias: FxHashMap<String, FxHashSet<String>>,
    /// Aliases that need every column (`t.*`).
    all_for: FxHashSet<String>,
    /// An unqualified reference or bare `*` appeared: pruning is unsafe.
    disable: bool,
}

impl Needs {
    /// Pruned column list for `alias` given the table's full column list,
    /// or `None` when pruning is not applicable.
    fn pruned(&self, alias: &str, columns: &[String]) -> Option<Vec<usize>> {
        if self.disable || self.all_for.contains(alias) {
            return None;
        }
        let wanted = self.per_alias.get(alias)?;
        Some(
            columns
                .iter()
                .enumerate()
                .filter(|(_, c)| wanted.contains(*c))
                .map(|(i, _)| i)
                .collect(),
        )
    }
}

/// Gather the pruning analysis for a SELECT core.
pub(crate) fn collect_needs(core: &ast::SelectCore, order_by: &[(ast::Expr, bool)]) -> Needs {
    let mut needs = Needs::default();
    for p in &core.projections {
        match p {
            ast::Projection::Wildcard => needs.disable = true,
            ast::Projection::TableWildcard(t) => {
                needs.all_for.insert(t.to_ascii_lowercase());
            }
            ast::Projection::Expr { expr, .. } => collect_expr_needs(expr, &mut needs),
        }
    }
    if let Some(f) = &core.filter {
        collect_expr_needs(f, &mut needs);
    }
    for e in &core.group_by {
        collect_expr_needs(e, &mut needs);
    }
    if let Some(h) = &core.having {
        collect_expr_needs(h, &mut needs);
    }
    for (e, _) in order_by {
        collect_expr_needs(e, &mut needs);
    }
    for item in &core.from {
        collect_from_needs(item, &mut needs);
    }
    needs
}

fn collect_from_needs(item: &ast::FromItem, needs: &mut Needs) {
    match item {
        ast::FromItem::LateralValues { rows, .. } => {
            for row in rows {
                for e in row {
                    collect_expr_needs(e, needs);
                }
            }
        }
        ast::FromItem::LateralFunc { args, .. } => {
            for e in args {
                collect_expr_needs(e, needs);
            }
        }
        ast::FromItem::Join {
            left, right, on, ..
        } => {
            collect_from_needs(left, needs);
            collect_from_needs(right, needs);
            collect_expr_needs(on, needs);
        }
        ast::FromItem::Table { .. } | ast::FromItem::Subquery { .. } => {}
    }
}

fn collect_expr_needs(e: &ast::Expr, needs: &mut Needs) {
    match e {
        ast::Expr::Column {
            table: Some(t),
            name,
        } => {
            needs
                .per_alias
                .entry(t.to_ascii_lowercase())
                .or_default()
                .insert(name.to_ascii_lowercase());
        }
        ast::Expr::Column { table: None, .. } => needs.disable = true,
        ast::Expr::Literal(_) | ast::Expr::Param(_) | ast::Expr::CountStar => {}
        ast::Expr::Unary(_, x) | ast::Expr::IsNull(x, _) | ast::Expr::Cast(x, _) => {
            collect_expr_needs(x, needs)
        }
        ast::Expr::Binary(_, l, r) | ast::Expr::Subscript(l, r) => {
            collect_expr_needs(l, needs);
            collect_expr_needs(r, needs);
        }
        ast::Expr::Like { expr, pattern, .. } => {
            collect_expr_needs(expr, needs);
            collect_expr_needs(pattern, needs);
        }
        ast::Expr::InList { expr, list, .. } => {
            collect_expr_needs(expr, needs);
            for i in list {
                collect_expr_needs(i, needs);
            }
        }
        ast::Expr::InSubquery { expr, .. } => collect_expr_needs(expr, needs),
        ast::Expr::Between { expr, lo, hi, .. } => {
            collect_expr_needs(expr, needs);
            collect_expr_needs(lo, needs);
            collect_expr_needs(hi, needs);
        }
        ast::Expr::Call { args, .. } => {
            for a in args {
                collect_expr_needs(a, needs);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// FROM units
// ---------------------------------------------------------------------------

/// A FROM unit before access-path planning.
enum Unit<'q> {
    /// Base table or CTE reference.
    Named { name: String, alias: String },
    /// Derived table, materialized eagerly.
    Derived { rel: Relation, alias: String },
    /// Lateral VALUES rows (expressions compiled later, against the
    /// accumulated scope).
    Lateral {
        rows: &'q [Vec<ast::Expr>],
        alias: String,
        columns: Vec<String>,
    },
    /// Lateral table function (args compiled against the accumulated scope).
    LateralFn {
        func: TableFunc,
        args: &'q [ast::Expr],
        alias: String,
        columns: Vec<String>,
    },
    /// Explicit join tree, materialized recursively.
    JoinTree {
        rel: Relation,
        scope_cols: Vec<(String, Vec<String>)>,
    },
}

/// Display label for a unit (EXPLAIN output).
fn unit_label(unit: &Unit<'_>) -> String {
    match unit {
        Unit::Named { alias, .. } => alias.clone(),
        Unit::Derived { alias, .. } => alias.clone(),
        Unit::Lateral { alias, .. } => alias.clone(),
        Unit::LateralFn { alias, .. } => alias.clone(),
        Unit::JoinTree { scope_cols, .. } => {
            let names: Vec<&str> = scope_cols.iter().map(|(a, _)| a.as_str()).collect();
            names.join("+")
        }
    }
}

fn plan_unit<'q>(env: &Env<'_>, item: &'q ast::FromItem) -> Result<Unit<'q>> {
    match item {
        ast::FromItem::Table { name, alias } => Ok(Unit::Named {
            name: name.to_ascii_lowercase(),
            alias: alias.clone().unwrap_or_else(|| name.clone()),
        }),
        ast::FromItem::Subquery { query, alias } => {
            let rel = run_select(env, query)?;
            Ok(Unit::Derived {
                rel,
                alias: alias.clone(),
            })
        }
        ast::FromItem::LateralValues {
            rows,
            alias,
            columns,
        } => Ok(Unit::Lateral {
            rows,
            alias: alias.clone(),
            columns: columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
        }),
        ast::FromItem::LateralFunc {
            func,
            args,
            alias,
            columns,
        } => Ok(Unit::LateralFn {
            func: TableFunc::parse(func)?,
            args,
            alias: alias.clone(),
            columns: columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
        }),
        ast::FromItem::Join { .. } => {
            let (rel, scope_cols) = run_join_tree(env, item)?;
            Ok(Unit::JoinTree { rel, scope_cols })
        }
    }
}

/// Flatten an inner-only JOIN tree whose leaves are all tables/subqueries
/// into its leaf items, pushing every ON conjunct into `on_out`. Returns
/// `None` (caller keeps the tree intact) for outer joins, lateral operands,
/// or non-join items.
fn flatten_inner_joins<'q>(
    item: &'q ast::FromItem,
    on_out: &mut Vec<&'q ast::Expr>,
) -> Option<Vec<&'q ast::FromItem>> {
    fn walk<'q>(
        item: &'q ast::FromItem,
        leaves: &mut Vec<&'q ast::FromItem>,
        ons: &mut Vec<&'q ast::Expr>,
    ) -> bool {
        match item {
            ast::FromItem::Join {
                left,
                right,
                kind: ast::JoinKind::Inner,
                on,
            } => {
                walk(left, leaves, ons) && walk(right, leaves, ons) && {
                    collect_conjuncts(on, ons);
                    true
                }
            }
            ast::FromItem::Table { .. } | ast::FromItem::Subquery { .. } => {
                leaves.push(item);
                true
            }
            _ => false,
        }
    }
    if !matches!(item, ast::FromItem::Join { .. }) {
        return None;
    }
    let mut leaves = Vec::new();
    let mut ons = Vec::new();
    if walk(item, &mut leaves, &mut ons) {
        on_out.extend(ons);
        Some(leaves)
    } else {
        None
    }
}

/// Split an AST expression into top-level AND conjuncts.
pub(crate) fn collect_conjuncts<'q>(e: &'q ast::Expr, out: &mut Vec<&'q ast::Expr>) {
    if let ast::Expr::Binary(BinaryOp::And, l, r) = e {
        collect_conjuncts(l, out);
        collect_conjuncts(r, out);
    } else {
        out.push(e);
    }
}

/// Visit the top-level AND conjuncts of a compiled expression.
pub(crate) fn visit_conjuncts(e: &Expr, f: &mut impl FnMut(&Expr)) {
    if let Expr::Binary(BinaryOp::And, l, r) = e {
        visit_conjuncts(l, f);
        visit_conjuncts(r, f);
    } else {
        f(e);
    }
}

/// If `on` includes a conjunct `expr_l = expr_r` where `expr_l` touches only
/// columns `< lwidth` and `expr_r` only columns `>= lwidth` (or vice versa),
/// return `(left_key, right_key)`.
pub(crate) fn find_equi_split(on: &Expr, lwidth: usize) -> Option<(Expr, Expr)> {
    let mut found = None;
    visit_conjuncts(on, &mut |c| {
        if found.is_some() {
            return;
        }
        if let Expr::Binary(BinaryOp::Eq, a, b) = c {
            let side = |e: &Expr| -> Option<bool> {
                // Some(true) = pure left, Some(false) = pure right.
                let mut all_left = true;
                let mut all_right = true;
                let mut any = false;
                e.visit_columns(&mut |i| {
                    any = true;
                    if i < lwidth {
                        all_right = false;
                    } else {
                        all_left = false;
                    }
                });
                if !any {
                    return None;
                }
                if all_left {
                    Some(true)
                } else if all_right {
                    Some(false)
                } else {
                    None
                }
            };
            match (side(a), side(b)) {
                (Some(true), Some(false)) => found = Some(((**a).clone(), (**b).clone())),
                (Some(false), Some(true)) => found = Some(((**b).clone(), (**a).clone())),
                _ => {}
            }
        }
    });
    found
}

// ---------------------------------------------------------------------------
// Cost-based join ordering
// ---------------------------------------------------------------------------

/// Cross joins are strongly discouraged: attaching an unconnected unit costs
/// its full Cartesian product, deferred until a join key becomes available.
const CROSS_JOIN_PENALTY: f64 = 10.0;
/// Mild preference for attaching base tables whose join key is indexed —
/// they probe per row instead of materializing a hash build side.
const INDEX_JOIN_BONUS: f64 = 0.8;

/// One step of the planned attachment order.
struct PlannedUnit {
    /// Index into the unit list.
    idx: usize,
    /// Estimated cumulative row count after this unit attaches and its
    /// filters apply (`None` when the planner did not estimate it).
    est: Option<f64>,
}

/// Planning facts for one FROM unit, gathered without executing it.
struct UnitFacts {
    /// Aliases this unit contributes to the scope (lower-cased).
    aliases: Vec<String>,
    /// Unfiltered cardinality.
    rows: f64,
    /// Cardinality after single-unit constant predicates.
    est: f64,
    /// Statistics (base tables only): stored `ANALYZE` stats or index-seeded.
    stats: Option<crate::stats::TableStats>,
    /// Lower-cased column name → position (base tables only).
    col_index: FxHashMap<String, usize>,
    /// Key parts covered by a single-part index (base tables only).
    indexed_parts: Vec<crate::index::KeyPart>,
    /// Live row count at planning time (base tables only; caps ndv).
    live: usize,
    /// Lateral units cannot move — they reference earlier units' columns.
    reorderable: bool,
}

/// An equi-join conjunct linking two units, with its estimated selectivity.
struct JoinEdge {
    a: usize,
    b: usize,
    sel: f64,
    /// The `a`/`b`-side key is a single-part-indexed key of that unit.
    a_indexed: bool,
    b_indexed: bool,
}

/// Collect the set of alias qualifiers in `e` into `out`. Returns `false`
/// when the expression is not analyzable (unqualified columns, subqueries).
fn expr_aliases(e: &ast::Expr, out: &mut FxHashSet<String>) -> bool {
    match e {
        ast::Expr::Column { table: Some(t), .. } => {
            out.insert(t.to_ascii_lowercase());
            true
        }
        ast::Expr::Column { table: None, .. } => false,
        ast::Expr::Literal(_) | ast::Expr::Param(_) | ast::Expr::CountStar => true,
        ast::Expr::Unary(_, x) | ast::Expr::IsNull(x, _) | ast::Expr::Cast(x, _) => {
            expr_aliases(x, out)
        }
        ast::Expr::Binary(_, l, r) | ast::Expr::Subscript(l, r) => {
            expr_aliases(l, out) && expr_aliases(r, out)
        }
        ast::Expr::Like { expr, pattern, .. } => {
            expr_aliases(expr, out) && expr_aliases(pattern, out)
        }
        ast::Expr::InList { expr, list, .. } => {
            expr_aliases(expr, out) && list.iter().all(|i| expr_aliases(i, out))
        }
        ast::Expr::InSubquery { .. } => false,
        ast::Expr::Between { expr, lo, hi, .. } => {
            expr_aliases(expr, out) && expr_aliases(lo, out) && expr_aliases(hi, out)
        }
        ast::Expr::Call { args, .. } => args.iter().all(|a| expr_aliases(a, out)),
    }
}

/// A constant operand from the planner's point of view (parameters are
/// inlined as constants at compile time).
fn is_const_operand(e: &ast::Expr) -> bool {
    matches!(e, ast::Expr::Literal(_) | ast::Expr::Param(_))
}

/// Resolve an AST expression to an index key part of `facts`' table: a
/// qualified bare column or `JSON_VAL(col, 'member')` over one.
fn ast_key_part(facts: &UnitFacts, e: &ast::Expr) -> Option<crate::index::KeyPart> {
    use crate::index::KeyPart;
    match e {
        ast::Expr::Column {
            table: Some(_),
            name,
        } => facts
            .col_index
            .get(&name.to_ascii_lowercase())
            .map(|&c| KeyPart::Column(c)),
        ast::Expr::Call { name, args, .. } if name.eq_ignore_ascii_case("JSON_VAL") => {
            match (args.first(), args.get(1)) {
                (
                    Some(ast::Expr::Column {
                        table: Some(_),
                        name: col,
                    }),
                    Some(ast::Expr::Literal(Value::Str(member))),
                ) => facts
                    .col_index
                    .get(&col.to_ascii_lowercase())
                    .map(|&c| KeyPart::JsonKey(c, member.to_string())),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Distinct-value estimate for one side of a join conjunct. Falls back to
/// the System-R tenth-of-the-rows default when no statistic applies.
fn side_ndv(facts: &UnitFacts, e: &ast::Expr) -> f64 {
    if let (Some(part), Some(stats)) = (ast_key_part(facts, e), facts.stats.as_ref()) {
        return stats.ndv_or_default(&part, facts.live) as f64;
    }
    (facts.rows / 10.0).max(1.0)
}

/// Selectivity of a single-unit conjunct: `key = const` uses 1/ndv, any
/// other recognized predicate the classic 0.3 guess.
fn conjunct_selectivity(facts: &UnitFacts, c: &ast::Expr) -> f64 {
    if let ast::Expr::Binary(BinaryOp::Eq, a, b) = c {
        let key = if is_const_operand(b) {
            Some(a)
        } else if is_const_operand(a) {
            Some(b)
        } else {
            None
        };
        if let Some(key) = key {
            if let (Some(part), Some(stats)) = (ast_key_part(facts, key), facts.stats.as_ref()) {
                return stats.eq_selectivity(&part, facts.live);
            }
            return 1.0 / (facts.rows / 10.0).max(1.0);
        }
    }
    0.3
}

/// Gather planning facts for every unit; estimates never execute a unit
/// (base tables are inspected under a briefly-held read lock).
fn gather_unit_facts(
    env: &Env<'_>,
    units: &[Unit<'_>],
    pending: &[Option<&ast::Expr>],
) -> Vec<UnitFacts> {
    let mut all: Vec<UnitFacts> = units
        .iter()
        .map(|unit| match unit {
            Unit::Named { name, alias } => {
                if let Some(cte) = env.ctes.get(name) {
                    return UnitFacts {
                        aliases: vec![alias.to_ascii_lowercase()],
                        rows: cte.rows.len() as f64,
                        est: cte.rows.len() as f64,
                        stats: None,
                        col_index: FxHashMap::default(),
                        indexed_parts: Vec::new(),
                        live: 0,
                        reorderable: true,
                    };
                }
                match env.db.read_table(name) {
                    Ok(t) => {
                        let live = t.len();
                        // Analyzed stats whose recorded row count has
                        // drifted >2× from the live table mislead more
                        // than they help; fall back to seeded stats.
                        let stats = t
                            .stats()
                            .filter(|s| !s.is_stale(live))
                            .cloned()
                            .unwrap_or_else(|| crate::stats::TableStats::seed(&t));
                        let col_index = t
                            .schema
                            .columns
                            .iter()
                            .enumerate()
                            .map(|(i, c)| (c.name.clone(), i))
                            .collect();
                        let indexed_parts = t
                            .indexes()
                            .iter()
                            .filter(|i| i.parts.len() == 1)
                            .map(|i| i.parts[0].clone())
                            .collect();
                        UnitFacts {
                            aliases: vec![alias.to_ascii_lowercase()],
                            rows: live as f64,
                            est: live as f64,
                            stats: Some(stats),
                            col_index,
                            indexed_parts,
                            live,
                            reorderable: true,
                        }
                    }
                    // Missing table: the attach step will surface the error;
                    // give the planner a neutral placeholder.
                    Err(_) => UnitFacts {
                        aliases: vec![alias.to_ascii_lowercase()],
                        rows: 1.0,
                        est: 1.0,
                        stats: None,
                        col_index: FxHashMap::default(),
                        indexed_parts: Vec::new(),
                        live: 0,
                        reorderable: true,
                    },
                }
            }
            Unit::Derived { rel, alias } => UnitFacts {
                aliases: vec![alias.to_ascii_lowercase()],
                rows: rel.rows.len() as f64,
                est: rel.rows.len() as f64,
                stats: None,
                col_index: FxHashMap::default(),
                indexed_parts: Vec::new(),
                live: 0,
                reorderable: true,
            },
            Unit::JoinTree { rel, scope_cols } => UnitFacts {
                aliases: scope_cols
                    .iter()
                    .map(|(a, _)| a.to_ascii_lowercase())
                    .collect(),
                rows: rel.rows.len() as f64,
                est: rel.rows.len() as f64,
                stats: None,
                col_index: FxHashMap::default(),
                indexed_parts: Vec::new(),
                live: 0,
                reorderable: true,
            },
            Unit::Lateral { alias, .. } | Unit::LateralFn { alias, .. } => UnitFacts {
                aliases: vec![alias.to_ascii_lowercase()],
                rows: 1.0,
                est: 1.0,
                stats: None,
                col_index: FxHashMap::default(),
                indexed_parts: Vec::new(),
                live: 0,
                reorderable: false,
            },
        })
        .collect();

    // Apply single-unit constant predicates to the estimates.
    for facts in &mut all {
        let mut sel = 1.0;
        for c in pending.iter().flatten() {
            let mut aliases = FxHashSet::default();
            if !expr_aliases(c, &mut aliases) || aliases.len() != 1 {
                continue;
            }
            let alias = aliases.iter().next().expect("len checked");
            if facts.aliases.len() == 1 && facts.aliases[0] == *alias {
                sel *= conjunct_selectivity(facts, c);
            }
        }
        facts.est = facts.rows * sel;
    }
    all
}

/// Extract equi-join edges between reorderable units from the pending
/// conjuncts.
fn extract_join_edges(
    facts: &[UnitFacts],
    pending: &[Option<&ast::Expr>],
    prefix: usize,
) -> Vec<JoinEdge> {
    let owner_of = |alias: &str| -> Option<usize> {
        facts[..prefix]
            .iter()
            .position(|f| f.aliases.iter().any(|a| a == alias))
    };
    let mut edges = Vec::new();
    for c in pending.iter().flatten() {
        let ast::Expr::Binary(BinaryOp::Eq, l, r) = c else {
            continue;
        };
        let mut la = FxHashSet::default();
        let mut ra = FxHashSet::default();
        if !expr_aliases(l, &mut la) || !expr_aliases(r, &mut ra) {
            continue;
        }
        if la.len() != 1 || ra.len() != 1 {
            continue;
        }
        let (la, ra) = (
            la.iter().next().expect("len checked").clone(),
            ra.iter().next().expect("len checked").clone(),
        );
        let (Some(a), Some(b)) = (owner_of(&la), owner_of(&ra)) else {
            continue;
        };
        if a == b {
            continue;
        }
        let sel = 1.0 / side_ndv(&facts[a], l).max(side_ndv(&facts[b], r));
        let a_indexed =
            ast_key_part(&facts[a], l).is_some_and(|p| facts[a].indexed_parts.contains(&p));
        let b_indexed =
            ast_key_part(&facts[b], r).is_some_and(|p| facts[b].indexed_parts.contains(&p));
        edges.push(JoinEdge {
            a,
            b,
            sel,
            a_indexed,
            b_indexed,
        });
    }
    edges
}

/// Greedy smallest-first join ordering over the maximal leading run of
/// non-lateral units. Starts from the unit with the smallest filtered
/// estimate, then repeatedly attaches the unit minimizing the estimated
/// intermediate result — penalizing cross joins, mildly preferring
/// index-probe attachments. Units at or after the first lateral keep their
/// textual positions.
fn plan_join_order(
    env: &Env<'_>,
    units: &[Unit<'_>],
    pending: &[Option<&ast::Expr>],
) -> Vec<PlannedUnit> {
    let facts = gather_unit_facts(env, units, pending);
    let prefix = facts
        .iter()
        .position(|f| !f.reorderable)
        .unwrap_or(facts.len());
    if prefix < 2 {
        return (0..units.len())
            .map(|idx| PlannedUnit { idx, est: None })
            .collect();
    }
    let edges = extract_join_edges(&facts, pending, prefix);

    let mut order: Vec<PlannedUnit> = Vec::with_capacity(units.len());
    let mut used = vec![false; prefix];
    let first = (0..prefix)
        .min_by(|&i, &j| facts[i].est.total_cmp(&facts[j].est))
        .expect("prefix >= 2");
    used[first] = true;
    let mut cur = facts[first].est;
    order.push(PlannedUnit {
        idx: first,
        est: Some(cur),
    });

    while order.len() < prefix {
        let mut best: Option<(usize, f64, f64)> = None; // (unit, cost, result rows)
        for j in 0..prefix {
            if used[j] {
                continue;
            }
            let mut sel = 1.0;
            let mut connected = false;
            let mut probes_index = false;
            for e in &edges {
                let (other, j_side_indexed) = if e.a == j {
                    (e.b, e.a_indexed)
                } else if e.b == j {
                    (e.a, e.b_indexed)
                } else {
                    continue;
                };
                if !used[other] {
                    continue;
                }
                connected = true;
                sel *= e.sel;
                probes_index |= j_side_indexed;
            }
            let result = cur * facts[j].est * sel;
            let mut cost = result;
            if !connected {
                cost *= CROSS_JOIN_PENALTY;
            } else if probes_index && facts[j].stats.is_some() {
                cost *= INDEX_JOIN_BONUS;
            }
            if best.as_ref().is_none_or(|(_, bc, _)| cost < *bc) {
                best = Some((j, cost, result));
            }
        }
        let (j, _, result) = best.expect("unused unit remains");
        used[j] = true;
        cur = result;
        order.push(PlannedUnit {
            idx: j,
            est: Some(cur),
        });
    }
    // The first lateral and everything after it attach in textual order.
    order.extend((prefix..units.len()).map(|idx| PlannedUnit { idx, est: None }));
    order
}

// ---------------------------------------------------------------------------
// The planning pass
// ---------------------------------------------------------------------------

/// Plan a FROM list + WHERE clause into a [`FromPlan`]. Performs every
/// planning decision (join order, access paths, pushdown, hash keys) and
/// compiles every predicate; the executor only follows the plan.
pub(crate) fn plan_from(
    env: &Env<'_>,
    from: &[ast::FromItem],
    filter: Option<&ast::Expr>,
    needs: &Needs,
) -> Result<FromPlan> {
    // Table-less SELECT: no steps; the WHERE (if any) gates the identity row.
    if from.is_empty() {
        let scope = Scope::default();
        let residual = match filter {
            Some(f) => vec![compile_expr(env, &scope, f)?],
            None => Vec::new(),
        };
        return Ok(FromPlan {
            steps: Vec::new(),
            scope,
            residual,
        });
    }

    // Phase 1: turn FROM items into units. With the planner on, inner-only
    // JOIN trees flatten into their leaf units so the optimizer can reorder
    // across explicit JOIN syntax too; their ON conjuncts become ordinary
    // pending conjuncts (equivalent for inner joins).
    let planner_on = env.db.planner_enabled();
    let mut units: Vec<Unit<'_>> = Vec::with_capacity(from.len());
    let mut conjuncts: Vec<&ast::Expr> = Vec::new();
    for item in from {
        if planner_on {
            if let Some(leaves) = flatten_inner_joins(item, &mut conjuncts) {
                for leaf in leaves {
                    units.push(plan_unit(env, leaf)?);
                }
                continue;
            }
        }
        units.push(plan_unit(env, item)?);
    }

    // Phase 2: split WHERE into conjuncts (kept as AST; compiled when their
    // tables are all bound). Flattened ON conjuncts come first so equi keys
    // are found before residual predicates.
    if let Some(f) = filter {
        collect_conjuncts(f, &mut conjuncts);
    }
    let mut pending: Vec<Option<&ast::Expr>> = conjuncts.into_iter().map(Some).collect();

    // Phase 3: pick an attachment order.
    let planned: Vec<PlannedUnit> = if planner_on && units.len() > 1 {
        plan_join_order(env, &units, &pending)
    } else {
        (0..units.len())
            .map(|idx| PlannedUnit { idx, est: None })
            .collect()
    };
    if planned.iter().enumerate().any(|(pos, p)| pos != p.idx) {
        env.note(|| {
            let names: Vec<String> = planned.iter().map(|p| unit_label(&units[p.idx])).collect();
            format!("join order: {} (reordered)", names.join(", "))
        });
    }

    // Phase 4: plan each attach step in execution order.
    let mut scope = Scope::default();
    let mut slots: Vec<Option<Unit<'_>>> = units.into_iter().map(Some).collect();
    let mut entry_spans: Vec<(usize, std::ops::Range<usize>)> = Vec::with_capacity(slots.len());
    let mut steps: Vec<Step> = Vec::with_capacity(slots.len());

    for p in &planned {
        let unit = slots[p.idx].take().expect("each unit plans exactly once");
        let label = unit_label(&unit);
        let entries_before = scope.entries.len();
        let (kind, attach) = match unit {
            Unit::Lateral {
                rows: value_rows,
                alias,
                columns,
            } => {
                // Compile row expressions against a scope extended with the
                // lateral's own columns *excluded* — they may only reference
                // earlier units.
                let arity = columns.len();
                let mut compiled_rows = Vec::with_capacity(value_rows.len());
                for vr in value_rows {
                    let mut cr = Vec::with_capacity(vr.len());
                    for e in vr {
                        cr.push(compile_expr(env, &scope, e)?);
                    }
                    compiled_rows.push(cr);
                }
                scope.push(&alias, columns);
                (
                    StepKind::LateralValues {
                        rows: compiled_rows,
                        arity,
                    },
                    Attach::Flatten,
                )
            }
            Unit::LateralFn {
                func,
                args,
                alias,
                columns,
            } => {
                if columns.len() != func.arity() {
                    return Err(Error::Invalid(format!(
                        "{func:?} produces {} columns, alias declares {}",
                        func.arity(),
                        columns.len()
                    )));
                }
                let compiled: Vec<Expr> = args
                    .iter()
                    .map(|e| compile_expr(env, &scope, e))
                    .collect::<Result<_>>()?;
                let arity = columns.len();
                scope.push(&alias, columns);
                (
                    StepKind::LateralFunc {
                        func,
                        args: compiled,
                        arity,
                    },
                    Attach::Flatten,
                )
            }
            Unit::Derived { rel, alias } => {
                plan_rel_step(env, &mut scope, rel, &[alias], true, &mut pending)?
            }
            Unit::JoinTree { rel, scope_cols } => {
                // Multi-alias relation: extend the scope with every alias.
                // Join-tree outputs take no pushdown (their own predicates
                // lived in ON clauses); ready conjuncts apply after attach.
                let before_width = scope.width;
                for (alias, cols) in &scope_cols {
                    scope.push(alias, cols.clone());
                }
                let rows = rel.rows.len();
                let attach = pick_attach(env, &scope, before_width, &mut pending);
                (
                    StepKind::Rel {
                        rel,
                        pushed: Vec::new(),
                        rows,
                    },
                    attach,
                )
            }
            Unit::Named { name, alias } => {
                if let Some(cte) = env.ctes.get(&name) {
                    let rel = (**cte).clone();
                    plan_rel_step(env, &mut scope, rel, &[alias], true, &mut pending)?
                } else {
                    plan_base_table(env, &mut scope, &name, &alias, &mut pending, needs)?
                }
            }
        };

        // Ready conjuncts: everything now fully resolvable applies to the
        // combined rows right after this attach, in conjunct order.
        let mut after = Vec::new();
        for slot in pending.iter_mut() {
            let Some(c) = slot else { continue };
            if let Ok(compiled) = compile_expr(env, &scope, c) {
                let mut max_col = 0;
                let mut any = false;
                compiled.visit_columns(&mut |i| {
                    any = true;
                    max_col = max_col.max(i);
                });
                if !any || max_col < scope.width {
                    after.push(compiled);
                    *slot = None;
                }
            }
            // Compile failures reference columns not yet in scope; retry
            // after the next unit extends it.
        }
        entry_spans.push((p.idx, entries_before..scope.entries.len()));
        steps.push(Step {
            label,
            est: p.est,
            kind,
            attach,
            after,
            exec: StepExec::default(),
        });
    }

    // Restore scope entries to textual order so `SELECT *` column order is
    // unaffected by the planner; offsets keep pointing at the physical row
    // layout, which is what name resolution uses.
    entry_spans.sort_by_key(|(orig, _)| *orig);
    let mut old: Vec<Option<crate::exec::ScopeEntry>> = std::mem::take(&mut scope.entries)
        .into_iter()
        .map(Some)
        .collect();
    for (_, span) in entry_spans {
        for k in span {
            scope.entries.push(old[k].take().expect("entry moved once"));
        }
    }

    // Any conjunct still unresolved references unknown columns — surface the
    // resolution error.
    let mut residual = Vec::new();
    for c in pending.into_iter().flatten() {
        residual.push(compile_expr(env, &scope, c)?);
    }
    Ok(FromPlan {
        steps,
        scope,
        residual,
    })
}

/// Plan the attachment of a pre-materialized relation: push its alias(es),
/// apply plan-time pushdown (the relation's rows exist already), pick the
/// hash key.
fn plan_rel_step(
    env: &Env<'_>,
    scope: &mut Scope,
    mut rel: Relation,
    aliases: &[String],
    pushdown: bool,
    pending: &mut [Option<&ast::Expr>],
) -> Result<(StepKind, Attach)> {
    let before_width = scope.width;
    let arity = rel.columns.len();
    for alias in aliases {
        scope.push(alias, rel.columns.clone());
    }
    let mut pushed = Vec::new();
    if pushdown {
        let locals = take_locals(env, scope, before_width, arity, pending);
        for p in &locals {
            let before = rel.rows.len();
            rel.rows = filter_rows(std::mem::take(&mut rel.rows), p)?;
            pushed.push((before, rel.rows.len()));
        }
    }
    let rows = rel.rows.len();
    let attach = pick_attach(env, scope, before_width, pending);
    Ok((StepKind::Rel { rel, pushed, rows }, attach))
}

/// Take every pending conjunct local to the unit at `before_width` and
/// return it re-based onto the bare unit row, retiring the pending slot.
/// The executor evaluates these predicates inside the scan (fused
/// scan + filter) instead of materializing unfiltered rows first.
fn take_locals(
    env: &Env<'_>,
    scope: &Scope,
    before_width: usize,
    arity: usize,
    pending: &mut [Option<&ast::Expr>],
) -> Vec<Expr> {
    let mut out = Vec::new();
    for slot in pending.iter_mut() {
        let Some(c) = slot else { continue };
        let Ok(compiled) = compile_expr(env, scope, c) else {
            continue;
        };
        let mut any = false;
        let mut local = true;
        compiled.visit_columns(&mut |i| {
            any = true;
            if i < before_width || i >= before_width + arity {
                local = false;
            }
        });
        if !any || !local {
            continue;
        }
        let mut rebased = compiled;
        rebased.map_columns(&mut |i| i - before_width);
        out.push(rebased);
        *slot = None;
    }
    out
}

/// Pick the attach strategy for the unit just pushed at `before_width`:
/// hash join on the first usable pending equi conjunct, else cross product.
fn pick_attach(
    env: &Env<'_>,
    scope: &Scope,
    before_width: usize,
    pending: &mut [Option<&ast::Expr>],
) -> Attach {
    for slot in pending.iter_mut() {
        let Some(c) = slot else { continue };
        let Ok(compiled) = compile_expr(env, scope, c) else {
            continue;
        };
        if let Some((lkey, rkey)) = find_equi_split(&compiled, before_width) {
            // Keys must not reference columns beyond the current width.
            let mut max_col = 0;
            lkey.visit_columns(&mut |i| max_col = max_col.max(i));
            rkey.visit_columns(&mut |i| max_col = max_col.max(i));
            if max_col < scope.width {
                *slot = None;
                // `find_equi_split` guarantees side purity: the build key
                // re-bases onto the bare unit row, the probe key evaluates
                // on the accumulated row directly.
                let mut rkey = rkey;
                rkey.map_columns(&mut |c| c - before_width);
                return Attach::Hash { lkey, rkey };
            }
        }
    }
    Attach::Cross
}

/// Plan a base-table attach: choose index probe / point / range / full scan
/// (the same strategy ladder the in-line executor used), scoop local
/// filters, and pick the join strategy.
/// Minimum live rows before the planner routes a probe through the CSR
/// adjacency cache: below this the O(table) lazy build cannot beat plain
/// index nested-loop probes even with perfect reuse.
const CSR_MIN_ROWS: usize = 256;

/// Whether a probe-side index nested-loop scan should go through the CSR
/// compressed-adjacency path instead: the scan must be adjacency-shaped —
/// a single probed key part over a non-unique hash index (unique indexes
/// are 1:1 point lookups that the probe path already serves optimally, and
/// B-trees also answer range scans the flat CSR layout cannot) — over a
/// table big enough to amortize the lazy build.
fn csr_eligible(
    env: &Env<'_>,
    table: &crate::storage::Table,
    idx: &crate::index::Index,
    parts: &[ProbePart],
) -> bool {
    env.db.csr_enabled()
        && parts.len() == 1
        && matches!(parts[0], ProbePart::Probe(_))
        && !idx.unique
        && idx.kind() == crate::index::IndexKind::Hash
        && table.len() >= CSR_MIN_ROWS
}

/// Estimated average rows per probe group, for EXPLAIN: analyzed (fresh)
/// statistics when available, otherwise the index's exact distinct-key
/// count.
fn csr_est_fanout(table: &crate::storage::Table, idx: &crate::index::Index) -> f64 {
    let live = table.len();
    match table.stats().filter(|s| !s.is_stale(live)) {
        Some(s) => s.avg_fanout(&idx.parts[0], live),
        None => live as f64 / idx.distinct_keys().max(1) as f64,
    }
}

fn plan_base_table(
    env: &Env<'_>,
    scope: &mut Scope,
    name: &str,
    alias: &str,
    pending: &mut [Option<&ast::Expr>],
    needs: &Needs,
) -> Result<(StepKind, Attach)> {
    let guard = env.db.read_table(name)?;
    let table: &crate::storage::Table = &guard;
    let all_names: Vec<String> = table
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    // Projection pruning: materialize only the columns the statement can
    // reference. `keep` maps pruned position -> original position.
    let keep: Vec<usize> = needs
        .pruned(&alias.to_ascii_lowercase(), &all_names)
        .unwrap_or_else(|| (0..all_names.len()).collect());
    let col_names: Vec<String> = keep.iter().map(|&i| all_names[i].clone()).collect();
    let before_width = scope.width;
    scope.push(alias, col_names);
    let arity = keep.len();

    // Gather, for this unit: constant equality pairs (key part -> const)
    // and probe equality pairs (key part -> left-side key expression).
    // A key part is a plain column or `JSON_VAL(json_col, 'member')` — the
    // latter matches functional indexes.
    use crate::index::KeyPart;
    let as_key_part = |e: &Expr| -> Option<KeyPart> {
        match e {
            Expr::Col(idx) if *idx >= before_width && *idx < before_width + arity => {
                // Map the pruned position back to the original column.
                Some(KeyPart::Column(keep[*idx - before_width]))
            }
            Expr::Call(crate::expr::Func::JsonVal, args) => match (args.first(), args.get(1)) {
                (Some(Expr::Col(idx)), Some(Expr::Const(Value::Str(member))))
                    if *idx >= before_width && *idx < before_width + arity =>
                {
                    Some(KeyPart::JsonKey(
                        keep[*idx - before_width],
                        member.to_string(),
                    ))
                }
                _ => None,
            },
            _ => None,
        }
    };
    let mut const_eq: Vec<(KeyPart, Value, usize)> = Vec::new();
    let mut probe_eq: Vec<(KeyPart, Expr, usize)> = Vec::new();
    for (i, slot) in pending.iter().enumerate() {
        let Some(c) = slot else { continue };
        let Ok(compiled) = compile_expr(env, scope, c) else {
            continue;
        };
        // Only consider plain equality conjuncts.
        let Expr::Binary(BinaryOp::Eq, a, b) = &compiled else {
            continue;
        };
        let is_bound = |e: &Expr| -> bool {
            let mut ok = true;
            e.visit_columns(&mut |i| {
                if i >= before_width {
                    ok = false;
                }
            });
            ok
        };
        let (part, other) = match (as_key_part(a), as_key_part(b)) {
            (Some(p), None) if is_bound(b) => (p, (**b).clone()),
            (None, Some(p)) if is_bound(a) => (p, (**a).clone()),
            _ => continue,
        };
        if let Expr::Const(v) = &other {
            const_eq.push((part, v.clone(), i));
        } else {
            probe_eq.push((part, other, i));
        }
    }

    // Strategy 1: index nested loop. Find an index whose key parts are all
    // covered by probe/const pairs, preferring indexes that use a probe.
    let mut best: Option<(&crate::index::Index, Vec<ProbePart>, Vec<usize>)> = None;
    for idx in table.indexes() {
        let mut parts = Vec::with_capacity(idx.parts.len());
        let mut used = Vec::new();
        let mut ok = true;
        let mut uses_probe = false;
        for part in &idx.parts {
            if let Some((_, key_expr, pi)) = probe_eq.iter().find(|(pp, _, _)| pp == part) {
                parts.push(ProbePart::Probe(key_expr.clone()));
                used.push(*pi);
                uses_probe = true;
            } else if let Some((_, v, pi)) = const_eq.iter().find(|(cp, _, _)| cp == part) {
                parts.push(ProbePart::Const(v.clone()));
                used.push(*pi);
            } else {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        let better = match &best {
            None => true,
            Some((bidx, _, _)) => {
                // Prefer probe-using, then longer keys, then unique.
                let b_probe = bidx
                    .parts
                    .iter()
                    .any(|p| probe_eq.iter().any(|(pp, _, _)| pp == p));
                (uses_probe && !b_probe)
                    || (uses_probe == b_probe && idx.parts.len() > bidx.parts.len())
            }
        };
        if better {
            best = Some((idx, parts, used));
        }
    }

    if let Some((idx, parts, used)) = best {
        let uses_probe = parts.iter().any(|p| matches!(p, ProbePart::Probe(_)));
        for pi in &used {
            pending[*pi] = None;
        }
        if uses_probe {
            let access = if csr_eligible(env, table, idx, &parts) {
                let Some(ProbePart::Probe(part)) = parts.into_iter().next() else {
                    unreachable!("eligibility requires a single probe part")
                };
                Access::Csr {
                    index: idx.name.clone(),
                    part,
                }
            } else {
                Access::Probe {
                    index: idx.name.clone(),
                    parts,
                }
            };
            return Ok((
                StepKind::Scan {
                    table: name.to_string(),
                    keep,
                    access,
                    locals: Vec::new(),
                },
                Attach::Probe,
            ));
        }
        // Const-only index: point scan, then join the scanned rows.
        let key: Vec<Value> = parts
            .iter()
            .map(|p| match p {
                ProbePart::Const(v) => v.clone(),
                ProbePart::Probe(_) => unreachable!("no probes in const-only path"),
            })
            .collect();
        let n_parts = parts.len();
        let index = idx.name.clone();
        drop(guard);
        let locals = take_locals(env, scope, before_width, arity, pending);
        let attach = pick_attach(env, scope, before_width, pending);
        return Ok((
            StepKind::Scan {
                table: name.to_string(),
                keep,
                access: Access::Point {
                    index,
                    key,
                    parts: n_parts,
                },
                locals,
            },
            attach,
        ));
    }

    // Strategy 2: B-tree range scan for comparison predicates on an indexed
    // key part. Bounds are applied inclusively; the bounding conjuncts stay
    // pending — `take_locals` scoops them, so exclusive endpoints are
    // filtered exactly.
    let mut range_access: Option<Access> = None;
    {
        let mut lo: Option<(KeyPart, Value)> = None;
        let mut hi: Option<(KeyPart, Value)> = None;
        for slot in pending.iter() {
            let Some(c) = slot else { continue };
            let Ok(compiled) = compile_expr(env, scope, c) else {
                continue;
            };
            // BETWEEN desugars to `a AND b` inside one conjunct: split at
            // the compiled level too.
            visit_conjuncts(&compiled, &mut |leaf| {
                let Expr::Binary(op, a, b) = leaf else { return };
                // Normalize to `part OP const`.
                let (part, value, op) =
                    match (as_key_part(a), b.as_ref(), as_key_part(b), a.as_ref()) {
                        (Some(p), Expr::Const(v), _, _) => (p, v.clone(), *op),
                        (_, _, Some(p), Expr::Const(v)) => {
                            // Flip: const OP part becomes part OP' const.
                            let flipped = match *op {
                                BinaryOp::Lt => BinaryOp::Gt,
                                BinaryOp::Le => BinaryOp::Ge,
                                BinaryOp::Gt => BinaryOp::Lt,
                                BinaryOp::Ge => BinaryOp::Le,
                                other => other,
                            };
                            (p, v.clone(), flipped)
                        }
                        _ => return,
                    };
                if value.is_null() {
                    return;
                }
                match op {
                    BinaryOp::Gt | BinaryOp::Ge if lo.as_ref().is_none_or(|(p, _)| *p == part) => {
                        lo = Some((part, value));
                    }
                    BinaryOp::Lt | BinaryOp::Le if hi.as_ref().is_none_or(|(p, _)| *p == part) => {
                        hi = Some((part, value));
                    }
                    _ => {}
                }
            });
        }
        // Bounds must target one part with a single-part B-tree index.
        let part = match (&lo, &hi) {
            (Some((p1, _)), Some((p2, _))) if p1 == p2 => Some(p1.clone()),
            (Some((p, _)), None) | (None, Some((p, _))) => Some(p.clone()),
            _ => None,
        };
        if let Some(part) = part {
            let found = table.indexes().iter().find(|i| {
                i.parts.len() == 1
                    && i.parts[0] == part
                    && i.kind() == crate::index::IndexKind::BTree
            });
            if let Some(idx) = found {
                range_access = Some(Access::Range {
                    index: idx.name.clone(),
                    lo: lo
                        .as_ref()
                        .filter(|(p, _)| *p == part)
                        .map(|(_, v)| v.clone()),
                    hi: hi
                        .as_ref()
                        .filter(|(p, _)| *p == part)
                        .map(|(_, v)| v.clone()),
                });
            }
        }
    }
    drop(guard);
    if let Some(access) = range_access {
        let locals = take_locals(env, scope, before_width, arity, pending);
        let attach = pick_attach(env, scope, before_width, pending);
        return Ok((
            StepKind::Scan {
                table: name.to_string(),
                keep,
                access,
                locals,
            },
            attach,
        ));
    }

    // Strategy 3: full scan fused with the unit's pushed-down predicates.
    let locals = take_locals(env, scope, before_width, arity, pending);
    let attach = pick_attach(env, scope, before_width, pending);
    Ok((
        StepKind::Scan {
            table: name.to_string(),
            keep,
            access: Access::Full,
            locals,
        },
        attach,
    ))
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------------

/// Emit the flat access-path notes for an executed plan (the historical
/// EXPLAIN format: strategy, pushdown counts, join kind + DOP, and
/// per-step `estimated … actual` cardinalities).
pub(crate) fn render_notes(env: &Env<'_>, plan: &FromPlan) {
    for step in &plan.steps {
        let x = &step.exec;
        match &step.kind {
            StepKind::Scan {
                table,
                access,
                locals,
                ..
            } => match access {
                Access::Probe { index, parts } => {
                    env.note(|| {
                        format!(
                            "{table}: index nested-loop join via index {index} ({} key parts)",
                            parts.len()
                        )
                    });
                }
                Access::Csr { index, .. } => {
                    env.note(|| {
                        let fanout = env
                            .db
                            .read_table(table)
                            .map(|t| {
                                t.indexes()
                                    .iter()
                                    .find(|i| &i.name == index)
                                    .map(|i| csr_est_fanout(&t, i))
                                    .unwrap_or(0.0)
                            })
                            .unwrap_or(0.0);
                        format!(
                            "{table}: csr adjacency via index {index} ({} groups, est fanout {fanout:.1})",
                            x.csr_groups.unwrap_or_default()
                        )
                    });
                }
                Access::Point { index, parts, .. } => {
                    env.note(|| {
                        format!("{table}: index scan via index {index} ({parts} key parts)")
                    });
                    for (before, after) in &x.local_counts {
                        env.note(|| {
                            format!("{}: pushdown filter ({before} -> {after} rows)", step.label)
                        });
                    }
                }
                Access::Range { index, .. } => {
                    env.note(|| {
                        format!(
                            "{table}: range scan via index {index} ({} rows)",
                            x.scan_rows.unwrap_or_default()
                        )
                    });
                    for (before, after) in &x.local_counts {
                        env.note(|| {
                            format!("{}: pushdown filter ({before} -> {after} rows)", step.label)
                        });
                    }
                }
                Access::Full => {
                    env.note(|| {
                        format!(
                            "{table}: full scan ({} rows, dop {})",
                            x.scan_rows.unwrap_or_default(),
                            x.scan_dop.unwrap_or(1)
                        )
                    });
                    if !locals.is_empty() {
                        for (before, after) in &x.local_counts {
                            env.note(|| {
                                format!(
                                    "{}: pushdown filter ({before} -> {after} rows)",
                                    step.label
                                )
                            });
                        }
                    }
                }
            },
            StepKind::Rel { pushed, .. } => {
                for (before, after) in pushed {
                    env.note(|| {
                        format!("{}: pushdown filter ({before} -> {after} rows)", step.label)
                    });
                }
            }
            StepKind::LateralValues { .. } | StepKind::LateralFunc { .. } => {}
        }
        match &step.attach {
            Attach::Hash { .. } => {
                env.note(|| {
                    format!(
                        "hash join ({} build rows, dop {})",
                        x.join_rows.unwrap_or_default(),
                        x.join_dop.unwrap_or(1)
                    )
                });
            }
            Attach::Cross => {
                env.note(|| {
                    format!(
                        "cross join ({} right rows, dop {})",
                        x.join_rows.unwrap_or_default(),
                        x.join_dop.unwrap_or(1)
                    )
                });
            }
            Attach::Probe | Attach::Flatten => {}
        }
        if let (Some(est), Some(actual)) = (step.est, x.actual) {
            let mode = match x.list_out {
                Some(true) => " (list)",
                Some(false) => " (flat)",
                None => "",
            };
            env.note(|| {
                format!(
                    "{}: estimated {est:.0} rows, actual {actual}{mode}",
                    step.label
                )
            });
        }
    }
}

/// Render the physical operator tree (the IR that actually ran) into the
/// trace: outer `wrappers` (Sort/Distinct/Aggregate, outermost first), then
/// the left-deep join tree with per-node DOP and pushed-filter counts.
pub(crate) fn render_tree(env: &Env<'_>, plan: &FromPlan, wrappers: &[String]) {
    let mut lines: Vec<String> = vec!["plan:".to_string()];
    let mut depth = 1usize;
    for w in wrappers {
        lines.push(format!("{}{w}", "  ".repeat(depth)));
        depth += 1;
    }
    if !plan.residual.is_empty() {
        lines.push(format!(
            "{}Filter ({} residual predicates)",
            "  ".repeat(depth),
            plan.residual.len()
        ));
        depth += 1;
    }
    if plan.steps.is_empty() {
        lines.push(format!("{}Values (1 row)", "  ".repeat(depth)));
    } else {
        tree_into(&plan.steps, plan.steps.len() - 1, depth, &mut lines);
    }
    for line in lines {
        env.note(|| line.clone());
    }
}

/// Recursive left-deep tree render of `steps[..=i]`.
fn tree_into(steps: &[Step], i: usize, depth: usize, out: &mut Vec<String>) {
    let step = &steps[i];
    let pad = "  ".repeat(depth);
    let mut depth = depth;
    if !step.after.is_empty() {
        out.push(format!("{pad}Filter ({} predicates)", step.after.len()));
        depth += 1;
    }
    let pad = "  ".repeat(depth);
    let x = &step.exec;
    // The attach node (for non-leading steps, and for index probes which
    // fuse join+scan).
    if i == 0 {
        // Leading step: its Cross attach against the identity row is a
        // passthrough — render the source alone.
        out.push(format!("{pad}{}", leaf_label(step)));
        return;
    }
    match &step.attach {
        Attach::Probe => {
            match &step.kind {
                StepKind::Scan {
                    access: Access::Probe { index, parts },
                    ..
                } => {
                    out.push(format!(
                        "{pad}IndexJoin {} (index {index}, {} key parts)",
                        step.label,
                        parts.len()
                    ));
                }
                StepKind::Scan {
                    access: Access::Csr { index, .. },
                    ..
                } => {
                    let mode = match x.list_out {
                        Some(false) => "flat",
                        // List output is the design point; report it even if
                        // the step never executed.
                        _ => "list",
                    };
                    out.push(format!(
                        "{pad}CsrExpand {} (index {index}, {} groups, {mode})",
                        step.label,
                        x.csr_groups.unwrap_or_default()
                    ));
                }
                _ => out.push(format!(
                    "{pad}IndexJoin {} (index ?, 0 key parts)",
                    step.label
                )),
            }
            tree_into(steps, i - 1, depth + 1, out);
        }
        Attach::Hash { .. } => {
            out.push(format!(
                "{pad}HashJoin (build {}, {} build rows, dop {})",
                step.label,
                x.join_rows.unwrap_or_default(),
                x.join_dop.unwrap_or(1)
            ));
            tree_into(steps, i - 1, depth + 1, out);
            out.push(format!("{}{}", "  ".repeat(depth + 1), leaf_label(step)));
        }
        Attach::Cross => {
            out.push(format!("{pad}CrossJoin (dop {})", x.join_dop.unwrap_or(1)));
            tree_into(steps, i - 1, depth + 1, out);
            out.push(format!("{}{}", "  ".repeat(depth + 1), leaf_label(step)));
        }
        Attach::Flatten => {
            out.push(format!("{pad}Flatten {}", step.label));
            tree_into(steps, i - 1, depth + 1, out);
            out.push(format!("{}{}", "  ".repeat(depth + 1), leaf_label(step)));
        }
    }
}

/// One-line description of a step's row source.
fn leaf_label(step: &Step) -> String {
    let x = &step.exec;
    match &step.kind {
        StepKind::Scan {
            table,
            access,
            locals,
            keep,
        } => match access {
            Access::Probe { index, parts } => format!(
                "Probe {} [{table}] (index {index}, {} key parts)",
                step.label,
                parts.len()
            ),
            Access::Csr { index, .. } => format!(
                "CsrExpand {} [{table}] (index {index}, {} groups, {})",
                step.label,
                x.csr_groups.unwrap_or_default(),
                match x.list_out {
                    Some(false) => "flat",
                    _ => "list",
                }
            ),
            Access::Point { index, parts, .. } => format!(
                "Scan {} [{table}] (index {index}, point, {parts} key parts{})",
                step.label,
                filters_suffix(locals.len())
            ),
            Access::Range { index, .. } => format!(
                "Scan {} [{table}] (index {index}, range, {} rows{})",
                step.label,
                x.scan_rows.unwrap_or_default(),
                filters_suffix(locals.len())
            ),
            Access::Full => format!(
                "Scan {} [{table}] (full, {} rows, {} cols, dop {}{})",
                step.label,
                x.scan_rows.unwrap_or_default(),
                keep.len(),
                x.scan_dop.unwrap_or(1),
                filters_suffix(locals.len())
            ),
        },
        StepKind::Rel { rows, pushed, .. } => format!(
            "Rel {} ({rows} rows{})",
            step.label,
            filters_suffix(pushed.len())
        ),
        StepKind::LateralValues { rows, arity } => {
            format!("Values {} ({} rows, {arity} cols)", step.label, rows.len())
        }
        StepKind::LateralFunc { func, arity, .. } => {
            format!("Call {} ({func:?}, {arity} cols)", step.label)
        }
    }
}

fn filters_suffix(n: usize) -> String {
    if n == 0 {
        String::new()
    } else {
        format!(", {n} pushed filters")
    }
}
