//! # sqlgraph-rel — embedded relational engine
//!
//! A from-scratch relational database engine built as the substrate for the
//! SQLGraph reproduction (SIGMOD 2015). The paper runs on a commercial
//! RDBMS; this crate supplies the features its schema and Gremlin→SQL
//! translation actually exercise:
//!
//! * typed tables with hash and B-tree indexes (including composite keys),
//! * a SQL subset — `WITH` CTE pipelines, joins (inner/left-outer,
//!   index-nested-loop and hash), lateral `TABLE(VALUES …)` unnest,
//!   `UNION [ALL]`/`INTERSECT`/`EXCEPT`, `DISTINCT`, aggregates,
//!   `ORDER BY`/`LIMIT`/`OFFSET`, and the `JSON_VAL` accessor over JSON
//!   columns,
//! * MVCC snapshot-isolation transactions: lock-free snapshot reads over
//!   row version chains, multi-statement transactions via
//!   [`Database::begin`] / SQL `BEGIN`/`COMMIT`/`ROLLBACK` (see
//!   [`txn::Session`]), first-updater-wins conflict detection, and
//!   watermark-driven vacuum,
//! * DML atomicity (undo journal) and durability (checksummed WAL with
//!   commit timestamps + replay recovery),
//! * stored procedures (registered Rust closures) for the multi-table graph
//!   update operations.
//!
//! # Example
//!
//! ```
//! use sqlgraph_rel::{Database, Value};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE va (vid INTEGER PRIMARY KEY, attr JSON)").unwrap();
//! db.execute_with_params(
//!     "INSERT INTO va VALUES (?, ?)",
//!     &[Value::Int(1), Value::json(sqlgraph_json::parse(r#"{"name":"marko"}"#).unwrap())],
//! ).unwrap();
//! let rel = db.execute("SELECT JSON_VAL(attr, 'name') FROM va WHERE vid = 1").unwrap();
//! assert_eq!(rel.strings(), ["marko"]);
//! ```

pub mod batch;
pub mod checkpoint;
pub mod csr;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod hasher;
pub mod index;
pub mod io;
pub mod parallel;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod stats;
pub mod storage;
pub mod txn;
pub mod value;
pub mod wal;

// Morsel workers share the store's read paths across threads: tables (via
// read guards), values, and compiled expressions must stay `Sync`-clean.
// Breaking this (e.g. an `Rc` or `RefCell` inside `Value`) is a
// compile-time error here rather than a trait-bound error deep inside the
// parallel executor.
const _: () = {
    const fn sync_clean<T: Send + Sync>() {}
    sync_clean::<db::Database>();
    sync_clean::<storage::Table>();
    sync_clean::<value::Value>();
    sync_clean::<expr::Expr>();
    sync_clean::<exec::Relation>();
    sync_clean::<stats::TableStats>();
    sync_clean::<batch::Batch>();
    sync_clean::<batch::ColVec>();
};

pub use checkpoint::{CheckpointReport, RecoveryReport};
pub use db::{commit_many, Database, Txn};
pub use error::{Error, Result};
pub use exec::Relation;
pub use io::{Fault, FaultKind, SimFs, StdFs, Vfs};
pub use schema::{Column, ColumnType, TableSchema};
pub use stats::TableStats;
pub use txn::{Session, Snapshot, TsOracle};
pub use value::Value;
