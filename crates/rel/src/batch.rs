//! Columnar batches: the executor's vectorized data representation.
//!
//! A [`Batch`] holds a morsel's worth of rows column-wise: each column is a
//! [`ColVec`] — a typed vector (`Int`, `Float`, interned `Str`) with an
//! optional null bitmap, or a `Mixed` vector of [`Value`]s when a column
//! mixes types. A selection vector (`sel`) marks the live rows, so filters
//! narrow the selection without materializing survivors.
//!
//! The contract with the row engine is *byte identity*: converting a batch
//! back to rows ([`Batch::to_rows`]) must yield exactly the `Vec<Row>` the
//! row-at-a-time engine would have produced — same values (`Int` stays
//! `Int`, `Double` bit patterns preserved, `Str` contents identical), same
//! order (physical order filtered by the selection vector). The vectorized
//! predicate fast paths ([`PredSpec`]) replicate [`Value::sql_cmp`]
//! semantics exactly and *decline* (return `None`) whenever a column/constant
//! type combination falls outside the proven-identical cases; the executor
//! then falls back to evaluating the original scalar expression per row.
//!
//! Strings are interned per column: the column stores `u32` pool ids, and
//! the pool (`Arc<Vec<Arc<str>>>`) is shared by `gather`, so join outputs
//! never copy string bytes.

use crate::expr::{BinaryOp, Expr};
use crate::hasher::FxHashMap;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// Executor row (mirrors `exec::Row` without a circular import).
pub type Row = Vec<Value>;

/// One column of a batch.
#[derive(Debug, Clone)]
pub enum ColVec {
    /// 64-bit integers with an optional null bitmap.
    Int {
        vals: Vec<i64>,
        nulls: Option<Vec<u64>>,
    },
    /// 64-bit floats with an optional null bitmap.
    Float {
        vals: Vec<f64>,
        nulls: Option<Vec<u64>>,
    },
    /// Interned strings: `ids[i]` indexes into the shared `pool`.
    Str {
        ids: Vec<u32>,
        nulls: Option<Vec<u64>>,
        pool: Arc<Vec<Arc<str>>>,
    },
    /// Fallback for mixed-type columns (or Bool/Json/Array values).
    Mixed(Vec<Value>),
}

#[inline]
fn bit(nulls: &Option<Vec<u64>>, i: usize) -> bool {
    match nulls {
        Some(words) => (words[i / 64] >> (i % 64)) & 1 == 1,
        None => false,
    }
}

#[inline]
fn set_bit(nulls: &mut Option<Vec<u64>>, len: usize, i: usize) {
    let words = nulls.get_or_insert_with(|| vec![0u64; len.div_ceil(64)]);
    if words.len() < len.div_ceil(64) {
        words.resize(len.div_ceil(64), 0);
    }
    words[i / 64] |= 1 << (i % 64);
}

impl ColVec {
    /// Number of physical rows.
    pub fn len(&self) -> usize {
        match self {
            ColVec::Int { vals, .. } => vals.len(),
            ColVec::Float { vals, .. } => vals.len(),
            ColVec::Str { ids, .. } => ids.len(),
            ColVec::Mixed(vals) => vals.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether physical row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColVec::Int { nulls, .. } | ColVec::Float { nulls, .. } | ColVec::Str { nulls, .. } => {
                bit(nulls, i)
            }
            ColVec::Mixed(vals) => vals[i].is_null(),
        }
    }

    /// Materialize physical row `i` as a [`Value`]. Cheap for numeric
    /// columns; an `Arc` clone for strings.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColVec::Int { vals, nulls } => {
                if bit(nulls, i) {
                    Value::Null
                } else {
                    Value::Int(vals[i])
                }
            }
            ColVec::Float { vals, nulls } => {
                if bit(nulls, i) {
                    Value::Null
                } else {
                    Value::Double(vals[i])
                }
            }
            ColVec::Str { ids, nulls, pool } => {
                if bit(nulls, i) {
                    Value::Null
                } else {
                    Value::Str(pool[ids[i] as usize].clone())
                }
            }
            ColVec::Mixed(vals) => vals[i].clone(),
        }
    }

    /// Gather the physical rows at `idx` into a new dense column. String
    /// columns share the interned pool (no byte copies).
    pub fn gather(&self, idx: &[u32]) -> ColVec {
        match self {
            ColVec::Int { vals, nulls } => {
                let out: Vec<i64> = idx.iter().map(|&i| vals[i as usize]).collect();
                let out_nulls = gather_nulls(nulls, idx);
                ColVec::Int {
                    vals: out,
                    nulls: out_nulls,
                }
            }
            ColVec::Float { vals, nulls } => {
                let out: Vec<f64> = idx.iter().map(|&i| vals[i as usize]).collect();
                let out_nulls = gather_nulls(nulls, idx);
                ColVec::Float {
                    vals: out,
                    nulls: out_nulls,
                }
            }
            ColVec::Str { ids, nulls, pool } => {
                let out: Vec<u32> = idx.iter().map(|&i| ids[i as usize]).collect();
                let out_nulls = gather_nulls(nulls, idx);
                ColVec::Str {
                    ids: out,
                    nulls: out_nulls,
                    pool: pool.clone(),
                }
            }
            ColVec::Mixed(vals) => {
                ColVec::Mixed(idx.iter().map(|&i| vals[i as usize].clone()).collect())
            }
        }
    }
}

fn gather_nulls(nulls: &Option<Vec<u64>>, idx: &[u32]) -> Option<Vec<u64>> {
    let words = nulls.as_ref()?;
    let mut out: Option<Vec<u64>> = None;
    for (oi, &i) in idx.iter().enumerate() {
        let i = i as usize;
        if (words[i / 64] >> (i % 64)) & 1 == 1 {
            set_bit(&mut out, idx.len(), oi);
        }
    }
    out
}

/// Incremental, type-adaptive column builder. Starts untyped, picks a typed
/// representation from the first non-NULL value, and demotes to `Mixed`
/// when a later value does not fit (preserving every value exactly).
pub struct ColBuilder {
    state: BuilderState,
}

enum BuilderState {
    /// Only NULLs seen so far (`n` of them).
    Empty {
        n: usize,
    },
    Int {
        vals: Vec<i64>,
        nulls: Option<Vec<u64>>,
    },
    Float {
        vals: Vec<f64>,
        nulls: Option<Vec<u64>>,
    },
    Str {
        ids: Vec<u32>,
        nulls: Option<Vec<u64>>,
        pool: Vec<Arc<str>>,
        interned: FxHashMap<Arc<str>, u32>,
    },
    Mixed(Vec<Value>),
}

impl Default for ColBuilder {
    fn default() -> Self {
        ColBuilder::new()
    }
}

impl ColBuilder {
    /// A fresh, untyped builder.
    pub fn new() -> ColBuilder {
        ColBuilder {
            state: BuilderState::Empty { n: 0 },
        }
    }

    fn len(&self) -> usize {
        match &self.state {
            BuilderState::Empty { n } => *n,
            BuilderState::Int { vals, .. } => vals.len(),
            BuilderState::Float { vals, .. } => vals.len(),
            BuilderState::Str { ids, .. } => ids.len(),
            BuilderState::Mixed(vals) => vals.len(),
        }
    }

    /// Demote the current typed state to `Mixed`, reconstructing every value.
    fn demote(&mut self) {
        let len = self.len();
        let col = std::mem::replace(&mut self.state, BuilderState::Mixed(Vec::new()));
        let mut vals = Vec::with_capacity(len + 1);
        match col {
            BuilderState::Empty { n } => {
                vals.extend(std::iter::repeat_with(|| Value::Null).take(n))
            }
            BuilderState::Int { vals: v, nulls } => {
                for (i, x) in v.iter().enumerate() {
                    vals.push(if bit(&nulls, i) {
                        Value::Null
                    } else {
                        Value::Int(*x)
                    });
                }
            }
            BuilderState::Float { vals: v, nulls } => {
                for (i, x) in v.iter().enumerate() {
                    vals.push(if bit(&nulls, i) {
                        Value::Null
                    } else {
                        Value::Double(*x)
                    });
                }
            }
            BuilderState::Str {
                ids, nulls, pool, ..
            } => {
                for (i, id) in ids.iter().enumerate() {
                    vals.push(if bit(&nulls, i) {
                        Value::Null
                    } else {
                        Value::Str(pool[*id as usize].clone())
                    });
                }
            }
            BuilderState::Mixed(v) => vals = v,
        }
        self.state = BuilderState::Mixed(vals);
    }

    /// Append one value.
    pub fn push(&mut self, v: &Value) {
        // Untyped prefix: count NULLs, adopt a type on the first real value.
        if let BuilderState::Empty { n } = &self.state {
            let n = *n;
            match v {
                Value::Null => {
                    self.state = BuilderState::Empty { n: n + 1 };
                    return;
                }
                Value::Int(_) => {
                    let mut nulls = None;
                    for i in 0..n {
                        set_bit(&mut nulls, n + 1, i);
                    }
                    self.state = BuilderState::Int {
                        vals: vec![0; n],
                        nulls,
                    };
                }
                Value::Double(_) => {
                    let mut nulls = None;
                    for i in 0..n {
                        set_bit(&mut nulls, n + 1, i);
                    }
                    self.state = BuilderState::Float {
                        vals: vec![0.0; n],
                        nulls,
                    };
                }
                Value::Str(_) => {
                    let mut nulls = None;
                    for i in 0..n {
                        set_bit(&mut nulls, n + 1, i);
                    }
                    self.state = BuilderState::Str {
                        ids: vec![0; n],
                        nulls,
                        pool: Vec::new(),
                        interned: FxHashMap::default(),
                    };
                }
                _ => {
                    self.state = BuilderState::Mixed(
                        std::iter::repeat_with(|| Value::Null).take(n).collect(),
                    );
                }
            }
        }
        let len = self.len();
        match (&mut self.state, v) {
            (BuilderState::Int { vals, nulls }, Value::Int(x)) => {
                vals.push(*x);
                let _ = nulls;
            }
            (BuilderState::Int { vals, nulls }, Value::Null) => {
                vals.push(0);
                set_bit(nulls, len + 1, len);
            }
            (BuilderState::Float { vals, nulls }, Value::Double(x)) => {
                vals.push(*x);
                let _ = nulls;
            }
            (BuilderState::Float { vals, nulls }, Value::Null) => {
                vals.push(0.0);
                set_bit(nulls, len + 1, len);
            }
            (
                BuilderState::Str {
                    ids,
                    nulls,
                    pool,
                    interned,
                },
                Value::Str(s),
            ) => {
                let id = match interned.get(s.as_ref() as &str) {
                    Some(&id) => id,
                    None => {
                        let id = pool.len() as u32;
                        pool.push(s.clone());
                        interned.insert(s.clone(), id);
                        id
                    }
                };
                ids.push(id);
                let _ = nulls;
            }
            (BuilderState::Str { ids, nulls, .. }, Value::Null) => {
                ids.push(0);
                set_bit(nulls, len + 1, len);
            }
            (BuilderState::Mixed(vals), v) => vals.push(v.clone()),
            // Type mismatch: demote and retry (at most once per push).
            _ => {
                self.demote();
                if let BuilderState::Mixed(vals) = &mut self.state {
                    vals.push(v.clone());
                }
            }
        }
    }

    /// Finish into an immutable column.
    pub fn finish(self) -> ColVec {
        match self.state {
            BuilderState::Empty { n } => {
                // All-NULL column: a Mixed vector keeps it simple.
                ColVec::Mixed(std::iter::repeat_with(|| Value::Null).take(n).collect())
            }
            BuilderState::Int { vals, mut nulls } => {
                fit_mask(&mut nulls, vals.len());
                ColVec::Int { vals, nulls }
            }
            BuilderState::Float { vals, mut nulls } => {
                fit_mask(&mut nulls, vals.len());
                ColVec::Float { vals, nulls }
            }
            BuilderState::Str {
                ids,
                mut nulls,
                pool,
                ..
            } => {
                fit_mask(&mut nulls, ids.len());
                ColVec::Str {
                    ids,
                    nulls,
                    pool: Arc::new(pool),
                }
            }
            BuilderState::Mixed(vals) => ColVec::Mixed(vals),
        }
    }
}

fn fit_mask(nulls: &mut Option<Vec<u64>>, len: usize) {
    if let Some(words) = nulls {
        words.resize(len.div_ceil(64), 0);
    }
}

/// A columnar batch: columns, a physical row count, and an optional
/// selection vector of live physical row indexes (in physical order).
/// `sel: None` means every row is live.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Column vectors; all have `len` physical rows.
    pub cols: Vec<ColVec>,
    /// Physical row count.
    pub len: usize,
    /// Live rows (physical indexes, ascending). `None` = all live.
    pub sel: Option<Vec<u32>>,
}

impl Batch {
    /// Number of live (selected) rows.
    pub fn selected(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.len,
        }
    }

    /// Iterate live physical row indexes in order.
    pub fn live(&self) -> impl Iterator<Item = usize> + '_ {
        let (sel, all) = match &self.sel {
            Some(s) => (Some(s), 0..0),
            None => (None, 0..self.len),
        };
        sel.into_iter().flatten().map(|&i| i as usize).chain(all)
    }

    /// Build a dense batch (no selection) from rows of uniform width.
    pub fn from_rows(rows: &[Row], width: usize) -> Batch {
        let mut builders: Vec<ColBuilder> = (0..width).map(|_| ColBuilder::new()).collect();
        for row in rows {
            for (b, v) in builders.iter_mut().zip(row.iter()) {
                b.push(v);
            }
        }
        Batch {
            cols: builders.into_iter().map(ColBuilder::finish).collect(),
            len: rows.len(),
            sel: None,
        }
    }

    /// Materialize the live rows, in order — the boundary back to the row
    /// engine. Values are exactly the ones pushed in.
    pub fn to_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.selected());
        for i in self.live() {
            out.push(self.cols.iter().map(|c| c.value_at(i)).collect());
        }
        out
    }

    /// Materialize physical row `i` into `buf` (reused scratch row).
    pub fn read_row(&self, i: usize, buf: &mut Row) {
        buf.clear();
        for c in &self.cols {
            buf.push(c.value_at(i));
        }
    }

    /// Convert a [`crate::exec::Relation`]'s rows into a batch (columns are
    /// carried alongside by the caller).
    pub fn from_values(rows: &[Row], width: usize) -> Batch {
        Batch::from_rows(rows, width)
    }

    /// Concatenate many batches into one dense batch, applying every
    /// selection vector. Row order is preserved: batches in input order,
    /// live rows in physical order within each.
    pub fn compact(batches: &[Batch]) -> Batch {
        let width = batches.first().map(|b| b.cols.len()).unwrap_or(0);
        let total: usize = batches.iter().map(Batch::selected).sum();
        let mut builders: Vec<ColBuilder> = (0..width).map(|_| ColBuilder::new()).collect();
        for b in batches {
            for i in b.live() {
                for (bu, c) in builders.iter_mut().zip(&b.cols) {
                    // Value round-trip keeps the conversion simple and exact;
                    // typed columns re-form on the other side.
                    bu.push(&c.value_at(i));
                }
            }
        }
        Batch {
            cols: builders.into_iter().map(ColBuilder::finish).collect(),
            len: total,
            sel: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized predicates
// ---------------------------------------------------------------------------

/// A predicate shape with a columnar fast path. Compiled from the scalar
/// [`Expr`] whitelist by [`compile_spec`]; applied by [`PredSpec::try_apply`],
/// which declines (returns `None`) whenever the batch's column types fall
/// outside the cases proven identical to [`Value::sql_cmp`] semantics.
#[derive(Debug, Clone)]
pub enum PredSpec {
    /// `col OP const` (comparison operators only).
    Cmp {
        col: usize,
        op: BinaryOp,
        rhs: Value,
    },
    /// `(col % modulus) OP const` over integers.
    ModCmp {
        col: usize,
        modulus: i64,
        op: BinaryOp,
        rhs: i64,
    },
    /// `col IS [NOT] NULL`.
    IsNull { col: usize, negated: bool },
}

fn is_cmp(op: BinaryOp) -> bool {
    matches!(
        op,
        BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
    )
}

/// Mirror of the scalar comparison dispatch in `expr::eval_binary`.
#[inline]
fn ord_matches(op: BinaryOp, o: Ordering) -> bool {
    match op {
        BinaryOp::Eq => o == Ordering::Equal,
        BinaryOp::Ne => o != Ordering::Equal,
        BinaryOp::Lt => o == Ordering::Less,
        BinaryOp::Le => o != Ordering::Greater,
        BinaryOp::Gt => o == Ordering::Greater,
        BinaryOp::Ge => o != Ordering::Less,
        _ => unreachable!("comparison op"),
    }
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

/// Recognize a vectorizable predicate shape. Returns `None` for anything
/// outside the whitelist — the caller keeps the scalar expression as the
/// authoritative fallback.
pub fn compile_spec(e: &Expr) -> Option<PredSpec> {
    match e {
        Expr::IsNull(inner, negated) => match &**inner {
            Expr::Col(c) => Some(PredSpec::IsNull {
                col: *c,
                negated: *negated,
            }),
            _ => None,
        },
        Expr::Binary(op, l, r) if is_cmp(*op) => match (&**l, &**r) {
            (Expr::Col(c), Expr::Const(v)) => Some(PredSpec::Cmp {
                col: *c,
                op: *op,
                rhs: v.clone(),
            }),
            (Expr::Const(v), Expr::Col(c)) => Some(PredSpec::Cmp {
                col: *c,
                op: flip(*op),
                rhs: v.clone(),
            }),
            (Expr::Binary(BinaryOp::Mod, a, b), Expr::Const(Value::Int(k))) => match (&**a, &**b) {
                (Expr::Col(c), Expr::Const(Value::Int(m))) => Some(PredSpec::ModCmp {
                    col: *c,
                    modulus: *m,
                    op: *op,
                    rhs: *k,
                }),
                _ => None,
            },
            _ => None,
        },
        _ => None,
    }
}

impl PredSpec {
    /// Apply to the rows in `sel`, returning the surviving subset, or `None`
    /// when this batch's column type has no proven fast path (caller falls
    /// back to scalar evaluation). NULL comparisons are false (`sql_cmp`
    /// returns `None` → the predicate's `eval_bool` is false).
    pub fn try_apply(&self, batch: &Batch, sel: &[u32]) -> Option<Vec<u32>> {
        match self {
            PredSpec::IsNull { col, negated } => {
                let c = &batch.cols[*col];
                Some(
                    sel.iter()
                        .copied()
                        .filter(|&i| c.is_null(i as usize) != *negated)
                        .collect(),
                )
            }
            PredSpec::Cmp { col, op, rhs } => {
                if rhs.is_null() {
                    return Some(Vec::new());
                }
                match &batch.cols[*col] {
                    ColVec::Int { vals, nulls } => match rhs {
                        Value::Int(k) => Some(
                            sel.iter()
                                .copied()
                                .filter(|&i| {
                                    !bit(nulls, i as usize)
                                        && ord_matches(*op, vals[i as usize].cmp(k))
                                })
                                .collect(),
                        ),
                        Value::Double(k) => Some(
                            sel.iter()
                                .copied()
                                .filter(|&i| {
                                    !bit(nulls, i as usize)
                                        && (vals[i as usize] as f64)
                                            .partial_cmp(k)
                                            .is_some_and(|o| ord_matches(*op, o))
                                })
                                .collect(),
                        ),
                        // Incomparable types: sql_cmp is None → false for
                        // every row, NULL or not.
                        _ => Some(Vec::new()),
                    },
                    ColVec::Float { vals, nulls } => match rhs.as_f64() {
                        Some(k) => Some(
                            sel.iter()
                                .copied()
                                .filter(|&i| {
                                    !bit(nulls, i as usize)
                                        && vals[i as usize]
                                            .partial_cmp(&k)
                                            .is_some_and(|o| ord_matches(*op, o))
                                })
                                .collect(),
                        ),
                        None => Some(Vec::new()),
                    },
                    ColVec::Str { ids, nulls, pool } => match rhs {
                        Value::Str(k) => Some(
                            sel.iter()
                                .copied()
                                .filter(|&i| {
                                    !bit(nulls, i as usize)
                                        && ord_matches(
                                            *op,
                                            pool[ids[i as usize] as usize].as_ref().cmp(k.as_ref()),
                                        )
                                })
                                .collect(),
                        ),
                        _ => Some(Vec::new()),
                    },
                    ColVec::Mixed(_) => None,
                }
            }
            PredSpec::ModCmp {
                col,
                modulus,
                op,
                rhs,
            } => match &batch.cols[*col] {
                ColVec::Int { vals, nulls } => {
                    // `x % 0` is NULL, so every comparison against it is
                    // false (same for NULL inputs).
                    if *modulus == 0 {
                        return Some(Vec::new());
                    }
                    Some(
                        sel.iter()
                            .copied()
                            .filter(|&i| {
                                !bit(nulls, i as usize)
                                    && ord_matches(
                                        *op,
                                        vals[i as usize].wrapping_rem(*modulus).cmp(rhs),
                                    )
                            })
                            .collect(),
                    )
                }
                _ => None,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Packed integer vectors (CSR neighbor storage)
// ---------------------------------------------------------------------------

#[inline]
fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn zigzag_decode(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

/// A delta-encoded, null-suppressed integer vector with per-group restarts —
/// the compressed neighbor storage behind the CSR adjacency cache.
///
/// Values are stored as zigzag-varint deltas against the previous non-null
/// value *within the same group*; the delta base resets to 0 at every group
/// boundary so any group can be decoded independently given its logical
/// element range and without touching earlier groups' bytes. Nulls occupy a
/// bit in the bitmap but carry **no** payload bytes (null suppression).
#[derive(Debug, Clone)]
pub struct PackedIntVec {
    /// Zigzag-varint encoded deltas of the non-null elements, group by group.
    data: Vec<u8>,
    /// Null bitmap over *logical* element positions (None = no nulls).
    nulls: Option<Vec<u64>>,
    /// Total logical element count.
    len: usize,
    /// Byte offset in `data` where each group's encoding begins.
    group_starts: Vec<u32>,
}

impl PackedIntVec {
    /// Logical element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of encoded groups.
    pub fn group_count(&self) -> usize {
        self.group_starts.len()
    }

    /// Heap footprint of the encoding in bytes (payload + bitmap + starts).
    pub fn encoded_bytes(&self) -> usize {
        self.data.len()
            + self.nulls.as_ref().map_or(0, |w| w.len() * 8)
            + self.group_starts.len() * 4
    }

    /// Decode group `g`, whose elements occupy logical positions
    /// `lo..hi`, invoking `f` once per element in order (`None` = NULL).
    pub fn for_each_in_group(
        &self,
        g: usize,
        lo: usize,
        hi: usize,
        mut f: impl FnMut(Option<i64>),
    ) {
        let mut pos = self.group_starts[g] as usize;
        let mut prev: i64 = 0;
        for i in lo..hi {
            if bit(&self.nulls, i) {
                f(None);
                continue;
            }
            // Unrolled LEB128 varint decode.
            let mut shift = 0u32;
            let mut raw = 0u64;
            loop {
                let b = self.data[pos];
                pos += 1;
                raw |= u64::from(b & 0x7f) << shift;
                if b & 0x80 == 0 {
                    break;
                }
                shift += 7;
            }
            let v = prev.wrapping_add(zigzag_decode(raw));
            prev = v;
            f(Some(v));
        }
    }
}

/// Incremental writer for [`PackedIntVec`]. Call [`PackedIntWriter::begin_group`]
/// at each group boundary, then [`PackedIntWriter::push`] the group's elements.
#[derive(Debug, Default)]
pub struct PackedIntWriter {
    data: Vec<u8>,
    nulls: Option<Vec<u64>>,
    len: usize,
    group_starts: Vec<u32>,
    prev: i64,
}

impl PackedIntWriter {
    /// Fresh writer with no groups.
    pub fn new() -> PackedIntWriter {
        PackedIntWriter::default()
    }

    /// Start a new group: records the byte restart point and resets the
    /// delta base, so the group decodes independently.
    pub fn begin_group(&mut self) {
        self.group_starts.push(self.data.len() as u32);
        self.prev = 0;
    }

    /// Append one element to the current group (`None` = NULL, no payload).
    pub fn push(&mut self, v: Option<i64>) {
        match v {
            None => {
                set_bit(&mut self.nulls, self.len + 1, self.len);
                self.len += 1;
            }
            Some(v) => {
                let mut raw = zigzag_encode(v.wrapping_sub(self.prev));
                self.prev = v;
                loop {
                    let byte = (raw & 0x7f) as u8;
                    raw >>= 7;
                    if raw == 0 {
                        self.data.push(byte);
                        break;
                    }
                    self.data.push(byte | 0x80);
                }
                self.len += 1;
            }
        }
    }

    /// Seal the encoding.
    pub fn finish(mut self) -> PackedIntVec {
        if let Some(words) = &mut self.nulls {
            words.resize(self.len.div_ceil(64), 0);
        }
        PackedIntVec {
            data: self.data,
            nulls: self.nulls,
            len: self.len,
            group_starts: self.group_starts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(vals: &[Value]) -> ColVec {
        let mut b = ColBuilder::new();
        for x in vals {
            b.push(x);
        }
        b.finish()
    }

    #[test]
    fn builder_types_and_roundtrip() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(-3)];
        let c = v(&vals);
        assert!(matches!(c, ColVec::Int { .. }));
        for (i, x) in vals.iter().enumerate() {
            assert_eq!(&c.value_at(i), x);
        }

        let vals = vec![Value::Null, Value::Double(1.5), Value::Double(f64::NAN)];
        let c = v(&vals);
        assert!(matches!(c, ColVec::Float { .. }));
        assert!(c.is_null(0));
        assert_eq!(c.value_at(1), Value::Double(1.5));
        assert!(matches!(c.value_at(2), Value::Double(x) if x.is_nan()));

        let vals = vec![
            Value::str("a"),
            Value::str("b"),
            Value::str("a"),
            Value::Null,
        ];
        let c = v(&vals);
        match &c {
            ColVec::Str { ids, pool, .. } => {
                assert_eq!(pool.len(), 2, "duplicate strings intern to one id");
                assert_eq!(ids[0], ids[2]);
            }
            other => panic!("expected Str column, got {other:?}"),
        }
        for (i, x) in vals.iter().enumerate() {
            assert_eq!(&c.value_at(i), x);
        }
    }

    #[test]
    fn builder_demotes_on_mixed_types() {
        let vals = vec![
            Value::Int(1),
            Value::str("x"),
            Value::Null,
            Value::Bool(true),
        ];
        let c = v(&vals);
        assert!(matches!(c, ColVec::Mixed(_)));
        for (i, x) in vals.iter().enumerate() {
            assert_eq!(&c.value_at(i), x);
        }
        // Int column followed by a Double must also demote — value identity
        // (Int(1) vs Double(1.0)) has to survive the round trip.
        let vals = vec![Value::Int(1), Value::Double(1.0)];
        let c = v(&vals);
        assert!(matches!(c, ColVec::Mixed(_)));
        assert_eq!(c.value_at(0), Value::Int(1));
        assert!(matches!(c.value_at(1), Value::Double(_)));
    }

    #[test]
    fn batch_rows_roundtrip_and_selection() {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Null, Value::str("b")],
            vec![Value::Int(3), Value::Null],
        ];
        let mut b = Batch::from_rows(&rows, 2);
        assert_eq!(b.to_rows(), rows);
        b.sel = Some(vec![0, 2]);
        assert_eq!(b.to_rows(), vec![rows[0].clone(), rows[2].clone()]);
        let compacted = Batch::compact(&[b]);
        assert_eq!(compacted.len, 2);
        assert_eq!(compacted.to_rows(), vec![rows[0].clone(), rows[2].clone()]);
    }

    #[test]
    fn gather_shares_string_pool() {
        let rows: Vec<Row> = (0..10)
            .map(|i| vec![Value::str(format!("s{}", i % 3))])
            .collect();
        let b = Batch::from_rows(&rows, 1);
        let g = b.cols[0].gather(&[9, 0, 4]);
        assert_eq!(g.value_at(0), Value::str("s0"));
        assert_eq!(g.value_at(1), Value::str("s0"));
        assert_eq!(g.value_at(2), Value::str("s1"));
        match (&b.cols[0], &g) {
            (ColVec::Str { pool: a, .. }, ColVec::Str { pool: c, .. }) => {
                assert!(Arc::ptr_eq(a, c), "gather must share the pool");
            }
            _ => panic!("expected Str columns"),
        }
    }

    /// Differential check: every PredSpec fast path must agree with the
    /// scalar evaluator on every value/constant combination it accepts.
    #[test]
    fn pred_specs_match_scalar_eval() {
        let columns: Vec<Vec<Value>> = vec![
            vec![
                Value::Int(-2),
                Value::Int(0),
                Value::Int(3),
                Value::Null,
                Value::Int(7),
            ],
            vec![
                Value::Double(-0.5),
                Value::Double(0.0),
                Value::Null,
                Value::Double(f64::NAN),
                Value::Double(3.0),
            ],
            vec![
                Value::str("a"),
                Value::str("bb"),
                Value::Null,
                Value::str(""),
                Value::str("a"),
            ],
        ];
        let consts = vec![
            Value::Int(0),
            Value::Int(3),
            Value::Double(0.0),
            Value::Double(2.5),
            Value::str("a"),
            Value::Null,
            Value::Bool(true),
        ];
        let ops = [
            BinaryOp::Eq,
            BinaryOp::Ne,
            BinaryOp::Lt,
            BinaryOp::Le,
            BinaryOp::Gt,
            BinaryOp::Ge,
        ];
        for col_vals in &columns {
            let batch = Batch {
                cols: vec![v(col_vals)],
                len: col_vals.len(),
                sel: None,
            };
            let all: Vec<u32> = (0..col_vals.len() as u32).collect();
            for k in &consts {
                for op in ops {
                    let e =
                        Expr::Binary(op, Box::new(Expr::Col(0)), Box::new(Expr::Const(k.clone())));
                    let spec = compile_spec(&e).expect("cmp shape compiles");
                    let Some(got) = spec.try_apply(&batch, &all) else {
                        continue;
                    };
                    let want: Vec<u32> = col_vals
                        .iter()
                        .enumerate()
                        .filter(|(_, x)| e.eval_bool(std::slice::from_ref(x)).unwrap())
                        .map(|(i, _)| i as u32)
                        .collect();
                    assert_eq!(got, want, "op {op:?} const {k:?} col {col_vals:?}");
                }
            }
        }
        // Mod comparisons, including modulus 0.
        for m in [0i64, 2, 3, -3] {
            for k in [0i64, 1, -1] {
                let e = Expr::Binary(
                    BinaryOp::Eq,
                    Box::new(Expr::Binary(
                        BinaryOp::Mod,
                        Box::new(Expr::Col(0)),
                        Box::new(Expr::Const(Value::Int(m))),
                    )),
                    Box::new(Expr::Const(Value::Int(k))),
                );
                let spec = compile_spec(&e).expect("mod shape compiles");
                let col_vals = &columns[0];
                let batch = Batch {
                    cols: vec![v(col_vals)],
                    len: col_vals.len(),
                    sel: None,
                };
                let all: Vec<u32> = (0..col_vals.len() as u32).collect();
                let got = spec.try_apply(&batch, &all).expect("int column");
                let want: Vec<u32> = col_vals
                    .iter()
                    .enumerate()
                    .filter(|(_, x)| e.eval_bool(std::slice::from_ref(x)).unwrap())
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "mod {m} = {k}");
            }
        }
        // IS NULL / IS NOT NULL.
        for negated in [false, true] {
            for col_vals in &columns {
                let e = Expr::IsNull(Box::new(Expr::Col(0)), negated);
                let spec = compile_spec(&e).expect("is-null shape compiles");
                let batch = Batch {
                    cols: vec![v(col_vals)],
                    len: col_vals.len(),
                    sel: None,
                };
                let all: Vec<u32> = (0..col_vals.len() as u32).collect();
                let got = spec.try_apply(&batch, &all).expect("always applies");
                let want: Vec<u32> = col_vals
                    .iter()
                    .enumerate()
                    .filter(|(_, x)| e.eval_bool(std::slice::from_ref(x)).unwrap())
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "IS NULL negated={negated}");
            }
        }
    }
}

#[cfg(test)]
mod packed_tests {
    use super::*;

    #[test]
    fn packed_roundtrip_with_nulls_and_groups() {
        let groups: Vec<Vec<Option<i64>>> = vec![
            vec![Some(5), Some(7), None, Some(6)],
            vec![],
            vec![None, None],
            vec![Some(-3), Some(i64::MAX), Some(i64::MIN), Some(0)],
            vec![Some(1_000_000_000_000), Some(1_000_000_000_001)],
        ];
        let mut w = PackedIntWriter::new();
        for g in &groups {
            w.begin_group();
            for &x in g {
                w.push(x);
            }
        }
        let packed = w.finish();
        assert_eq!(packed.group_count(), groups.len());
        assert_eq!(packed.len(), groups.iter().map(Vec::len).sum::<usize>());
        let mut lo = 0;
        for (gi, g) in groups.iter().enumerate() {
            let hi = lo + g.len();
            let mut got = Vec::new();
            packed.for_each_in_group(gi, lo, hi, |x| got.push(x));
            assert_eq!(&got, g, "group {gi}");
            lo = hi;
        }
    }

    #[test]
    fn packed_groups_decode_independently() {
        // Decoding a later group must not depend on having decoded earlier
        // ones: the delta base restarts per group.
        let mut w = PackedIntWriter::new();
        w.begin_group();
        for i in 0..100 {
            w.push(Some(i * 17));
        }
        w.begin_group();
        w.push(Some(42));
        w.push(Some(43));
        let packed = w.finish();
        let mut got = Vec::new();
        packed.for_each_in_group(1, 100, 102, |x| got.push(x));
        assert_eq!(got, vec![Some(42), Some(43)]);
    }

    #[test]
    fn packed_delta_encoding_compresses_sorted_runs() {
        // Sorted neighbor ids with small gaps should take ~1 byte each.
        let mut w = PackedIntWriter::new();
        w.begin_group();
        for i in 0..1000i64 {
            w.push(Some(5_000_000 + i * 3));
        }
        let packed = w.finish();
        // First value pays full varint width; the rest are 1-byte deltas.
        assert!(
            packed.encoded_bytes() < 1024 + 16,
            "expected ~1 byte/elem, got {}",
            packed.encoded_bytes()
        );
        // Nulls are suppressed: a null carries bitmap bits but no payload.
        let mut w = PackedIntWriter::new();
        w.begin_group();
        for i in 0..64 {
            w.push(if i % 2 == 0 { Some(i) } else { None });
        }
        let with_nulls = w.finish();
        assert!(with_nulls.encoded_bytes() <= 32 + 8 + 4);
    }
}
