//! The `Database` facade: catalog, statement execution, transactions,
//! stored procedures, and WAL-backed recovery.
//!
//! Concurrency model: MVCC with snapshot isolation (see [`crate::txn`]).
//! Every statement — and every multi-statement transaction begun with
//! [`Database::begin`] — reads through a snapshot of the commit clock, so
//! readers take only brief shared table guards and never block on writers.
//! Writers install *provisional* row versions under their transaction
//! token, holding a table's write lock only while applying one statement's
//! mutations to that table; write-write races fail fast with
//! [`Error::TxnConflict`] (first-updater-wins). Commits serialize on the
//! transaction manager: redo records are appended to the WAL with the
//! commit timestamp, provisional versions are stamped, and the clock
//! advances last. Rollback walks the undo journal in reverse. Old versions
//! are reclaimed by [`Database::vacuum`] below the oldest-active-snapshot
//! watermark.
//!
//! Two residual locking rules keep the rare multi-lock paths safe: a
//! write statement compiles its expressions (which may read other tables
//! for subqueries) *before* taking the target's write lock, and
//! checkpoints exclude commits via `commit_lock`. A `coarse_writes` toggle
//! restores the pre-MVCC readers-queue-behind-writers behavior as a
//! benchmark baseline: write transactions hold a store-wide lock
//! exclusively from begin to commit, autocommit reads take it shared.

use crate::checkpoint::{self, CheckpointReport, RecoveryReport};
use crate::error::{Error, Result};
use crate::exec::{run_select, Env, Relation, Row};
use crate::expr::{BinaryOp, Expr};
use crate::hasher::FxHashMap;
use crate::index::{IndexKey, IndexKind, KeyPart, RowId};
use crate::io::{StdFs, Vfs};
use crate::schema::{Column, ColumnType, TableSchema};
use crate::sql::ast::{self, Statement};
use crate::sql::parse_statement;
use crate::storage::Table;
use crate::txn::{Snapshot, TsOracle, TxnManager};
use crate::value::Value;
use crate::wal::{segment_path, Wal, WalRecord};
use parking_lot::lock_api::{ArcRwLockReadGuard, ArcRwLockWriteGuard};
use parking_lot::{Mutex, RawRwLock, RwLock};
use std::path::Path;
use std::sync::Arc;

/// Read guard over a table.
pub type TableReadGuard = ArcRwLockReadGuard<RawRwLock, Table>;
/// Write guard over a table.
pub type TableWriteGuard = ArcRwLockWriteGuard<RawRwLock, Table>;

/// A stored procedure: runs inside the caller's transaction.
pub type Procedure = dyn Fn(&mut Txn<'_>, &[Value]) -> Result<Relation> + Send + Sync;

/// An embedded relational database.
pub struct Database {
    tables: RwLock<FxHashMap<String, Arc<RwLock<Table>>>>,
    procedures: RwLock<FxHashMap<String, Arc<Procedure>>>,
    wal: Option<Mutex<Wal>>,
    /// Prepared-statement cache: SQL text → parsed AST. Bounded with
    /// second-chance (clock) eviction: hits set a used bit, and when the
    /// cache is full an insert sweeps out entries whose bit is clear.
    stmt_cache: RwLock<FxHashMap<String, CachedStmt>>,
    /// Cost-based join planner switch (on by default). Off = left-to-right
    /// attachment in textual FROM order, for A/B comparison and debugging.
    planner: std::sync::atomic::AtomicBool,
    /// Intra-query parallelism: 0 = auto (planner picks a DOP from table
    /// statistics), 1 = serial, n > 1 = pin every eligible operator to n.
    parallelism: std::sync::atomic::AtomicUsize,
    /// Columnar batch execution switch (on by default). Off = the executor
    /// materializes `Vec<Row>` everywhere, for A/B comparison and
    /// differential testing against the batch engine.
    batch: std::sync::atomic::AtomicBool,
    /// Commit vs checkpoint exclusion. Commits hold this shared across the
    /// WAL append + version stamping, so a checkpoint (exclusive) never
    /// snapshots table state whose WAL records would land in the
    /// post-snapshot segment (which replay would then double-apply).
    /// Autocommit DDL additionally holds it shared across catalog
    /// application, since catalog changes are not versioned.
    commit_lock: RwLock<()>,
    /// MVCC state: commit clock, token allocator, active snapshots.
    txns: TxnManager,
    /// Benchmark baseline switch: when set, UPDATE/DELETE hold the target
    /// table's write lock for the whole statement (compilation included),
    /// reproducing the pre-MVCC per-table-lock behavior for A/B runs.
    coarse_writes: std::sync::atomic::AtomicBool,
    /// The coarse baseline's transaction-scope lock (only used while
    /// `coarse_writes` is set): write transactions hold it exclusively
    /// from begin to commit — the two-phase-locking discipline a
    /// non-versioned store needs — and autocommit reads take it shared,
    /// so readers wait out concurrent write transactions exactly as they
    /// would under per-table locks (every LinkBench write touches the
    /// same hot attribute/adjacency tables the reads scan). MVCC mode
    /// never touches this lock.
    coarse_txn_lock: Arc<RwLock<()>>,
    /// Commits since the last automatic vacuum.
    commits_since_vacuum: std::sync::atomic::AtomicU64,
    /// CSR adjacency access path switch (on by default). Off = probes run
    /// index nested-loop row-at-a-time, for A/B and differential testing.
    csr: std::sync::atomic::AtomicBool,
    /// Lazily built CSR adjacency entries, keyed by (table, index, kept
    /// columns). Entries are validated against the table's content version
    /// and commit clock on every lookup (see [`Database::csr_for`]) so a
    /// stale entry is never served.
    csr_cache: RwLock<FxHashMap<crate::csr::CsrKey, Arc<crate::csr::CsrEntry>>>,
    /// Total CSR builds performed (cache-miss observability for tests).
    csr_builds: std::sync::atomic::AtomicU64,
    /// What recovery found, when this database was opened from a log.
    recovery: Option<RecoveryReport>,
}

/// One statement-cache entry. The used bit gives recently-hit entries a
/// second chance during eviction.
struct CachedStmt {
    stmt: Arc<Statement>,
    used: std::sync::atomic::AtomicBool,
}

/// Statement-cache capacity.
const STMT_CACHE_CAP: usize = 4096;

/// Automatic vacuum cadence: reclaim dead row versions after this many
/// commits (checkpoints also vacuum, so long-lived databases converge
/// even with a quieter write load).
const VACUUM_EVERY_COMMITS: u64 = 4096;

/// Second-chance eviction: drop entries whose used bit is clear, clearing
/// bits as we sweep, until the cache is at 3/4 capacity. A second pass
/// (over now-cleared bits) guarantees progress even when every entry was
/// recently hit.
fn evict_unused(cache: &mut FxHashMap<String, CachedStmt>) {
    let target = STMT_CACHE_CAP * 3 / 4;
    for _ in 0..2 {
        if cache.len() <= target {
            return;
        }
        let mut excess = cache.len() - target;
        cache.retain(|_, entry| {
            if excess == 0 {
                return true;
            }
            if entry.used.swap(false, std::sync::atomic::Ordering::Relaxed) {
                true
            } else {
                excess -= 1;
                false
            }
        });
    }
}

/// Pinned DOP from `SQLGRAPH_TEST_DOP` (used by CI to force every
/// eligible operator parallel); 0 = auto when unset or unparsable.
fn env_test_dop() -> usize {
    use std::sync::OnceLock;
    static DOP: OnceLock<usize> = OnceLock::new();
    *DOP.get_or_init(|| {
        std::env::var("SQLGRAPH_TEST_DOP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    })
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables.read().keys().collect::<Vec<_>>())
            .field("wal", &self.wal.is_some())
            .finish()
    }
}

/// One undo entry, applied in reverse order on rollback. DML entries are
/// slim — the version chains hold the row images; rollback pops the
/// provisional version (or clears the provisional delete marker).
#[derive(Debug)]
enum UndoOp {
    Insert {
        table: String,
        row_id: RowId,
    },
    Delete {
        table: String,
        row_id: RowId,
    },
    Update {
        table: String,
        row_id: RowId,
    },
    CreateTable {
        table: String,
    },
    CreateIndex {
        table: String,
        index: String,
    },
    DropTable {
        table: String,
        handle: Arc<RwLock<Table>>,
    },
}

impl UndoOp {
    /// The `(table, row_id)` a DML undo entry targets — the set of rows
    /// whose provisional stamps the commit path must finalize.
    fn dml_target(&self) -> Option<(&str, RowId)> {
        match self {
            UndoOp::Insert { table, row_id }
            | UndoOp::Delete { table, row_id }
            | UndoOp::Update { table, row_id } => Some((table, *row_id)),
            _ => None,
        }
    }
}

/// Per-transaction journal: undo for rollback, redo for the WAL.
#[derive(Debug, Default)]
struct Journal {
    undo: Vec<UndoOp>,
    redo: Vec<WalRecord>,
}

/// The execution state of one open transaction: its MVCC snapshot (which
/// also carries the provisional-write token) and its undo/redo journal.
/// Owned by a [`Txn`] handle or a [`crate::txn::Session`].
pub struct TxnState {
    pub(crate) snap: Snapshot,
    journal: Journal,
    /// Whether `snap` is registered in the active-snapshot set (and so
    /// must be released exactly once).
    registered: bool,
    /// Held exclusively from begin to commit when the `coarse_writes`
    /// baseline is active; `None` in MVCC mode.
    coarse_guard: Option<ArcRwLockWriteGuard<RawRwLock, ()>>,
}

impl std::fmt::Debug for TxnState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnState")
            .field("snap", &self.snap)
            .field("registered", &self.registered)
            .finish_non_exhaustive()
    }
}

impl Default for TxnState {
    /// An inert placeholder (used by `std::mem::take` when a stored
    /// procedure temporarily adopts a statement's state): unregistered,
    /// empty journal, all-committed snapshot.
    fn default() -> TxnState {
        TxnState {
            snap: Snapshot::latest(),
            journal: Journal::default(),
            registered: false,
            coarse_guard: None,
        }
    }
}

impl TxnState {
    /// The transaction's snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.snap
    }

    fn is_empty(&self) -> bool {
        self.journal.undo.is_empty() && self.journal.redo.is_empty()
    }
}

impl Database {
    /// A fresh in-memory database (no durability) with a private
    /// commit-timestamp oracle.
    pub fn new() -> Database {
        Database::new_with_oracle(Arc::new(TsOracle::new()))
    }

    /// A fresh in-memory database drawing commit timestamps from `oracle`.
    /// Sharded deployments hand one oracle to every shard so cross-shard
    /// commits carry a single globally ordered timestamp (see
    /// [`commit_many`]).
    pub fn new_with_oracle(oracle: Arc<TsOracle>) -> Database {
        Database {
            tables: RwLock::new(FxHashMap::default()),
            procedures: RwLock::new(FxHashMap::default()),
            wal: None,
            stmt_cache: RwLock::new(FxHashMap::default()),
            planner: std::sync::atomic::AtomicBool::new(true),
            parallelism: std::sync::atomic::AtomicUsize::new(env_test_dop()),
            batch: std::sync::atomic::AtomicBool::new(true),
            commit_lock: RwLock::new(()),
            txns: TxnManager::with_oracle(oracle),
            coarse_writes: std::sync::atomic::AtomicBool::new(false),
            coarse_txn_lock: Arc::new(RwLock::new(())),
            commits_since_vacuum: std::sync::atomic::AtomicU64::new(0),
            csr: std::sync::atomic::AtomicBool::new(true),
            csr_cache: RwLock::new(FxHashMap::default()),
            csr_builds: std::sync::atomic::AtomicU64::new(0),
            recovery: None,
        }
    }

    /// The MVCC transaction manager (clock, active snapshots, watermark).
    pub fn txns(&self) -> &TxnManager {
        &self.txns
    }

    /// The commit-timestamp oracle this database allocates from (share it
    /// via [`Database::new_with_oracle`] to coordinate several databases).
    pub fn timestamp_oracle(&self) -> Arc<TsOracle> {
        self.txns.oracle().clone()
    }

    /// Whether the coarse per-table-lock write baseline is active.
    pub fn coarse_writes(&self) -> bool {
        self.coarse_writes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Toggle the coarse write baseline (off by default): write
    /// transactions hold [`Database::coarse_txn_lock`] exclusively from
    /// begin to commit and autocommit reads take it shared — the
    /// pre-MVCC readers-queue-behind-writers behavior, kept for honest
    /// before/after throughput comparisons.
    pub fn set_coarse_writes(&self, on: bool) {
        self.coarse_writes
            .store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// Whether the cost-based join planner is enabled.
    pub fn planner_enabled(&self) -> bool {
        self.planner.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Toggle the cost-based join planner (on by default). When off, FROM
    /// items attach strictly left to right, as written.
    ///
    /// Flushes the prepared-statement cache: anything derived under the old
    /// setting must not be replayed under the new one.
    pub fn set_planner_enabled(&self, on: bool) {
        self.planner.store(on, std::sync::atomic::Ordering::Relaxed);
        self.stmt_cache.write().clear();
    }

    /// Whether columnar batch execution is enabled.
    pub fn batch_enabled(&self) -> bool {
        self.batch.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Toggle columnar batch execution (on by default). When off, every
    /// operator materializes rows — byte-identical output, for A/B and
    /// differential testing. Flushes the prepared-statement cache.
    pub fn set_batch_enabled(&self, on: bool) {
        self.batch.store(on, std::sync::atomic::Ordering::Relaxed);
        self.stmt_cache.write().clear();
    }

    /// Whether the CSR adjacency access path is enabled.
    pub fn csr_enabled(&self) -> bool {
        self.csr.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Toggle the CSR adjacency access path (on by default). When off, the
    /// planner falls back to row-at-a-time index nested-loop probes —
    /// byte-identical output, for A/B and differential testing. Flushes the
    /// prepared-statement cache and drops every cached CSR entry.
    pub fn set_csr_enabled(&self, on: bool) {
        self.csr.store(on, std::sync::atomic::Ordering::Relaxed);
        self.stmt_cache.write().clear();
        self.csr_cache.write().clear();
    }

    /// Number of cached CSR adjacency entries (test hook).
    pub fn csr_cache_len(&self) -> usize {
        self.csr_cache.read().len()
    }

    /// Total CSR entries built since startup, cached or private (test hook:
    /// a cache hit leaves this unchanged, an invalidation forces a rebuild
    /// and increments it).
    pub fn csr_builds(&self) -> u64 {
        self.csr_builds.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Drop every cached CSR entry built over `table` (case-insensitive).
    /// Called on `ANALYZE` and `DROP TABLE`: both mark points where caches
    /// derived from the old table contents must not linger.
    pub fn invalidate_csr(&self, table: &str) {
        let lower = table.to_ascii_lowercase();
        self.csr_cache.write().retain(|k, _| k.table != lower);
    }

    /// Fetch or build the CSR entry for (`table`, `index`, `keep`) as seen
    /// by `snap`, where `t` is the already-acquired read guard over
    /// `table`.
    ///
    /// Cache discipline (the MVCC contract):
    /// * Only read-only snapshots (`token == 0`) touch the shared cache.
    ///   A reader inside a transaction gets a **private** entry built
    ///   against its own snapshot, so it can never observe a CSR rebuilt
    ///   past that snapshot by a concurrent committer.
    /// * A cached entry is served only while the table's content version
    ///   still equals the entry's build version (any insert/delete/update,
    ///   commit stamp, rollback, vacuum prune, index DDL, or `ANALYZE`
    ///   bumps it — this is also what invalidates an entry when the row
    ///   count drifts past the stats-staleness threshold) **and** the
    ///   snapshot is at or past the table's newest commit timestamp.
    /// * A freshly built entry is published only under the same
    ///   conditions; otherwise it stays private to the calling query.
    pub(crate) fn csr_for(
        &self,
        t: &Table,
        table: &str,
        index: &str,
        keep: &[usize],
        snap: Snapshot,
    ) -> Result<Arc<crate::csr::CsrEntry>> {
        let key = crate::csr::CsrKey {
            table: table.to_string(),
            index: index.to_string(),
            keep: keep.to_vec(),
        };
        // The caller holds the table's read guard, so the content version
        // cannot change while we validate, build, or publish.
        let version = t.content_version();
        let cacheable = snap.token == 0 && snap.ts >= t.last_commit_ts();
        if snap.token == 0 {
            let hit = self.csr_cache.read().get(&key).cloned();
            if let Some(entry) = hit {
                if entry.built_version == version && cacheable {
                    return Ok(entry);
                }
                // Stale: evict so the cache length reflects reality.
                let mut cache = self.csr_cache.write();
                if cache.get(&key).is_some_and(|e| e.built_version != version) {
                    cache.remove(&key);
                }
            }
        }
        let entry = Arc::new(crate::csr::CsrEntry::build(t, index, keep, snap)?);
        self.csr_builds
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if cacheable {
            self.csr_cache.write().insert(key, entry.clone());
        }
        Ok(entry)
    }

    /// Set intra-query parallelism: `0` = auto (the planner picks a DOP
    /// from table statistics and stays serial below a row threshold),
    /// `1` = force serial, `n > 1` = pin every eligible operator to `n`
    /// workers regardless of input size (for differential testing).
    ///
    /// Flushes the prepared-statement cache: anything derived under the old
    /// setting must not be replayed under the new one.
    pub fn set_parallelism(&self, n: usize) {
        self.parallelism
            .store(n, std::sync::atomic::Ordering::Relaxed);
        self.stmt_cache.write().clear();
    }

    /// Current parallelism setting (see [`Database::set_parallelism`]).
    pub fn parallelism(&self) -> usize {
        self.parallelism.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Degree of parallelism for an operator over `rows` input rows. In
    /// auto mode small inputs run serial (thread handoff would dominate);
    /// a pinned DOP applies to everything but trivial inputs so tests can
    /// drive the parallel operators with tiny corpora.
    pub fn dop_for(&self, rows: usize) -> usize {
        match self.parallelism() {
            1 => 1,
            0 if rows >= crate::parallel::AUTO_PARALLEL_MIN_ROWS => crate::parallel::max_workers(),
            0 => 1,
            n if rows >= 2 => n.min(64),
            _ => 1,
        }
    }

    /// Parse `sql`, consulting the prepared-statement cache first. DDL and
    /// transaction-control statements are never cached (rare, and DDL must
    /// observe catalog changes).
    pub(crate) fn parse_cached(&self, sql: &str) -> Result<Arc<Statement>> {
        if let Some(entry) = self.stmt_cache.read().get(sql) {
            entry.used.store(true, std::sync::atomic::Ordering::Relaxed);
            return Ok(entry.stmt.clone());
        }
        let stmt = Arc::new(parse_statement(sql)?);
        let cacheable = matches!(
            &*stmt,
            Statement::Select(_)
                | Statement::Insert { .. }
                | Statement::Update { .. }
                | Statement::Delete { .. }
                | Statement::Call { .. }
        );
        if cacheable {
            let mut cache = self.stmt_cache.write();
            if cache.len() >= STMT_CACHE_CAP {
                evict_unused(&mut cache);
            }
            cache.insert(
                sql.to_string(),
                CachedStmt {
                    stmt: stmt.clone(),
                    used: std::sync::atomic::AtomicBool::new(false),
                },
            );
        }
        Ok(stmt)
    }

    /// Validate `sql` and warm the shared prepared-statement cache (the
    /// wire server's `Prepare` path). Parse errors surface here rather
    /// than at execute time; later executions of the same text — from any
    /// session — hit the cache.
    pub fn prepare(&self, sql: &str) -> Result<()> {
        self.parse_cached(sql).map(|_| ())
    }

    /// Number of cached prepared statements (test hook).
    pub fn stmt_cache_len(&self) -> usize {
        self.stmt_cache.read().len()
    }

    /// Open a database backed by the log rooted at `wal_path`: the latest
    /// checkpoint snapshot (if any) is loaded, the WAL segments it anchors
    /// are replayed commit-by-commit, torn/corrupt/commit-less tails are
    /// truncated away, and new commits append to the active segment.
    pub fn open(wal_path: impl AsRef<Path>) -> Result<Database> {
        Database::open_with_vfs(wal_path, Arc::new(StdFs))
    }

    /// [`Database::open`] over an explicit file-system layer — the entry
    /// point for deterministic crash testing with [`crate::io::SimFs`].
    pub fn open_with_vfs(wal_path: impl AsRef<Path>, vfs: Arc<dyn Vfs>) -> Result<Database> {
        Database::open_with_vfs_oracle(wal_path, vfs, Arc::new(TsOracle::new()))
    }

    /// [`Database::open_with_vfs`] drawing commit timestamps from a shared
    /// `oracle`. Recovery ratchets the oracle past every replayed commit,
    /// so opening N shards against one oracle leaves it beyond the newest
    /// commit any shard has seen.
    pub fn open_with_vfs_oracle(
        wal_path: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
        oracle: Arc<TsOracle>,
    ) -> Result<Database> {
        let base = wal_path.as_ref().to_path_buf();
        let mut report = RecoveryReport::default();
        let mut db = Database::new_with_oracle(oracle);

        // 1. Snapshot, if a checkpoint was ever taken. A stray temp file
        //    from an interrupted checkpoint is ignored (and cleaned up).
        let mut start_gen = 0;
        if let Some(snap) = checkpoint::load_snapshot(vfs.as_ref(), &base)? {
            report.snapshot_gen = Some(snap.gen);
            report.snapshot_tables = snap.tables.len();
            start_gen = snap.gen;
            db.txns.restore_clock(snap.clock);
            let mut tables = db.tables.write();
            for t in snap.tables {
                tables.insert(t.schema.name.clone(), Arc::new(RwLock::new(t)));
            }
        }
        let tmp = checkpoint::snapshot_tmp_path(&base);
        if vfs.exists(&tmp) {
            let _ = vfs.remove(&tmp);
        }
        // Segments older than the snapshot are fully covered by it; retire
        // leftovers from a checkpoint that crashed before deleting them.
        for gen in 0..start_gen {
            let stale = segment_path(&base, gen);
            if vfs.exists(&stale) {
                let _ = vfs.remove(&stale);
            }
        }

        // 2. Tail replay: segments are created in order, so walk forward
        //    from the snapshot generation until one is missing.
        let mut active_gen = start_gen;
        let mut gen = start_gen;
        loop {
            let path = segment_path(&base, gen);
            if !vfs.exists(&path) {
                break;
            }
            let scan = Wal::scan_segment(vfs.as_ref(), &path)?;
            report.segments_scanned += 1;
            report.commits_replayed += scan.commits.len();
            report.records_replayed += scan.commits.iter().map(|(_, r)| r.len()).sum::<usize>();
            report.dangling_records += scan.dangling_records;
            report.bytes_truncated += scan.file_len - scan.valid_len;
            db.replay_commits(&scan.commits)?;
            // Truncate past the last commit marker *before* appending:
            // anything left there (torn tail, corrupt record, commit-less
            // batch) would make every later commit unreadable on the next
            // replay, silently losing acknowledged transactions.
            if scan.file_len > scan.valid_len {
                vfs.truncate(&path, scan.valid_len)
                    .map_err(|e| Error::Wal(format!("truncate torn tail: {e}")))?;
            }
            active_gen = gen;
            gen += 1;
        }

        db.wal = Some(Mutex::new(Wal::open_segment(vfs, &base, active_gen)?));
        db.recovery = Some(report);
        Ok(db)
    }

    /// What recovery found when this database was opened from a log;
    /// `None` for in-memory databases.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Turn on fsync-per-commit durability (off by default for benchmarks).
    pub fn set_sync_on_commit(&self, sync: bool) {
        if let Some(wal) = &self.wal {
            wal.lock().sync_on_commit = sync;
        }
    }

    /// Checkpoint: atomically install a full-state snapshot and rotate the
    /// WAL to a fresh segment, bounding the next recovery to the snapshot
    /// plus the post-checkpoint tail. Old segments are retired afterwards
    /// (best-effort; leftovers are cleaned up on the next open).
    ///
    /// Crash-safe at every step: the snapshot only becomes visible through
    /// the final rename, and commits are excluded for the duration, so the
    /// snapshot/segment boundary is exact.
    pub fn checkpoint(&self) -> Result<CheckpointReport> {
        // Reclaim dead versions first (outside the commit lock — vacuum
        // takes table write locks of its own): the snapshot encodes only
        // latest-committed versions anyway, and a trimmed slab is cheaper
        // to serialize.
        self.vacuum();
        let _commit = self.commit_lock.write();
        let wal_slot = self
            .wal
            .as_ref()
            .ok_or_else(|| Error::Invalid("checkpoint: in-memory database has no WAL".into()))?;
        let mut wal = wal_slot.lock();
        let vfs = wal.vfs();
        let base = wal.base().to_path_buf();
        let old_gen = wal.gen();
        let new_gen = old_gen + 1;

        // Open the fresh segment first: if this fails nothing has changed,
        // and a stray empty segment file is harmless to recovery (it scans
        // as zero commits).
        let new_file = vfs
            .append(&segment_path(&base, new_gen))
            .map_err(|e| Error::Wal(format!("checkpoint: open segment {new_gen}: {e}")))?;

        // Serialize a consistent image: the exclusive commit lock keeps
        // every writer out, and read guards cover concurrent readers.
        let names = self.table_names();
        let guards: Vec<TableReadGuard> = names
            .iter()
            .map(|n| self.read_table(n))
            .collect::<Result<_>>()?;
        let refs: Vec<&Table> = guards.iter().map(|g| &**g).collect();
        let bytes = checkpoint::encode_snapshot(new_gen, self.txns.now(), &refs);
        let written = checkpoint::install_snapshot(vfs.as_ref(), &base, &bytes)?;

        // The snapshot is durable and anchors generation `new_gen`; switch
        // the writer (infallible) and retire covered segments.
        wal.install_segment(new_gen, new_file);
        let mut retired = 0;
        for gen in (0..new_gen).rev() {
            let old = segment_path(&base, gen);
            if !vfs.exists(&old) {
                break;
            }
            if vfs.remove(&old).is_ok() {
                retired += 1;
            }
        }
        Ok(CheckpointReport {
            gen: new_gen,
            bytes: written,
            tables: names.len(),
            retired_segments: retired,
        })
    }

    /// Apply recovered commits. Each operation targets the physical row id
    /// recorded at commit time; ids are remapped when replay assigns a
    /// different slab slot than the original run did (the original slab may
    /// contain tombstones from rolled-back transactions, which the WAL —
    /// correctly — knows nothing about). Replay uses the destructive table
    /// paths (every recovered commit is committed state — no version
    /// history to preserve) and restores the commit clock to the highest
    /// replayed timestamp.
    fn replay_commits(&mut self, commits: &[(u64, Vec<WalRecord>)]) -> Result<()> {
        let mut id_map: FxHashMap<(String, RowId), RowId> = FxHashMap::default();
        let mut max_ts = 0;
        for (ts, commit) in commits {
            max_ts = max_ts.max(*ts);
            for record in commit {
                match record {
                    WalRecord::Ddl { sql } => {
                        // An autocommit DDL can be logged by a checkpoint's
                        // covering snapshot *and* sit in the replayed tail
                        // when the checkpoint raced a multi-statement
                        // transaction; re-creating is then a benign no-op.
                        match self.execute(sql) {
                            Ok(_) => {}
                            Err(Error::Schema(msg)) if msg.contains("already exists") => {}
                            Err(e) => return Err(e),
                        }
                    }
                    WalRecord::Insert { table, row_id, row } => {
                        let mut t = self.write_table(table)?;
                        let new_id = t.insert(row.clone())?;
                        id_map.insert((table.clone(), *row_id), new_id);
                    }
                    WalRecord::Delete { table, row_id, .. } => {
                        let id = id_map.remove(&(table.clone(), *row_id)).unwrap_or(*row_id);
                        let mut t = self.write_table(table)?;
                        t.delete(id).map_err(|e| {
                            Error::Wal(format!("replay delete {table}[{row_id}]: {e}"))
                        })?;
                    }
                    WalRecord::Update {
                        table, row_id, new, ..
                    } => {
                        let id = id_map
                            .get(&(table.clone(), *row_id))
                            .copied()
                            .unwrap_or(*row_id);
                        let mut t = self.write_table(table)?;
                        t.update(id, new.clone()).map_err(|e| {
                            Error::Wal(format!("replay update {table}[{row_id}]: {e}"))
                        })?;
                    }
                    // Commit markers are consumed by the segment scanner;
                    // tolerate one appearing in a group defensively.
                    WalRecord::Commit { .. } => {}
                }
            }
        }
        self.txns.restore_clock(max_ts);
        Ok(())
    }

    // ---- catalog ----

    /// Handle to a table's lock.
    fn table_handle(&self, name: &str) -> Result<Arc<RwLock<Table>>> {
        let lower = name.to_ascii_lowercase();
        self.tables
            .read()
            .get(&lower)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table '{name}'")))
    }

    /// Acquire a read lock on a table.
    pub fn read_table(&self, name: &str) -> Result<TableReadGuard> {
        Ok(self.table_handle(name)?.read_arc())
    }

    /// Acquire a write lock on a table.
    pub fn write_table(&self, name: &str) -> Result<TableWriteGuard> {
        Ok(self.table_handle(name)?.write_arc())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Live row count of a table.
    pub fn table_len(&self, name: &str) -> Result<usize> {
        Ok(self.read_table(name)?.len())
    }

    /// Rough in-memory footprint of all row data in bytes — the analogue of
    /// the paper's on-disk size comparison (§5.1).
    pub fn estimated_bytes(&self) -> usize {
        let mut total = 0;
        for name in self.table_names() {
            if let Ok(t) = self.read_table(&name) {
                for (_, row) in t.iter() {
                    total += row.iter().map(value_bytes).sum::<usize>();
                }
            }
        }
        total
    }

    /// Register a stored procedure under `name` (case-insensitive).
    pub fn register_procedure(&self, name: impl Into<String>, proc: Arc<Procedure>) {
        self.procedures
            .write()
            .insert(name.into().to_ascii_lowercase(), proc);
    }

    // ---- statement execution ----

    /// Parse and execute one statement in auto-commit mode.
    pub fn execute(&self, sql: &str) -> Result<Relation> {
        self.execute_with_params(sql, &[])
    }

    /// Parse and execute one statement with positional `?` parameters.
    /// Parsed statements are cached by SQL text.
    pub fn execute_with_params(&self, sql: &str, params: &[Value]) -> Result<Relation> {
        let stmt = self.parse_cached(sql)?;
        self.execute_statement(&stmt, params, Some(sql))
    }

    /// Execute a pre-parsed statement in autocommit mode: reads run
    /// lock-free against a fresh snapshot; writes run as a one-statement
    /// MVCC transaction (begin, apply provisionally, commit).
    pub fn execute_statement(
        &self,
        stmt: &Statement,
        params: &[Value],
        sql_text: Option<&str>,
    ) -> Result<Relation> {
        if matches!(stmt, Statement::Select(_) | Statement::Explain(_)) {
            // Read-only fast path: a registered read snapshot (token 0),
            // nothing to journal, nothing to commit. Under the coarse
            // baseline the read additionally waits out any in-flight
            // write transaction (shared lock) — the cost MVCC removes.
            let _coarse = self.coarse_writes().then(|| self.coarse_txn_lock.read());
            let mut state = TxnState {
                snap: self.txns.read_snapshot(),
                journal: Journal::default(),
                registered: true,
                coarse_guard: None,
            };
            let result = self.execute_in(stmt, params, sql_text, &mut state);
            self.release_state(state);
            return result;
        }
        // Catalog changes are not versioned, so an autocommit DDL holds
        // the commit lock shared across application + commit — a
        // checkpoint can then never snapshot a catalog state whose DDL
        // commit lands in the post-snapshot segment (or gets rolled back).
        let _ddl_guard = matches!(
            stmt,
            Statement::CreateTable { .. }
                | Statement::CreateIndex { .. }
                | Statement::DropTable { .. }
        )
        .then(|| self.commit_lock.read());
        let mut state = self.begin_state();
        match self.execute_in(stmt, params, sql_text, &mut state) {
            Ok(rel) => self.commit_state(state).map(|()| rel),
            Err(e) => {
                self.rollback_state(state);
                Err(e)
            }
        }
    }

    /// Begin a multi-statement snapshot-isolation transaction. Dropping
    /// the returned handle without [`Txn::commit`] rolls it back.
    pub fn begin(&self) -> Txn<'_> {
        Txn {
            db: self,
            stmts: 0,
            state: Some(self.begin_state()),
        }
    }

    /// Run `f` inside a transaction: every statement executed through the
    /// provided [`Txn`] shares one snapshot and journal; on `Ok` the
    /// journal commits to the WAL, on `Err` all changes are rolled back.
    pub fn transaction<T>(&self, f: impl FnOnce(&mut Txn<'_>) -> Result<T>) -> Result<T> {
        let mut txn = self.begin();
        match f(&mut txn) {
            Ok(v) => txn.commit().map(|()| v),
            Err(e) => {
                txn.rollback();
                Err(e)
            }
        }
    }

    pub(crate) fn begin_state(&self) -> TxnState {
        // Baseline mode: a transaction is a lock-holding writer for its
        // whole lifetime (two-phase locking); readers queue behind it.
        let coarse_guard = self
            .coarse_writes()
            .then(|| self.coarse_txn_lock.write_arc());
        TxnState {
            snap: self.txns.begin(),
            journal: Journal::default(),
            registered: true,
            coarse_guard,
        }
    }

    /// Commit protocol: serialize on the transaction manager, reserve a
    /// fresh timestamp from the oracle, append redo + `Commit{ts}` to the
    /// WAL, stamp every provisional version with `ts` (shared table guards
    /// — stamps are atomics), and advance the applied clock *last* so any
    /// snapshot at the new clock value observes the commit in full.
    pub(crate) fn commit_state(&self, state: TxnState) -> Result<()> {
        if state.is_empty() {
            self.release_state(state);
            return Ok(());
        }
        {
            // `read_recursive` because autocommit DDL already holds this
            // lock shared; a queued checkpoint writer must not wedge us.
            let commit_guard = self.commit_lock.read_recursive();
            let serial = self.txns.commit_mutex.lock();
            let ts = self.txns.allocate_ts();
            if let (Some(wal), false) = (&self.wal, state.journal.redo.is_empty()) {
                if let Err(e) = wal.lock().append_commit(&state.journal.redo, ts) {
                    // A failed commit must not leave its mutations visible:
                    // the caller got an error, so the in-memory state rolls
                    // back. (The WAL may still hold the transaction — an
                    // errored commit is indeterminate until the next open.)
                    drop(serial);
                    drop(commit_guard);
                    self.rollback_state(state);
                    return Err(e);
                }
            }
            let token = state.snap.token;
            for op in &state.journal.undo {
                if let Some((table, row_id)) = op.dml_target() {
                    // The table can be gone if this transaction also
                    // dropped it; its versions are unreachable then.
                    if let Ok(t) = self.read_table(table) {
                        t.stamp_commit(row_id, token, ts);
                    }
                }
            }
            self.txns.advance_clock(ts);
        }
        self.release_state(state);
        self.maybe_vacuum();
        Ok(())
    }

    pub(crate) fn rollback_state(&self, state: TxnState) {
        let TxnState {
            snap,
            journal,
            registered,
            // Keep the baseline's transaction lock held until the undo
            // walk finishes (dropped at end of scope).
            coarse_guard: _coarse_guard,
        } = state;
        for op in journal.undo.into_iter().rev() {
            // Rollback must not fail; violations here indicate a bug, and
            // panicking beats silently corrupting state.
            match op {
                UndoOp::Insert { table, row_id } => {
                    self.write_table(&table)
                        .expect("table exists during rollback")
                        .rollback_insert(row_id, snap.token);
                }
                UndoOp::Delete { table, row_id } => {
                    self.write_table(&table)
                        .expect("table exists during rollback")
                        .rollback_delete(row_id, snap.token);
                }
                UndoOp::Update { table, row_id } => {
                    self.write_table(&table)
                        .expect("table exists during rollback")
                        .rollback_update(row_id, snap.token);
                }
                UndoOp::CreateTable { table } => {
                    self.tables.write().remove(&table);
                }
                UndoOp::CreateIndex { table, index } => {
                    let mut t = self
                        .write_table(&table)
                        .expect("table exists during rollback");
                    assert!(t.drop_index(&index), "undo create index");
                }
                UndoOp::DropTable { table, handle } => {
                    self.tables.write().insert(table, handle);
                }
            }
        }
        if registered {
            self.txns.release(snap);
        }
    }

    fn release_state(&self, state: TxnState) {
        if state.registered {
            self.txns.release(state.snap);
        }
    }

    /// Reclaim row versions no active (or future) snapshot can see — those
    /// with a committed `end` at or below the oldest-active-snapshot
    /// watermark. Returns the number of versions pruned. Runs
    /// automatically every [`VACUUM_EVERY_COMMITS`] commits and at the
    /// start of every checkpoint.
    pub fn vacuum(&self) -> usize {
        let watermark = self.txns.watermark();
        let mut pruned = 0;
        for name in self.table_names() {
            if let Ok(mut t) = self.write_table(&name) {
                pruned += t.vacuum(watermark);
            }
        }
        pruned
    }

    fn maybe_vacuum(&self) {
        let n = self
            .commits_since_vacuum
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        if n.is_multiple_of(VACUUM_EVERY_COMMITS) {
            self.vacuum();
        }
    }

    pub(crate) fn execute_in(
        &self,
        stmt: &Statement,
        params: &[Value],
        sql_text: Option<&str>,
        state: &mut TxnState,
    ) -> Result<Relation> {
        let snap = state.snap;
        match stmt {
            Statement::Select(select) => {
                let env = Env::with_snap(self, params, snap);
                run_select(&env, select)
            }
            Statement::Explain(select) => {
                let trace = std::cell::RefCell::new(Vec::new());
                let mut env = Env::with_snap(self, params, snap);
                env.trace = Some(&trace);
                let rel = run_select(&env, select)?;
                let mut rows: Vec<Row> = trace
                    .into_inner()
                    .into_iter()
                    .map(|line| vec![Value::str(line)])
                    .collect();
                rows.push(vec![Value::str(format!("result: {} rows", rel.rows.len()))]);
                Ok(Relation {
                    columns: vec!["plan".into()],
                    rows,
                })
            }
            Statement::Insert {
                table,
                columns,
                source,
            } => self.exec_insert(table, columns.as_deref(), source, params, state),
            Statement::Update {
                table,
                assignments,
                filter,
            } => self.exec_update(table, assignments, filter.as_ref(), params, state),
            Statement::Delete { table, filter } => {
                self.exec_delete(table, filter.as_ref(), params, state)
            }
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                let created = self.create_table_internal(name, columns, *if_not_exists)?;
                if created {
                    state.journal.redo.push(WalRecord::Ddl {
                        sql: sql_text
                            .map(str::to_owned)
                            .unwrap_or_else(|| render_create_table(name, columns)),
                    });
                    state.journal.undo.push(UndoOp::CreateTable {
                        table: name.to_ascii_lowercase(),
                    });
                }
                Ok(count_relation(created as i64))
            }
            Statement::CreateIndex {
                name,
                table,
                columns,
                unique,
                kind,
                if_not_exists,
            } => {
                let created = self.create_index_internal(
                    name,
                    table,
                    columns,
                    *unique,
                    *kind,
                    *if_not_exists,
                )?;
                if created {
                    state.journal.redo.push(WalRecord::Ddl {
                        sql: sql_text.map(str::to_owned).unwrap_or_else(|| {
                            render_create_index(name, table, columns, *unique, *kind)
                        }),
                    });
                    state.journal.undo.push(UndoOp::CreateIndex {
                        table: table.to_ascii_lowercase(),
                        index: name.to_ascii_lowercase(),
                    });
                }
                Ok(count_relation(created as i64))
            }
            Statement::DropTable { name, if_exists } => {
                let lower = name.to_ascii_lowercase();
                let removed = self.tables.write().remove(&lower);
                if removed.is_none() && !*if_exists {
                    return Err(Error::NotFound(format!("table '{name}'")));
                }
                let dropped = removed.is_some();
                if let Some(handle) = removed {
                    // Cached statements were planned against this table's
                    // schema; a later CREATE TABLE under the same name
                    // must not serve plans bound to the dropped
                    // incarnation. Same for CSR entries built over it.
                    self.stmt_cache.write().clear();
                    self.invalidate_csr(&lower);
                    state.journal.redo.push(WalRecord::Ddl {
                        sql: format!("DROP TABLE IF EXISTS {lower}"),
                    });
                    state.journal.undo.push(UndoOp::DropTable {
                        table: lower,
                        handle,
                    });
                }
                Ok(count_relation(dropped as i64))
            }
            Statement::Call { name, args } => {
                let proc = self
                    .procedures
                    .read()
                    .get(&name.to_ascii_lowercase())
                    .cloned()
                    .ok_or_else(|| Error::NotFound(format!("procedure '{name}'")))?;
                let env = Env::with_snap(self, params, snap);
                let empty_scope_args: Vec<Value> = args
                    .iter()
                    .map(|a| crate::exec::compile_scalar(&env, a).and_then(|e| e.eval(&[])))
                    .collect::<Result<_>>()?;
                // The procedure adopts this statement's transaction state
                // (snapshot + journal) for the duration of the call; an
                // inert placeholder stands in until it returns.
                let mut txn = Txn {
                    db: self,
                    stmts: 0,
                    state: Some(std::mem::take(state)),
                };
                let result = proc(&mut txn, &empty_scope_args);
                *state = txn.state.take().expect("procedure kept the txn open");
                result
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => Err(Error::Invalid(
                "BEGIN/COMMIT/ROLLBACK control a session transaction; \
                 use txn::Session or Database::begin"
                    .into(),
            )),
            Statement::Analyze { table } => {
                // Full-scan statistics collection; not journaled or WAL'd —
                // stats are derived state, rebuilt by re-running ANALYZE.
                let names = match table {
                    Some(t) => vec![t.to_ascii_lowercase()],
                    None => self.table_names(),
                };
                let mut rows = Vec::new();
                for name in names {
                    {
                        let mut t = self.write_table(&name)?;
                        let stats = crate::stats::TableStats::analyze(&t);
                        let count = stats.row_count as i64;
                        t.set_stats(stats);
                        rows.push(vec![Value::str(name.clone()), Value::Int(count)]);
                    }
                    // Fresh statistics mark a reload/bulk-change boundary:
                    // drop any CSR adjacency entries built from the old
                    // table contents (set_stats also bumped the content
                    // version, so a lingering entry could never be served —
                    // this keeps the cache from pinning dead memory).
                    self.invalidate_csr(&name);
                }
                Ok(Relation {
                    columns: vec!["table".into(), "rows".into()],
                    rows,
                })
            }
        }
    }

    // ---- DML ----

    fn exec_insert(
        &self,
        table_name: &str,
        columns: Option<&[String]>,
        source: &ast::InsertSource,
        params: &[Value],
        state: &mut TxnState,
    ) -> Result<Relation> {
        let env = Env::with_snap(self, params, state.snap);
        // Materialize the source rows *before* locking the target table.
        let source_rows: Vec<Row> = match source {
            ast::InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut values = Vec::with_capacity(row.len());
                    for e in row {
                        values.push(crate::exec::compile_scalar(&env, e)?.eval(&[])?);
                    }
                    out.push(values);
                }
                out
            }
            ast::InsertSource::Select(query) => run_select(&env, query)?.rows,
        };

        let token = state.snap.token;
        let mut table = self.write_table(table_name)?;
        let lower = table.schema.name.clone();
        // Map through the explicit column list if given.
        let mapping: Option<Vec<usize>> = match columns {
            None => None,
            Some(cols) => Some(
                cols.iter()
                    .map(|c| {
                        table
                            .schema
                            .column_index(c)
                            .ok_or_else(|| Error::NotFound(format!("column '{c}'")))
                    })
                    .collect::<Result<_>>()?,
            ),
        };
        let arity = table.schema.arity();
        let mut inserted = 0i64;
        for src in source_rows {
            let full = match &mapping {
                None => src,
                Some(map) => {
                    if src.len() != map.len() {
                        return Err(Error::Schema(format!(
                            "INSERT provides {} values for {} columns",
                            src.len(),
                            map.len()
                        )));
                    }
                    let mut full = vec![Value::Null; arity];
                    for (v, &target) in src.into_iter().zip(map) {
                        full[target] = v;
                    }
                    full
                }
            };
            let row_image = full.clone();
            let row_id = table.mvcc_insert(full, token)?;
            state.journal.undo.push(UndoOp::Insert {
                table: lower.clone(),
                row_id,
            });
            state.journal.redo.push(WalRecord::Insert {
                table: lower.clone(),
                row_id,
                row: row_image,
            });
            inserted += 1;
        }
        Ok(count_relation(inserted))
    }

    fn exec_update(
        &self,
        table_name: &str,
        assignments: &[(String, ast::Expr)],
        filter: Option<&ast::Expr>,
        params: &[Value],
        state: &mut TxnState,
    ) -> Result<Relation> {
        let snap = state.snap;
        let env = Env::with_snap(self, params, snap);
        // Compile against a schema clone under a brief read guard, so
        // subquery evaluation never runs while this statement holds a
        // write lock: two concurrent writers cannot deadlock on inverted
        // table orders, and a statement whose subquery reads its own
        // target table cannot wedge itself. (The coarse baseline's lock
        // scope lives at the transaction level — `coarse_txn_lock`, held
        // from begin to commit — not here.)
        let schema = self.read_table(table_name)?.schema.clone();
        let lower = schema.name.clone();
        let compiled_filter = filter
            .map(|f| crate::exec::compile_table_expr(&env, &schema, f))
            .transpose()?;
        let compiled_assignments: Vec<(usize, Expr)> = assignments
            .iter()
            .map(|(col, e)| {
                let idx = schema
                    .column_index(col)
                    .ok_or_else(|| Error::NotFound(format!("column '{col}'")))?;
                Ok((idx, crate::exec::compile_table_expr(&env, &schema, e)?))
            })
            .collect::<Result<_>>()?;

        let mut table = self.write_table(table_name)?;
        let token = snap.token;
        let targets = find_target_rows(&table, compiled_filter.as_ref(), snap)?;
        let mut updated = 0i64;
        for row_id in targets {
            let old: Row = table
                .get_visible(row_id, snap)
                .expect("target visible under write lock")
                .to_vec();
            let mut new = old.clone();
            for (idx, e) in &compiled_assignments {
                new[*idx] = e.eval(&old)?;
            }
            table.mvcc_update(row_id, new.clone(), token, snap)?;
            state.journal.undo.push(UndoOp::Update {
                table: lower.clone(),
                row_id,
            });
            state.journal.redo.push(WalRecord::Update {
                table: lower.clone(),
                row_id,
                old,
                new,
            });
            updated += 1;
        }
        Ok(count_relation(updated))
    }

    fn exec_delete(
        &self,
        table_name: &str,
        filter: Option<&ast::Expr>,
        params: &[Value],
        state: &mut TxnState,
    ) -> Result<Relation> {
        let snap = state.snap;
        let env = Env::with_snap(self, params, snap);
        // Sources before the target's write lock — see exec_update.
        let schema = self.read_table(table_name)?.schema.clone();
        let lower = schema.name.clone();
        let compiled_filter = filter
            .map(|f| crate::exec::compile_table_expr(&env, &schema, f))
            .transpose()?;
        let mut table = self.write_table(table_name)?;
        let token = snap.token;
        let targets = find_target_rows(&table, compiled_filter.as_ref(), snap)?;
        let mut deleted = 0i64;
        for row_id in targets {
            let row: Row = table
                .get_visible(row_id, snap)
                .expect("target visible under write lock")
                .to_vec();
            table.mvcc_delete(row_id, token, snap)?;
            state.journal.undo.push(UndoOp::Delete {
                table: lower.clone(),
                row_id,
            });
            state.journal.redo.push(WalRecord::Delete {
                table: lower.clone(),
                row_id,
                row,
            });
            deleted += 1;
        }
        Ok(count_relation(deleted))
    }

    /// Programmatic table creation.
    pub fn create_table(&self, schema: TableSchema, primary_key: Option<&str>) -> Result<()> {
        let columns: Vec<(String, ColumnType, bool)> = schema
            .columns
            .iter()
            .map(|c| {
                (
                    c.name.clone(),
                    c.ty,
                    primary_key.is_some_and(|pk| pk.eq_ignore_ascii_case(&c.name)),
                )
            })
            .collect();
        self.create_table_internal(&schema.name, &columns, false)?;
        Ok(())
    }

    fn create_table_internal(
        &self,
        name: &str,
        columns: &[(String, ColumnType, bool)],
        if_not_exists: bool,
    ) -> Result<bool> {
        let lower = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&lower) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(Error::Schema(format!("table '{name}' already exists")));
        }
        let schema = TableSchema::new(
            lower.clone(),
            columns
                .iter()
                .map(|(n, ty, _)| Column {
                    name: n.to_ascii_lowercase(),
                    ty: *ty,
                })
                .collect(),
        )?;
        let mut table = Table::new(schema);
        for (i, (col, _, pk)) in columns.iter().enumerate() {
            if *pk {
                table.create_index(format!("{lower}_pk_{col}"), vec![i], true, IndexKind::Hash)?;
            }
        }
        tables.insert(lower, Arc::new(RwLock::new(table)));
        Ok(true)
    }

    fn create_index_internal(
        &self,
        name: &str,
        table: &str,
        columns: &[ast::IndexColumn],
        unique: bool,
        kind: IndexKind,
        if_not_exists: bool,
    ) -> Result<bool> {
        let mut t = self.write_table(table)?;
        let parts: Vec<KeyPart> = columns
            .iter()
            .map(|c| {
                let pos = t
                    .schema
                    .column_index(&c.column)
                    .ok_or_else(|| Error::NotFound(format!("column '{}'", c.column)))?;
                Ok(match &c.json_key {
                    Some(member) => KeyPart::JsonKey(pos, member.clone()),
                    None => KeyPart::Column(pos),
                })
            })
            .collect::<Result<_>>()?;
        let lname = name.to_ascii_lowercase();
        if t.indexes().iter().any(|i| i.name == lname) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(Error::Schema(format!("index '{name}' already exists")));
        }
        t.create_index_with_parts(lname, parts, unique, kind)?;
        Ok(true)
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

/// A transaction handle: statements executed through it share one MVCC
/// snapshot and one undo/redo journal. Dropping the handle without
/// [`Txn::commit`] rolls the transaction back.
pub struct Txn<'a> {
    db: &'a Database,
    /// `Some` while the transaction is open; taken by commit/rollback (and
    /// by the stored-procedure trampoline, which puts it back).
    state: Option<TxnState>,
    /// Statements executed through this handle — benchmarks use the count
    /// to charge one client round trip per statement.
    stmts: u64,
}

impl<'a> Txn<'a> {
    /// The underlying database (for catalog inspection and procedures).
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// The transaction's snapshot.
    pub fn snapshot(&self) -> Snapshot {
        self.state().snap
    }

    /// How many statements have executed through this handle.
    pub fn statements_executed(&self) -> u64 {
        self.stmts
    }

    fn state(&self) -> &TxnState {
        self.state.as_ref().expect("transaction is open")
    }

    /// Execute a statement inside this transaction.
    pub fn execute(&mut self, sql: &str) -> Result<Relation> {
        self.execute_with_params(sql, &[])
    }

    /// Execute a parameterized statement inside this transaction.
    pub fn execute_with_params(&mut self, sql: &str, params: &[Value]) -> Result<Relation> {
        let stmt = self.db.parse_cached(sql)?;
        self.execute_statement(&stmt, params, Some(sql))
    }

    /// Execute a pre-parsed statement inside this transaction.
    pub fn execute_statement(
        &mut self,
        stmt: &Statement,
        params: &[Value],
        sql_text: Option<&str>,
    ) -> Result<Relation> {
        let state = self.state.as_mut().expect("transaction is open");
        self.stmts += 1;
        self.db.execute_in(stmt, params, sql_text, state)
    }

    /// Commit: append the journal to the WAL with a fresh commit timestamp
    /// and make every provisional version visible. Consumes the handle.
    pub fn commit(mut self) -> Result<()> {
        let state = self.state.take().expect("transaction is open");
        self.db.commit_state(state)
    }

    /// Roll back every change made through this handle. Consumes it.
    /// (Dropping the handle without committing does the same.)
    pub fn rollback(mut self) {
        if let Some(state) = self.state.take() {
            self.db.rollback_state(state);
        }
    }
}

impl Drop for Txn<'_> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            self.db.rollback_state(state);
        }
    }
}

/// Commit several open transactions — each on its own [`Database`] — as one
/// atomic unit carrying a single commit timestamp. The sharded store's
/// two-shard commit path: a cross-shard edge insert journals on the source
/// shard (EA + out-adjacency) and the target shard (in-adjacency), and both
/// must become visible at the same instant of the shared clock.
///
/// Requirements:
/// * every participating database must share one [`TsOracle`] (databases
///   constructed via [`Database::new_with_oracle`] /
///   [`Database::open_with_vfs_oracle`]); otherwise every transaction is
///   rolled back and an error returned,
/// * concurrent callers must pass their participants in a single global
///   order (e.g. ascending shard index) — commit locks are taken in the
///   order given, and inconsistent orders can deadlock.
///
/// Failure semantics match [`Txn::commit`]: if any WAL append fails, every
/// participant's in-memory state is rolled back and the caller gets an
/// error, but WALs appended *before* the failing one retain the commit —
/// durably indeterminate until reconciliation at the next open (the sharded
/// store repairs such torn cross-shard commits from the source shard's EA).
pub fn commit_many(txns: Vec<Txn<'_>>) -> Result<()> {
    // Strip inert participants: nothing journaled means nothing to commit.
    let mut parts: Vec<(&Database, TxnState)> = Vec::new();
    for mut txn in txns {
        let state = txn.state.take().expect("transaction is open");
        if state.is_empty() {
            txn.db.release_state(state);
        } else {
            parts.push((txn.db, state));
        }
    }
    if parts.is_empty() {
        return Ok(());
    }
    if parts.len() == 1 {
        let (db, state) = parts.pop().expect("one participant");
        return db.commit_state(state);
    }
    let oracle = parts[0].0.txns.oracle().clone();
    if parts
        .iter()
        .any(|(db, _)| !Arc::ptr_eq(db.txns.oracle(), &oracle))
    {
        for (db, state) in parts {
            db.rollback_state(state);
        }
        return Err(Error::Invalid(
            "commit_many: participating databases do not share a timestamp oracle".into(),
        ));
    }
    {
        // Lock phase, in caller order: checkpoint exclusion then commit
        // serialization per participant, mirroring the single-db protocol.
        let _commit_guards: Vec<_> = parts
            .iter()
            .map(|(db, _)| db.commit_lock.read_recursive())
            .collect();
        let serials: Vec<_> = parts
            .iter()
            .map(|(db, _)| db.txns.commit_mutex.lock())
            .collect();
        let ts = oracle.allocate();
        // WAL appends in caller order. A failure after earlier appends
        // leaves those shards' logs carrying the commit — repaired by
        // reconciliation on reopen; the in-memory state rolls back whole.
        let mut failed = None;
        for (db, state) in &parts {
            if state.journal.redo.is_empty() {
                continue;
            }
            if let Some(wal) = &db.wal {
                if let Err(e) = wal.lock().append_commit(&state.journal.redo, ts) {
                    failed = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failed {
            drop(serials);
            for (db, state) in parts {
                db.rollback_state(state);
            }
            return Err(e);
        }
        // Stamp every provisional version everywhere, then advance each
        // participant's applied clock: a reader on any shard either sees
        // the whole commit (its clock reached `ts`) or none of it.
        for (db, state) in &parts {
            let token = state.snap.token;
            for op in &state.journal.undo {
                if let Some((table, row_id)) = op.dml_target() {
                    if let Ok(t) = db.read_table(table) {
                        t.stamp_commit(row_id, token, ts);
                    }
                }
            }
        }
        for (db, _) in &parts {
            db.txns.advance_clock(ts);
        }
    }
    for (db, state) in parts {
        db.release_state(state);
        db.maybe_vacuum();
    }
    Ok(())
}

/// Row ids visible to `snap` and matching `filter` — point index lookup
/// for `col = const` conjuncts where possible, otherwise a scan.
fn find_target_rows(table: &Table, filter: Option<&Expr>, snap: Snapshot) -> Result<Vec<RowId>> {
    let Some(filter) = filter else {
        return Ok(table.iter_snap(snap).map(|(id, _)| id).collect());
    };
    // Try: filter contains conjunct Col(i) = Const and an index on [i].
    let mut candidate: Option<(usize, Value)> = None;
    visit_conjuncts_expr(filter, &mut |c| {
        if candidate.is_some() {
            return;
        }
        if let Expr::Binary(BinaryOp::Eq, a, b) = c {
            match (a.as_ref(), b.as_ref()) {
                (Expr::Col(i), Expr::Const(v)) | (Expr::Const(v), Expr::Col(i)) => {
                    candidate = Some((*i, v.clone()));
                }
                _ => {}
            }
        }
    });
    if let Some((col, value)) = candidate {
        if let Some(idx) = table.index_with_prefix(col) {
            if idx.columns.len() == 1 {
                let ids: Vec<RowId> = idx.lookup(&IndexKey(vec![value])).to_vec();
                let mut out = Vec::with_capacity(ids.len());
                for id in ids {
                    // Postings cover every version in a chain; the full
                    // filter re-check rejects versions that no longer
                    // carry the probed key.
                    let Some(row) = table.get_visible(id, snap) else {
                        continue;
                    };
                    if filter.eval_bool(row)? {
                        out.push(id);
                    }
                }
                return Ok(out);
            }
        }
    }
    let mut out = Vec::new();
    for (id, row) in table.iter_snap(snap) {
        if filter.eval_bool(row)? {
            out.push(id);
        }
    }
    Ok(out)
}

fn visit_conjuncts_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    if let Expr::Binary(BinaryOp::And, l, r) = e {
        visit_conjuncts_expr(l, f);
        visit_conjuncts_expr(r, f);
    } else {
        f(e);
    }
}

fn count_relation(n: i64) -> Relation {
    Relation {
        columns: vec!["count".into()],
        rows: vec![vec![Value::Int(n)]],
    }
}

fn render_create_table(name: &str, columns: &[(String, ColumnType, bool)]) -> String {
    let cols: Vec<String> = columns
        .iter()
        .map(|(n, ty, pk)| {
            format!(
                "{} {}{}",
                n,
                match ty {
                    ColumnType::Integer => "INTEGER",
                    ColumnType::Double => "DOUBLE",
                    ColumnType::Text => "TEXT",
                    ColumnType::Json => "JSON",
                    ColumnType::Boolean => "BOOLEAN",
                    ColumnType::Any => "ANY",
                },
                if *pk { " PRIMARY KEY" } else { "" }
            )
        })
        .collect();
    format!("CREATE TABLE {} ({})", name, cols.join(", "))
}

fn render_create_index(
    name: &str,
    table: &str,
    columns: &[ast::IndexColumn],
    unique: bool,
    kind: IndexKind,
) -> String {
    let keys: Vec<String> = columns
        .iter()
        .map(|c| match &c.json_key {
            Some(m) => format!("JSON_VAL({}, '{}')", c.column, m.replace('\'', "''")),
            None => c.column.clone(),
        })
        .collect();
    format!(
        "CREATE {}INDEX {} ON {} ({}) USING {}",
        if unique { "UNIQUE " } else { "" },
        name,
        table,
        keys.join(", "),
        match kind {
            IndexKind::Hash => "HASH",
            IndexKind::BTree => "BTREE",
        }
    )
}

fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Null => 1,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Double(_) => 8,
        Value::Str(s) => s.len() + 8,
        Value::Json(j) => j.to_string().len() + 8,
        Value::Array(a) => a.iter().map(value_bytes).sum::<usize>() + 8,
    }
}
