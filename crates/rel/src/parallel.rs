//! Morsel-driven intra-query parallelism: a shared worker pool plus the
//! order-preserving fan-out primitive the executor's parallel operators
//! are built on.
//!
//! # Model
//!
//! Work is split into fixed-size **morsels** (`MORSEL_ROWS` rows of the
//! input slab). Workers pull morsel indexes from a shared atomic cursor,
//! so a slow morsel never stalls the others, and each morsel's result is
//! written into a slot keyed by its index. [`ordered_map`] then returns
//! results **in morsel order**, which is what lets every parallel
//! operator produce byte-identical output to its serial twin: serial
//! execution visits rows in slab order, and concatenating per-morsel
//! outputs in morsel index order recreates exactly that sequence.
//!
//! # Pool
//!
//! One process-wide pool (`pool()`) is spawned lazily on first parallel
//! query and lives for the life of the process. Queries submit
//! lifetime-erased closures to it; a per-call latch makes the submission
//! scoped — `run_scoped` does not return until every task it queued has
//! finished, so borrowing the caller's stack from a task is sound. The
//! calling thread always participates as one worker, which means a
//! degree-of-parallelism of 1 never touches the pool at all, and a
//! nested parallel call from inside a pool worker simply runs inline
//! (`IN_POOL_WORKER`) instead of deadlocking on its own pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

use crossbeam::channel::{unbounded, Sender};

/// Rows per morsel. Small enough that a scan over a few tens of
/// thousands of rows still fans out across every worker, large enough
/// that per-morsel bookkeeping (one slot write, one cursor bump) is
/// noise next to predicate evaluation.
pub const MORSEL_ROWS: usize = 1024;

/// Row-count threshold below which auto mode stays serial: thread
/// handoff costs more than scanning this many rows.
pub const AUTO_PARALLEL_MIN_ROWS: usize = 8192;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Shared pool of detached worker threads blocking on an MPMC channel.
struct WorkerPool {
    sender: Sender<Job>,
    workers: usize,
}

thread_local! {
    /// Set while this thread is executing a pool job. A nested parallel
    /// call inside a worker degrades to inline serial execution rather
    /// than re-entering the pool (which could deadlock: every worker
    /// waiting on tasks only the blocked workers could run).
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = max_workers().saturating_sub(1).max(1);
        let (sender, receiver) = unbounded::<Job>();
        for i in 0..workers {
            let rx = receiver.clone();
            std::thread::Builder::new()
                .name(format!("rel-worker-{i}"))
                .spawn(move || {
                    IN_POOL_WORKER.with(|f| f.set(true));
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn rel worker");
        }
        WorkerPool { sender, workers }
    })
}

/// Upper bound on useful workers for one query: the machine's logical
/// core count, clamped to [2, 8]. Cached — `available_parallelism` can
/// be a syscall.
pub fn max_workers() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(2, 8)
    })
}

/// Completion latch: counts outstanding tasks and releases waiters (and
/// carries the first panic payload) when the count reaches zero.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn arrive(&self) {
        let mut n = self.remaining.lock().unwrap();
        *n -= 1;
        if *n == 0 {
            drop(n);
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut n = self.remaining.lock().unwrap();
        while *n > 0 {
            n = self.done.wait(n).unwrap();
        }
    }
}

/// Run `task` on `dop` logical workers (the calling thread plus up to
/// `dop - 1` pool threads) and return once all have finished. Each
/// worker invocation receives its worker index `0..dop`.
///
/// `task` typically loops on a shared atomic cursor rather than using
/// the worker index for static partitioning — see [`ordered_map`].
///
/// Panics in any worker are re-raised on the calling thread **after**
/// every worker has finished, so no task is left running with borrows
/// into a unwound stack frame.
pub fn run_scoped<F>(dop: usize, task: F)
where
    F: Fn(usize) + Send + Sync,
{
    if dop <= 1 || IN_POOL_WORKER.with(|f| f.get()) {
        task(0);
        return;
    }
    let pool = pool();
    let helpers = (dop - 1).min(pool.workers);
    if helpers == 0 {
        task(0);
        return;
    }

    let latch = Latch::new(helpers);
    // Erase the task's stack lifetime so it can cross into the detached
    // pool. Soundness: the latch guard below blocks this frame until
    // every erased closure has run to completion, even if `task(0)`
    // panics on the calling thread, so the borrow never dangles.
    let task_ref: &(dyn Fn(usize) + Send + Sync) = &task;
    let task_static: &'static (dyn Fn(usize) + Send + Sync) =
        unsafe { std::mem::transmute(task_ref) };
    let latch_ref: &'static Latch = unsafe { std::mem::transmute(&latch) };

    struct WaitGuard<'a>(&'a Latch);
    impl Drop for WaitGuard<'_> {
        fn drop(&mut self) {
            self.0.wait();
        }
    }
    let guard = WaitGuard(&latch);

    for w in 1..=helpers {
        let job: Job = Box::new(move || {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| task_static(w))) {
                let mut slot = latch_ref.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(p);
                }
            }
            latch_ref.arrive();
        });
        if pool.sender.send(job).is_err() {
            // Channel can only close if every worker died; degrade.
            latch.arrive();
        }
    }

    let own = catch_unwind(AssertUnwindSafe(|| task_static(0)));
    drop(guard); // blocks until all helpers have arrived
    if let Err(p) = own {
        std::panic::resume_unwind(p);
    }
    let helper_panic = latch.panic.lock().unwrap().take();
    if let Some(p) = helper_panic {
        std::panic::resume_unwind(p);
    }
}

/// Split `0..count` items into `⌈count / morsel⌉` morsels, apply `f` to
/// each morsel's index range on `dop` workers, and return the per-morsel
/// results **in morsel order**.
///
/// Work distribution is dynamic (shared atomic cursor), result order is
/// static (slot per morsel) — parallel output is therefore independent
/// of scheduling and identical to the serial loop.
pub fn ordered_map<R, F>(dop: usize, count: usize, morsel: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Send + Sync,
{
    let morsel = morsel.max(1);
    let n_morsels = count.div_ceil(morsel);
    if n_morsels <= 1 || dop <= 1 {
        return (0..n_morsels)
            .map(|m| f(m * morsel..((m + 1) * morsel).min(count)))
            .collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n_morsels);
    slots.resize_with(n_morsels, || None);
    let slots = Mutex::new(&mut slots);
    let cursor = AtomicUsize::new(0);

    run_scoped(dop.min(n_morsels), |_| loop {
        let m = cursor.fetch_add(1, Ordering::Relaxed);
        if m >= n_morsels {
            break;
        }
        let r = f(m * morsel..((m + 1) * morsel).min(count));
        slots.lock().unwrap()[m] = Some(r);
    });

    slots
        .into_inner()
        .unwrap()
        .drain(..)
        .map(|s| s.expect("morsel slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_map_preserves_morsel_order() {
        for dop in [1, 2, 4, 8] {
            let got: Vec<Vec<usize>> =
                ordered_map(dop, 1000, 64, |range| range.collect::<Vec<_>>());
            let flat: Vec<usize> = got.into_iter().flatten().collect();
            assert_eq!(flat, (0..1000).collect::<Vec<_>>(), "dop={dop}");
        }
    }

    #[test]
    fn ordered_map_empty_input() {
        let got: Vec<usize> = ordered_map(4, 0, 64, |r| r.len());
        assert!(got.is_empty());
    }

    #[test]
    fn run_scoped_runs_every_worker() {
        let hits = AtomicUsize::new(0);
        run_scoped(4, |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4.min(1 + pool().workers));
    }

    #[test]
    fn worker_panic_propagates_after_join() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_scoped(4, |w| {
                if w == 1 || w == 0 {
                    panic!("boom {w}");
                }
            })
        }));
        assert!(r.is_err());
        // Pool must still be usable afterwards.
        let hits = AtomicUsize::new(0);
        run_scoped(4, |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn nested_parallel_degrades_inline() {
        let total = AtomicUsize::new(0);
        run_scoped(4, |_| {
            // Inner call must not deadlock waiting for pool workers that
            // are all busy running this very closure.
            let inner: Vec<usize> = ordered_map(4, 256, 16, |r| r.len());
            total.fetch_add(inner.iter().sum::<usize>(), Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst) % 256, 0);
    }
}
