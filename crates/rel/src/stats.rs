//! Table statistics for the cost-based planner.
//!
//! The planner (see `exec::plan_join_order`) needs two numbers per table:
//! a row count and, per key it filters or joins on, a distinct-value count
//! (ndv). Row counts are always live (`Table::len`). Ndv comes in two
//! qualities:
//!
//! * **seeded** — derived for free from existing indexes via
//!   [`crate::index::Index::distinct_keys`]; only keys that happen to be
//!   indexed are covered;
//! * **analyzed** — exact counts for *every* column (plus every functional
//!   `JSON_VAL` key that has an index), computed by a full scan when the
//!   user runs `ANALYZE [table]`.
//!
//! Analyzed statistics are stored on the table and go stale under
//! mutation by design (the classic trade-off); the planner therefore always
//! takes row counts from the live table and uses stats only for ndv, capped
//! at the live row count.

use crate::hasher::{FxHashMap, FxHashSet};
use crate::index::KeyPart;
use crate::storage::Table;
use crate::value::Value;

/// Per-table statistics: row count at collection time plus distinct-value
/// estimates per column / functional key.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Live rows when the stats were collected.
    pub row_count: usize,
    /// Distinct-value estimate per column position (`None` = unknown).
    pub col_ndv: Vec<Option<usize>>,
    /// Distinct-value estimates for functional `JSON_VAL(col, key)` keys.
    pub json_ndv: FxHashMap<(usize, String), usize>,
    /// True when produced by `ANALYZE` (exact at collection time) rather
    /// than seeded from index cardinalities.
    pub analyzed: bool,
}

impl TableStats {
    /// Seed statistics from whatever single-part indexes the table has —
    /// free to compute, so usable on every query without an `ANALYZE`.
    pub fn seed(table: &Table) -> TableStats {
        let mut stats = TableStats {
            row_count: table.len(),
            col_ndv: vec![None; table.schema.arity()],
            json_ndv: FxHashMap::default(),
            analyzed: false,
        };
        for idx in table.indexes() {
            // Only single-part indexes measure one key's cardinality;
            // composite distinct counts say nothing about either part alone.
            if idx.parts.len() != 1 {
                continue;
            }
            let distinct = idx.distinct_keys();
            match &idx.parts[0] {
                KeyPart::Column(c) => {
                    let slot = &mut stats.col_ndv[*c];
                    // Keep the largest estimate if several indexes cover
                    // the same column (they should agree; be defensive).
                    *slot = Some(slot.unwrap_or(0).max(distinct));
                }
                KeyPart::JsonKey(c, key) => {
                    let e = stats.json_ndv.entry((*c, key.clone())).or_insert(0);
                    *e = (*e).max(distinct);
                }
            }
        }
        stats
    }

    /// Exact statistics via a full scan: distinct counts for every column,
    /// and for every functional key that has an index (the only functional
    /// keys queries can name cheaply).
    pub fn analyze(table: &Table) -> TableStats {
        let arity = table.schema.arity();
        let mut col_sets: Vec<FxHashSet<Value>> =
            (0..arity).map(|_| FxHashSet::default()).collect();
        let json_parts: Vec<KeyPart> = table
            .indexes()
            .iter()
            .flat_map(|i| i.parts.iter())
            .filter(|p| matches!(p, KeyPart::JsonKey(..)))
            .cloned()
            .collect();
        let mut json_sets: Vec<FxHashSet<Value>> = (0..json_parts.len())
            .map(|_| FxHashSet::default())
            .collect();
        for (_, row) in table.iter() {
            for (c, set) in col_sets.iter_mut().enumerate() {
                if !row[c].is_null() {
                    set.insert(row[c].clone());
                }
            }
            for (part, set) in json_parts.iter().zip(json_sets.iter_mut()) {
                let v = part.extract(row);
                if !v.is_null() {
                    set.insert(v);
                }
            }
        }
        let mut json_ndv = FxHashMap::default();
        for (part, set) in json_parts.iter().zip(&json_sets) {
            if let KeyPart::JsonKey(c, key) = part {
                json_ndv.insert((*c, key.clone()), set.len());
            }
        }
        TableStats {
            row_count: table.len(),
            col_ndv: col_sets.iter().map(|s| Some(s.len())).collect(),
            json_ndv,
            analyzed: true,
        }
    }

    /// Distinct-value estimate for a key part, if known.
    pub fn ndv_for_part(&self, part: &KeyPart) -> Option<usize> {
        match part {
            KeyPart::Column(c) => self.col_ndv.get(*c).copied().flatten(),
            KeyPart::JsonKey(c, key) => self.json_ndv.get(&(*c, key.clone())).copied(),
        }
    }

    /// Ndv with the System-R style default for unknown keys (1/10 of the
    /// rows), capped to `live_rows` and floored at 1.
    pub fn ndv_or_default(&self, part: &KeyPart, live_rows: usize) -> usize {
        self.ndv_for_part(part)
            .unwrap_or_else(|| (live_rows / 10).max(1))
            .clamp(1, live_rows.max(1))
    }

    /// Estimated selectivity of `part = constant`.
    pub fn eq_selectivity(&self, part: &KeyPart, live_rows: usize) -> f64 {
        1.0 / self.ndv_or_default(part, live_rows) as f64
    }

    /// Estimated average rows per distinct value of `part` — the expected
    /// fanout of one adjacency expansion. Used by the planner's CSR gate:
    /// a compressed adjacency entry amortizes its build over
    /// `live / fanout` distinct probe groups, so very high fanout (few
    /// huge groups) still pays off while an all-unique key (fanout ≈ 1)
    /// degenerates to a point-lookup table the probe path already serves
    /// well. Stale stats (see [`TableStats::is_stale`]) are discarded by
    /// the caller before consulting this.
    pub fn avg_fanout(&self, part: &KeyPart, live_rows: usize) -> f64 {
        live_rows as f64 / self.ndv_or_default(part, live_rows) as f64
    }

    /// Whether the table has drifted more than 2× (either direction) from
    /// the row count recorded when these stats were collected. Stale ndv
    /// estimates mislead the planner, so it discards stats that fail this
    /// check and falls back to index-seeded values.
    pub fn is_stale(&self, live_rows: usize) -> bool {
        // A table that was empty at collection time has nothing to scale
        // from; any growth invalidates it.
        if self.row_count == 0 {
            return live_rows > 0;
        }
        live_rows > self.row_count * 2 || live_rows * 2 < self.row_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexKind;
    use crate::schema::{Column, ColumnType, TableSchema};

    fn table() -> Table {
        let schema = TableSchema::new(
            "t",
            vec![
                Column {
                    name: "id".into(),
                    ty: ColumnType::Integer,
                },
                Column {
                    name: "grp".into(),
                    ty: ColumnType::Integer,
                },
                Column {
                    name: "attr".into(),
                    ty: ColumnType::Json,
                },
            ],
        )
        .unwrap();
        let mut t = Table::new(schema);
        t.create_index("t_pk", vec![0], true, IndexKind::Hash)
            .unwrap();
        for i in 0..100i64 {
            let doc = sqlgraph_json::parse(&format!(r#"{{"tag":"t{}"}}"#, i % 5)).unwrap();
            t.insert(vec![Value::Int(i), Value::Int(i % 4), Value::json(doc)])
                .unwrap();
        }
        t
    }

    #[test]
    fn seeded_stats_cover_indexed_columns_only() {
        let t = table();
        let s = TableStats::seed(&t);
        assert!(!s.analyzed);
        assert_eq!(s.row_count, 100);
        assert_eq!(s.ndv_for_part(&KeyPart::Column(0)), Some(100));
        assert_eq!(s.ndv_for_part(&KeyPart::Column(1)), None);
        // Unknown keys get the 1/10 default.
        assert_eq!(s.ndv_or_default(&KeyPart::Column(1), 100), 10);
    }

    #[test]
    fn analyze_counts_every_column_and_indexed_json_keys() {
        let mut t = table();
        t.create_index_with_parts(
            "t_tag",
            vec![KeyPart::JsonKey(2, "tag".into())],
            false,
            IndexKind::Hash,
        )
        .unwrap();
        let s = TableStats::analyze(&t);
        assert!(s.analyzed);
        assert_eq!(s.ndv_for_part(&KeyPart::Column(0)), Some(100));
        assert_eq!(s.ndv_for_part(&KeyPart::Column(1)), Some(4));
        assert_eq!(s.ndv_for_part(&KeyPart::JsonKey(2, "tag".into())), Some(5));
        assert!((s.eq_selectivity(&KeyPart::Column(1), 100) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn staleness_is_two_times_drift_in_either_direction() {
        let t = table();
        let s = TableStats::seed(&t); // row_count = 100
        assert!(!s.is_stale(100));
        assert!(!s.is_stale(200)); // exactly 2× growth is still usable
        assert!(s.is_stale(201));
        assert!(!s.is_stale(50)); // exactly half is still usable
        assert!(s.is_stale(49));
        let empty = TableStats::default();
        assert!(!empty.is_stale(0));
        assert!(empty.is_stale(1));
    }

    #[test]
    fn ndv_is_capped_at_live_rows() {
        let t = table();
        let s = TableStats::seed(&t);
        // Pretend the table shrank after stats were taken.
        assert_eq!(s.ndv_or_default(&KeyPart::Column(0), 7), 7);
    }
}
