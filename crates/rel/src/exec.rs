//! Query planning and execution.
//!
//! Execution is set-oriented and materialized: each stage (scan, join,
//! lateral unnest, aggregate, set op) produces a full [`Relation`]. This is
//! exactly the execution model the paper's CTE pipelines assume — each CTE
//! materializes once and feeds the next — and it keeps the engine simple
//! while preserving the behaviour under study: one declarative statement
//! executes the whole traversal with hash/index joins instead of a chatty
//! call-per-step protocol.
//!
//! Planning is heuristic but real:
//! * single-table equality predicates are pushed into scans and served from
//!   the best matching (possibly composite) index;
//! * comma joins execute left-to-right; each new table is attached by index
//!   nested-loop join when an index covers the join key (plus any constant
//!   equality columns), by hash join otherwise, falling back to a filtered
//!   cross product when no equi-join conjunct exists;
//! * explicit `JOIN ... ON` trees use hash equi-joins (with left-outer
//!   NULL padding) and the same index strategy where possible.

use crate::db::Database;
use crate::error::{Error, Result};
use crate::expr::{self, BinaryOp, Expr};
use crate::hasher::{FxHashMap, FxHashSet};
use crate::index::IndexKey;
use crate::sql::ast;
use crate::storage::Table;
use crate::value::Value;
use std::sync::Arc;

/// An executor row.
pub type Row = Vec<Value>;

/// Per-alias column lists tracked through explicit JOIN trees.
type ScopeCols = Vec<(String, Vec<String>)>;

/// A materialized relation: named columns plus rows.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Lower-cased output column names.
    pub columns: Vec<String>,
    /// Row data.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Build a relation, lower-casing column names.
    pub fn new(columns: Vec<String>, rows: Vec<Row>) -> Relation {
        Relation {
            columns: columns.into_iter().map(|c| c.to_ascii_lowercase()).collect(),
            rows,
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| *c == lower)
    }

    /// Single-value convenience: the first column of the first row.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// First column of every row as i64 (skipping non-ints).
    pub fn int_column(&self) -> Vec<i64> {
        self.rows.iter().filter_map(|r| r.first().and_then(Value::as_int)).collect()
    }

    /// First column of every row rendered as strings.
    pub fn strings(&self) -> Vec<String> {
        self.rows
            .iter()
            .filter_map(|r| r.first())
            .map(|v| v.to_string())
            .collect()
    }
}

/// One entry of the name-resolution scope: `(alias, column names)`.
#[derive(Debug, Clone)]
pub(crate) struct ScopeEntry {
    alias: String,
    columns: Vec<String>,
    offset: usize,
}

/// Name-resolution scope for a FROM list.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scope {
    entries: Vec<ScopeEntry>,
    width: usize,
}

impl Scope {
    fn push(&mut self, alias: &str, columns: Vec<String>) {
        let offset = self.width;
        self.width += columns.len();
        self.entries.push(ScopeEntry {
            alias: alias.to_ascii_lowercase(),
            columns,
            offset,
        });
    }

    /// Resolve a possibly-qualified column to a flat offset.
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let lname = name.to_ascii_lowercase();
        match table {
            Some(t) => {
                let lt = t.to_ascii_lowercase();
                let entry = self
                    .entries
                    .iter()
                    .find(|e| e.alias == lt)
                    .ok_or_else(|| Error::NotFound(format!("table alias '{t}'")))?;
                let col = entry
                    .columns
                    .iter()
                    .position(|c| *c == lname)
                    .ok_or_else(|| Error::NotFound(format!("column '{t}.{name}'")))?;
                Ok(entry.offset + col)
            }
            None => {
                let mut found = None;
                for entry in &self.entries {
                    if let Some(col) = entry.columns.iter().position(|c| *c == lname) {
                        if found.is_some() {
                            return Err(Error::Invalid(format!("ambiguous column '{name}'")));
                        }
                        found = Some(entry.offset + col);
                    }
                }
                found.ok_or_else(|| Error::NotFound(format!("column '{name}'")))
            }
        }
    }
}

/// Execution environment: the database plus visible CTE bindings.
pub struct Env<'a> {
    /// Catalog / storage access.
    pub db: &'a Database,
    /// CTEs visible to the query being executed (lower-cased names).
    pub ctes: FxHashMap<String, Arc<Relation>>,
    /// Positional parameter values.
    pub params: &'a [Value],
    /// When set, the executor records access-path decisions here
    /// (`EXPLAIN` support).
    pub trace: Option<&'a std::cell::RefCell<Vec<String>>>,
}

impl<'a> Env<'a> {
    /// New environment with no CTEs.
    pub fn new(db: &'a Database, params: &'a [Value]) -> Env<'a> {
        Env { db, ctes: FxHashMap::default(), params, trace: None }
    }

    /// Record one access-path decision (no-op unless tracing).
    pub fn note(&self, line: impl FnOnce() -> String) {
        if let Some(t) = self.trace {
            t.borrow_mut().push(line());
        }
    }
}

/// Run a full query.
pub fn run_select(env: &Env<'_>, stmt: &ast::SelectStmt) -> Result<Relation> {
    // Materialize CTEs in order; each sees the previous ones.
    let mut env2 = Env {
        db: env.db,
        ctes: env.ctes.clone(),
        params: env.params,
        trace: env.trace,
    };
    for (name, query) in &stmt.ctes {
        let rel = run_select(&env2, query)?;
        env2.ctes.insert(name.to_ascii_lowercase(), Arc::new(rel));
    }
    // A single-core body handles ORDER BY internally so sort keys may
    // reference input columns that are not projected; set-op bodies sort on
    // output columns only.
    let mut rel = match &stmt.body {
        ast::SetExpr::Select(core) if !stmt.order_by.is_empty() => {
            run_core(&env2, core, &stmt.order_by)?
        }
        body => {
            let mut rel = run_set_expr(&env2, body)?;
            if !stmt.order_by.is_empty() {
                sort_relation(&env2, &mut rel, &stmt.order_by)?;
            }
            rel
        }
    };
    apply_limit_offset(&env2, &mut rel, stmt.limit.as_ref(), stmt.offset.as_ref())?;
    Ok(rel)
}

fn apply_limit_offset(
    env: &Env<'_>,
    rel: &mut Relation,
    limit: Option<&ast::Expr>,
    offset: Option<&ast::Expr>,
) -> Result<()> {
    let eval_n = |e: &ast::Expr| -> Result<usize> {
        let scope = Scope::default();
        let compiled = compile_expr(env, &scope, e)?;
        compiled
            .eval(&[])?
            .as_int()
            .filter(|n| *n >= 0)
            .map(|n| n as usize)
            .ok_or_else(|| Error::Invalid("LIMIT/OFFSET must be a non-negative integer".into()))
    };
    if let Some(off) = offset {
        let n = eval_n(off)?.min(rel.rows.len());
        rel.rows.drain(..n);
    }
    if let Some(lim) = limit {
        let n = eval_n(lim)?;
        rel.rows.truncate(n);
    }
    Ok(())
}

fn sort_relation(env: &Env<'_>, rel: &mut Relation, keys: &[(ast::Expr, bool)]) -> Result<()> {
    // ORDER BY resolves against the output columns; bare integers are
    // 1-based output positions.
    let mut scope = Scope::default();
    scope.push("", rel.columns.clone());
    let mut compiled = Vec::with_capacity(keys.len());
    for (e, desc) in keys {
        let ce = match e {
            ast::Expr::Literal(Value::Int(n)) if *n >= 1 && (*n as usize) <= rel.columns.len() => {
                Expr::Col(*n as usize - 1)
            }
            // Qualified references (`ORDER BY p2.name`) resolve by bare
            // column name against the output, matching common SQL practice.
            ast::Expr::Column { table: Some(_), name } => compile_expr(
                env,
                &scope,
                &ast::Expr::Column { table: None, name: name.clone() },
            )?,
            other => compile_expr(env, &scope, other)?,
        };
        compiled.push((ce, *desc));
    }
    // Precompute sort keys to keep comparisons cheap and fallible code out
    // of the comparator.
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rel.rows.len());
    for row in rel.rows.drain(..) {
        let mut k = Vec::with_capacity(compiled.len());
        for (ce, _) in &compiled {
            k.push(ce.eval(&row)?);
        }
        keyed.push((k, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for ((a, b), (_, desc)) in ka.iter().zip(kb.iter()).zip(&compiled) {
            let o = a.total_cmp(b);
            if o != std::cmp::Ordering::Equal {
                return if *desc { o.reverse() } else { o };
            }
        }
        std::cmp::Ordering::Equal
    });
    rel.rows = keyed.into_iter().map(|(_, r)| r).collect();
    Ok(())
}

fn run_set_expr(env: &Env<'_>, body: &ast::SetExpr) -> Result<Relation> {
    match body {
        ast::SetExpr::Select(core) => run_core(env, core, &[]),
        ast::SetExpr::Op { op, all, left, right } => {
            let l = run_set_expr(env, left)?;
            let r = run_set_expr(env, right)?;
            if l.columns.len() != r.columns.len() {
                return Err(Error::Invalid(format!(
                    "set operands have different arities ({} vs {})",
                    l.columns.len(),
                    r.columns.len()
                )));
            }
            let mut out = Relation { columns: l.columns.clone(), rows: Vec::new() };
            match op {
                ast::SetOp::Union => {
                    out.rows = l.rows;
                    out.rows.extend(r.rows);
                    if !*all {
                        dedup_rows(&mut out.rows);
                    }
                }
                ast::SetOp::Intersect => {
                    let rset: FxHashSet<&Row> = r.rows.iter().collect();
                    let mut seen: FxHashSet<Row> = FxHashSet::default();
                    for row in l.rows {
                        // Membership checks on borrowed rows; clone only the
                        // distinct rows actually emitted.
                        if rset.contains(&row) && !seen.contains(&row) {
                            seen.insert(row.clone());
                            out.rows.push(row);
                        }
                    }
                }
                ast::SetOp::Except => {
                    let rset: FxHashSet<&Row> = r.rows.iter().collect();
                    let mut seen: FxHashSet<Row> = FxHashSet::default();
                    for row in l.rows {
                        if !rset.contains(&row) && !seen.contains(&row) {
                            seen.insert(row.clone());
                            out.rows.push(row);
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

fn dedup_rows(rows: &mut Vec<Row>) {
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    rows.retain(|r| {
        // Check first so duplicate rows are dropped without cloning.
        if seen.contains(r) {
            false
        } else {
            seen.insert(r.clone());
            true
        }
    });
}

// ---------------------------------------------------------------------------
// SELECT core
// ---------------------------------------------------------------------------

fn run_core(
    env: &Env<'_>,
    core: &ast::SelectCore,
    order_by: &[(ast::Expr, bool)],
) -> Result<Relation> {
    // 1. Execute the FROM pipeline with WHERE pushdown and projection
    //    pruning (only referenced base-table columns are materialized).
    let needs = collect_needs(core, order_by);
    let (scope, rows) = run_from(env, &core.from, core.filter.as_ref(), &needs)?;

    // 2. Aggregate or plain projection. ORDER BY keys are computed as
    //    hidden trailing columns so they may reference unprojected inputs.
    let needs_agg = !core.group_by.is_empty()
        || core.projections.iter().any(|p| match p {
            ast::Projection::Expr { expr, .. } => contains_aggregate(expr),
            _ => false,
        });

    let mut rel = if needs_agg {
        run_aggregate(env, &scope, rows, core, order_by)?
    } else {
        project(env, &scope, rows, &core.projections, order_by)?
    };

    let visible = rel.columns.len();
    if core.distinct {
        // Deduplicate on the visible prefix, keeping the first occurrence.
        let mut seen: FxHashSet<Vec<Value>> = FxHashSet::default();
        rel.rows.retain(|r| seen.insert(r[..visible].to_vec()));
    }
    if !order_by.is_empty() {
        let descs: Vec<bool> = order_by.iter().map(|(_, d)| *d).collect();
        sort_rows_by_hidden(&mut rel.rows, visible, &descs);
        for row in &mut rel.rows {
            row.truncate(visible);
        }
    }
    Ok(rel)
}

/// Stable sort by the hidden key columns appended after `visible`.
fn sort_rows_by_hidden(rows: &mut [Row], visible: usize, descs: &[bool]) {
    rows.sort_by(|a, b| {
        for (i, desc) in descs.iter().enumerate() {
            let o = a[visible + i].total_cmp(&b[visible + i]);
            if o != std::cmp::Ordering::Equal {
                return if *desc { o.reverse() } else { o };
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Compile one ORDER BY key against, in priority order: a matching output
/// alias (reusing that projection's expression), a 1-based output position,
/// or the input scope directly. `agg` is used for aggregate queries.
fn compile_order_key(
    env: &Env<'_>,
    scope: &Scope,
    key: &ast::Expr,
    names: &[String],
    exprs: &[Expr],
    aggs: Option<&mut Vec<AggSpec>>,
) -> Result<Expr> {
    // Positional: ORDER BY 2.
    if let ast::Expr::Literal(Value::Int(n)) = key {
        if *n >= 1 && (*n as usize) <= exprs.len() {
            return Ok(exprs[*n as usize - 1].clone());
        }
    }
    // Output alias (possibly qualified — qualifier ignored per SQL habit).
    if let ast::Expr::Column { name, .. } = key {
        let lower = name.to_ascii_lowercase();
        if let Some(i) = names.iter().position(|n| *n == lower) {
            return Ok(exprs[i].clone());
        }
    }
    match aggs {
        Some(aggs) => compile_with_aggs(env, scope, key, aggs),
        None => compile_expr(env, scope, key),
    }
}

fn project(
    env: &Env<'_>,
    scope: &Scope,
    rows: Vec<Row>,
    projections: &[ast::Projection],
    order_by: &[(ast::Expr, bool)],
) -> Result<Relation> {
    let (names, mut exprs) = compile_projections(env, scope, projections)?;
    let visible = exprs.len();
    for (key, _) in order_by {
        let ke = compile_order_key(env, scope, key, &names, &exprs[..visible], None)?;
        exprs.push(ke);
    }
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut out = Vec::with_capacity(exprs.len());
        for e in &exprs {
            out.push(e.eval(row)?);
        }
        out_rows.push(out);
    }
    Ok(Relation { columns: names, rows: out_rows })
}

fn compile_projections(
    env: &Env<'_>,
    scope: &Scope,
    projections: &[ast::Projection],
) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut names = Vec::new();
    let mut exprs = Vec::new();
    for p in projections {
        match p {
            ast::Projection::Wildcard => {
                for entry in &scope.entries {
                    for (i, c) in entry.columns.iter().enumerate() {
                        names.push(c.clone());
                        exprs.push(Expr::Col(entry.offset + i));
                    }
                }
            }
            ast::Projection::TableWildcard(t) => {
                let lt = t.to_ascii_lowercase();
                let entry = scope
                    .entries
                    .iter()
                    .find(|e| e.alias == lt)
                    .ok_or_else(|| Error::NotFound(format!("table alias '{t}'")))?;
                for (i, c) in entry.columns.iter().enumerate() {
                    names.push(c.clone());
                    exprs.push(Expr::Col(entry.offset + i));
                }
            }
            ast::Projection::Expr { expr, alias } => {
                let name = alias
                    .clone()
                    .or_else(|| match expr {
                        ast::Expr::Column { name, .. } => Some(name.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| format!("col{}", names.len()));
                names.push(name.to_ascii_lowercase());
                exprs.push(compile_expr(env, scope, expr)?);
            }
        }
    }
    Ok((names, exprs))
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggFn {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFn {
    fn parse(name: &str) -> Option<AggFn> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFn::Count,
            "SUM" => AggFn::Sum,
            "MIN" => AggFn::Min,
            "MAX" => AggFn::Max,
            "AVG" => AggFn::Avg,
            _ => return None,
        })
    }
}

struct AggSpec {
    func: AggFn,
    arg: Option<Expr>,
    distinct: bool,
}

fn contains_aggregate(e: &ast::Expr) -> bool {
    match e {
        ast::Expr::CountStar => true,
        ast::Expr::Call { name, args, .. } => {
            AggFn::parse(name).is_some() || args.iter().any(contains_aggregate)
        }
        ast::Expr::Unary(_, x) | ast::Expr::IsNull(x, _) | ast::Expr::Cast(x, _) => {
            contains_aggregate(x)
        }
        ast::Expr::Binary(_, l, r) | ast::Expr::Subscript(l, r) => {
            contains_aggregate(l) || contains_aggregate(r)
        }
        ast::Expr::Like { expr, pattern, .. } => {
            contains_aggregate(expr) || contains_aggregate(pattern)
        }
        ast::Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        ast::Expr::Between { expr, lo, hi, .. } => {
            contains_aggregate(expr) || contains_aggregate(lo) || contains_aggregate(hi)
        }
        _ => false,
    }
}

/// Compile an expression that may contain aggregate calls: each aggregate
/// becomes a reference to a slot *after* the input row (the executor
/// evaluates groups into `input_row ++ agg_values`).
fn compile_with_aggs(
    env: &Env<'_>,
    scope: &Scope,
    e: &ast::Expr,
    aggs: &mut Vec<AggSpec>,
) -> Result<Expr> {
    match e {
        ast::Expr::CountStar => {
            aggs.push(AggSpec { func: AggFn::CountStar, arg: None, distinct: false });
            Ok(Expr::Col(scope.width + aggs.len() - 1))
        }
        ast::Expr::Call { name, args, distinct } if AggFn::parse(name).is_some() => {
            let func = AggFn::parse(name).unwrap();
            if args.len() != 1 {
                return Err(Error::Invalid(format!("{name} takes exactly one argument")));
            }
            let arg = compile_expr(env, scope, &args[0])?;
            aggs.push(AggSpec { func, arg: Some(arg), distinct: *distinct });
            Ok(Expr::Col(scope.width + aggs.len() - 1))
        }
        ast::Expr::Unary(op, x) => Ok(Expr::Unary(
            *op,
            Box::new(compile_with_aggs(env, scope, x, aggs)?),
        )),
        ast::Expr::Binary(op, l, r) => Ok(Expr::Binary(
            *op,
            Box::new(compile_with_aggs(env, scope, l, aggs)?),
            Box::new(compile_with_aggs(env, scope, r, aggs)?),
        )),
        // Aggregates inside other constructs are rare; compile without.
        other => compile_expr(env, scope, other),
    }
}

fn run_aggregate(
    env: &Env<'_>,
    scope: &Scope,
    rows: Vec<Row>,
    core: &ast::SelectCore,
    order_by: &[(ast::Expr, bool)],
) -> Result<Relation> {
    let group_exprs: Vec<Expr> = core
        .group_by
        .iter()
        .map(|e| compile_expr(env, scope, e))
        .collect::<Result<_>>()?;

    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut names = Vec::new();
    let mut proj_exprs = Vec::new();
    for p in &core.projections {
        match p {
            ast::Projection::Expr { expr, alias } => {
                let name = alias
                    .clone()
                    .or_else(|| match expr {
                        ast::Expr::Column { name, .. } => Some(name.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| format!("col{}", names.len()));
                names.push(name.to_ascii_lowercase());
                proj_exprs.push(compile_with_aggs(env, scope, expr, &mut aggs)?);
            }
            _ => {
                return Err(Error::Invalid(
                    "wildcard projections are not allowed with GROUP BY/aggregates".into(),
                ))
            }
        }
    }
    let having = core
        .having
        .as_ref()
        .map(|h| compile_with_aggs(env, scope, h, &mut aggs))
        .transpose()?;
    let visible = proj_exprs.len();
    for (key, _) in order_by {
        let snapshot = proj_exprs[..visible].to_vec();
        let ke = compile_order_key(env, scope, key, &names, &snapshot, Some(&mut aggs))?;
        proj_exprs.push(ke);
    }

    // Group rows morsel by morsel into per-worker partial accumulators,
    // then merge partials in morsel order. The decomposition depends only
    // on input size — never on the DOP — so serial and parallel runs fold
    // the same values in the same order and agree bit-for-bit even on
    // float accumulations.
    let dop = env.db.dop_for(rows.len());
    env.note(|| format!("aggregate ({} rows, dop {dop})", rows.len()));
    let rows_ref = &rows;
    let group_ref = &group_exprs;
    let aggs_ref = &aggs;
    let partials = crate::parallel::ordered_map(
        dop,
        rows.len(),
        crate::parallel::MORSEL_ROWS,
        |range| -> Result<Vec<PartialGroup>> {
            let mut map: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
            let mut local: Vec<PartialGroup> = Vec::new();
            for i in range {
                let row = &rows_ref[i];
                let mut key = Vec::with_capacity(group_ref.len());
                for g in group_ref {
                    key.push(g.eval(row)?);
                }
                let gi = match map.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let gi = local.len();
                        local.push(PartialGroup {
                            key: e.key().clone(),
                            accs: aggs_ref.iter().map(AggAcc::new).collect(),
                            rep: i,
                        });
                        e.insert(gi);
                        gi
                    }
                };
                let g = &mut local[gi];
                for (acc, spec) in g.accs.iter_mut().zip(aggs_ref) {
                    acc.update(spec, row)?;
                }
            }
            Ok(local)
        },
    );

    // Merge in morsel order: group order is first appearance across the
    // morsel sequence (= first appearance in row order), the representative
    // row is the earliest morsel's (= the group's first row).
    let mut map: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    let mut merged: Vec<PartialGroup> = Vec::new();
    for chunk in partials {
        for pg in chunk? {
            match map.entry(pg.key.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let dst = &mut merged[*e.get()];
                    for ((acc, part), spec) in dst.accs.iter_mut().zip(pg.accs).zip(&aggs) {
                        acc.merge(spec, part);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(merged.len());
                    merged.push(pg);
                }
            }
        }
    }
    // A scalar aggregate over zero rows still yields one group.
    if merged.is_empty() && group_exprs.is_empty() {
        merged.push(PartialGroup {
            key: Vec::new(),
            accs: aggs.iter().map(AggAcc::new).collect(),
            rep: usize::MAX,
        });
    }

    let mut out_rows = Vec::with_capacity(merged.len());
    for pg in merged {
        // Representative row: first of group, or all-NULL for empty input.
        let mut extended: Row = if pg.rep == usize::MAX {
            vec![Value::Null; scope.width]
        } else {
            rows[pg.rep].clone()
        };
        for (acc, spec) in pg.accs.into_iter().zip(&aggs) {
            extended.push(acc.finish(spec));
        }
        if let Some(h) = &having {
            if !h.eval_bool(&extended)? {
                continue;
            }
        }
        let mut out = Vec::with_capacity(proj_exprs.len());
        for e in &proj_exprs {
            out.push(e.eval(&extended)?);
        }
        out_rows.push(out);
    }
    Ok(Relation { columns: names, rows: out_rows })
}

/// One group's partial aggregation state within a morsel (or, after the
/// merge, globally): group key, one accumulator per aggregate, and the
/// index of the group's first row (its representative — projections may
/// reference non-grouped columns).
struct PartialGroup {
    key: Vec<Value>,
    accs: Vec<AggAcc>,
    rep: usize,
}

/// A mergeable aggregate accumulator. Serial and parallel aggregation both
/// run through these, so the two paths cannot drift.
enum AggAcc {
    CountStar(i64),
    Count(i64),
    CountDistinct(FxHashSet<Value>),
    /// SUM and AVG: integer and float lanes accumulated separately, mixed
    /// only at `finish` (matching SQL's int-stays-int SUM semantics).
    Sum { sum_i: i64, sum_f: f64, any_f: bool, n: i64 },
    MinMax(Option<Value>),
}

impl AggAcc {
    fn new(spec: &AggSpec) -> AggAcc {
        match spec.func {
            AggFn::CountStar => AggAcc::CountStar(0),
            AggFn::Count if spec.distinct => AggAcc::CountDistinct(FxHashSet::default()),
            AggFn::Count => AggAcc::Count(0),
            AggFn::Sum | AggFn::Avg => {
                AggAcc::Sum { sum_i: 0, sum_f: 0.0, any_f: false, n: 0 }
            }
            AggFn::Min | AggFn::Max => AggAcc::MinMax(None),
        }
    }

    fn update(&mut self, spec: &AggSpec, row: &Row) -> Result<()> {
        match self {
            AggAcc::CountStar(n) => *n += 1,
            AggAcc::Count(n) => {
                let arg = spec.arg.as_ref().expect("COUNT has an argument");
                if !arg.eval(row)?.is_null() {
                    *n += 1;
                }
            }
            AggAcc::CountDistinct(seen) => {
                let arg = spec.arg.as_ref().expect("COUNT has an argument");
                let v = arg.eval(row)?;
                if !v.is_null() {
                    seen.insert(v);
                }
            }
            AggAcc::Sum { sum_i, sum_f, any_f, n } => {
                let arg = spec.arg.as_ref().expect("SUM/AVG has an argument");
                match arg.eval(row)? {
                    Value::Null => {}
                    Value::Int(v) => {
                        *sum_i = sum_i.wrapping_add(v);
                        *n += 1;
                    }
                    Value::Double(v) => {
                        *sum_f += v;
                        *any_f = true;
                        *n += 1;
                    }
                    other => {
                        return Err(Error::Type(format!("cannot SUM a {}", other.type_name())))
                    }
                }
            }
            AggAcc::MinMax(best) => {
                let arg = spec.arg.as_ref().expect("MIN/MAX has an argument");
                let v = arg.eval(row)?;
                if v.is_null() {
                    return Ok(());
                }
                let keep_new = match best {
                    None => true,
                    Some(b) => {
                        let ord = v.total_cmp(b);
                        match spec.func {
                            AggFn::Min => ord == std::cmp::Ordering::Less,
                            _ => ord == std::cmp::Ordering::Greater,
                        }
                    }
                };
                if keep_new {
                    *best = Some(v);
                }
            }
        }
        Ok(())
    }

    /// Fold another partial (from a later morsel of the same group) in.
    fn merge(&mut self, spec: &AggSpec, other: AggAcc) {
        match (self, other) {
            (AggAcc::CountStar(a), AggAcc::CountStar(b)) => *a += b,
            (AggAcc::Count(a), AggAcc::Count(b)) => *a += b,
            (AggAcc::CountDistinct(a), AggAcc::CountDistinct(b)) => a.extend(b),
            (
                AggAcc::Sum { sum_i, sum_f, any_f, n },
                AggAcc::Sum { sum_i: bi, sum_f: bf, any_f: ba, n: bn },
            ) => {
                *sum_i = sum_i.wrapping_add(bi);
                *sum_f += bf;
                *any_f |= ba;
                *n += bn;
            }
            (AggAcc::MinMax(a), AggAcc::MinMax(b)) => {
                if let Some(bv) = b {
                    let keep_new = match &a {
                        None => true,
                        Some(av) => {
                            let ord = bv.total_cmp(av);
                            match spec.func {
                                AggFn::Min => ord == std::cmp::Ordering::Less,
                                _ => ord == std::cmp::Ordering::Greater,
                            }
                        }
                    };
                    if keep_new {
                        *a = Some(bv);
                    }
                }
            }
            _ => unreachable!("mismatched accumulator kinds"),
        }
    }

    fn finish(self, spec: &AggSpec) -> Value {
        match self {
            AggAcc::CountStar(n) | AggAcc::Count(n) => Value::Int(n),
            AggAcc::CountDistinct(seen) => Value::Int(seen.len() as i64),
            AggAcc::Sum { sum_i, sum_f, any_f, n } => {
                if n == 0 {
                    Value::Null
                } else if spec.func == AggFn::Sum {
                    if any_f {
                        Value::Double(sum_f + sum_i as f64)
                    } else {
                        Value::Int(sum_i)
                    }
                } else {
                    Value::Double((sum_f + sum_i as f64) / n as f64)
                }
            }
            AggAcc::MinMax(best) => best.unwrap_or(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------------
// FROM pipeline
// ---------------------------------------------------------------------------

/// Projection-pruning analysis of a SELECT core: which columns of each
/// FROM alias the statement can reference.
#[derive(Debug, Default)]
struct Needs {
    /// Qualified references per (lower-cased) alias.
    per_alias: FxHashMap<String, FxHashSet<String>>,
    /// Aliases that need every column (`t.*`).
    all_for: FxHashSet<String>,
    /// An unqualified reference or bare `*` appeared: pruning is unsafe.
    disable: bool,
}

impl Needs {
    /// Pruned column list for `alias` given the table's full column list,
    /// or `None` when pruning is not applicable.
    fn pruned(&self, alias: &str, columns: &[String]) -> Option<Vec<usize>> {
        if self.disable || self.all_for.contains(alias) {
            return None;
        }
        let wanted = self.per_alias.get(alias)?;
        Some(
            columns
                .iter()
                .enumerate()
                .filter(|(_, c)| wanted.contains(*c))
                .map(|(i, _)| i)
                .collect(),
        )
    }
}

fn collect_needs(core: &ast::SelectCore, order_by: &[(ast::Expr, bool)]) -> Needs {
    let mut needs = Needs::default();
    for p in &core.projections {
        match p {
            ast::Projection::Wildcard => needs.disable = true,
            ast::Projection::TableWildcard(t) => {
                needs.all_for.insert(t.to_ascii_lowercase());
            }
            ast::Projection::Expr { expr, .. } => collect_expr_needs(expr, &mut needs),
        }
    }
    if let Some(f) = &core.filter {
        collect_expr_needs(f, &mut needs);
    }
    for e in &core.group_by {
        collect_expr_needs(e, &mut needs);
    }
    if let Some(h) = &core.having {
        collect_expr_needs(h, &mut needs);
    }
    for (e, _) in order_by {
        collect_expr_needs(e, &mut needs);
    }
    for item in &core.from {
        collect_from_needs(item, &mut needs);
    }
    needs
}

fn collect_from_needs(item: &ast::FromItem, needs: &mut Needs) {
    match item {
        ast::FromItem::LateralValues { rows, .. } => {
            for row in rows {
                for e in row {
                    collect_expr_needs(e, needs);
                }
            }
        }
        ast::FromItem::LateralFunc { args, .. } => {
            for e in args {
                collect_expr_needs(e, needs);
            }
        }
        ast::FromItem::Join { left, right, on, .. } => {
            collect_from_needs(left, needs);
            collect_from_needs(right, needs);
            collect_expr_needs(on, needs);
        }
        ast::FromItem::Table { .. } | ast::FromItem::Subquery { .. } => {}
    }
}

fn collect_expr_needs(e: &ast::Expr, needs: &mut Needs) {
    match e {
        ast::Expr::Column { table: Some(t), name } => {
            needs
                .per_alias
                .entry(t.to_ascii_lowercase())
                .or_default()
                .insert(name.to_ascii_lowercase());
        }
        ast::Expr::Column { table: None, .. } => needs.disable = true,
        ast::Expr::Literal(_) | ast::Expr::Param(_) | ast::Expr::CountStar => {}
        ast::Expr::Unary(_, x) | ast::Expr::IsNull(x, _) | ast::Expr::Cast(x, _) => {
            collect_expr_needs(x, needs)
        }
        ast::Expr::Binary(_, l, r) | ast::Expr::Subscript(l, r) => {
            collect_expr_needs(l, needs);
            collect_expr_needs(r, needs);
        }
        ast::Expr::Like { expr, pattern, .. } => {
            collect_expr_needs(expr, needs);
            collect_expr_needs(pattern, needs);
        }
        ast::Expr::InList { expr, list, .. } => {
            collect_expr_needs(expr, needs);
            for i in list {
                collect_expr_needs(i, needs);
            }
        }
        ast::Expr::InSubquery { expr, .. } => collect_expr_needs(expr, needs),
        ast::Expr::Between { expr, lo, hi, .. } => {
            collect_expr_needs(expr, needs);
            collect_expr_needs(lo, needs);
            collect_expr_needs(hi, needs);
        }
        ast::Expr::Call { args, .. } => {
            for a in args {
                collect_expr_needs(a, needs);
            }
        }
    }
}

/// A planned FROM unit before execution.
enum Unit<'q> {
    /// Base table or CTE reference.
    Named { name: String, alias: String },
    /// Derived table, materialized eagerly.
    Derived { rel: Relation, alias: String },
    /// Lateral VALUES rows (expressions compiled later, against the
    /// accumulated scope).
    Lateral {
        rows: &'q [Vec<ast::Expr>],
        alias: String,
        columns: Vec<String>,
    },
    /// Lateral table function (args compiled against the accumulated scope).
    LateralFn {
        func: TableFunc,
        args: &'q [ast::Expr],
        alias: String,
        columns: Vec<String>,
    },
    /// Explicit join tree, materialized recursively.
    JoinTree { rel: Relation, scope_cols: Vec<(String, Vec<String>)> },
}

/// Execute a FROM list with WHERE pushdown; returns the final scope and rows.
fn run_from(
    env: &Env<'_>,
    from: &[ast::FromItem],
    filter: Option<&ast::Expr>,
    needs: &Needs,
) -> Result<(Scope, Vec<Row>)> {
    // Table-less SELECT: one empty row.
    if from.is_empty() {
        let scope = Scope::default();
        let mut rows = vec![Vec::new()];
        if let Some(f) = filter {
            let compiled = compile_expr(env, &scope, f)?;
            rows.retain(|_| false);
            let keep = compiled.eval_bool(&[])?;
            if keep {
                rows.push(Vec::new());
            }
        }
        return Ok((scope, rows));
    }

    // Phase 1: turn FROM items into units. With the planner on, inner-only
    // JOIN trees flatten into their leaf units so the optimizer can reorder
    // across explicit JOIN syntax too; their ON conjuncts become ordinary
    // pending conjuncts (equivalent for inner joins).
    let planner_on = env.db.planner_enabled();
    let mut units: Vec<Unit<'_>> = Vec::with_capacity(from.len());
    let mut conjuncts: Vec<&ast::Expr> = Vec::new();
    for item in from {
        if planner_on {
            if let Some(leaves) = flatten_inner_joins(item, &mut conjuncts) {
                for leaf in leaves {
                    units.push(plan_unit(env, leaf)?);
                }
                continue;
            }
        }
        units.push(plan_unit(env, item)?);
    }

    // Phase 2: split WHERE into conjuncts (kept as AST; compiled when their
    // tables are all bound). Flattened ON conjuncts come first so equi keys
    // are found before residual predicates.
    if let Some(f) = filter {
        collect_conjuncts(f, &mut conjuncts);
    }
    let mut pending: Vec<Option<&ast::Expr>> = conjuncts.into_iter().map(Some).collect();

    // Phase 3: pick an attachment order. The planner greedily reorders the
    // maximal leading run of non-lateral units smallest-estimate-first;
    // laterals and everything after them stay in textual order (they may
    // reference any earlier unit's columns).
    let planned: Vec<PlannedUnit> = if planner_on && units.len() > 1 {
        plan_join_order(env, &units, &pending)
    } else {
        (0..units.len()).map(|idx| PlannedUnit { idx, est: None }).collect()
    };
    if planned.iter().enumerate().any(|(pos, p)| pos != p.idx) {
        env.note(|| {
            let names: Vec<String> = planned.iter().map(|p| unit_label(&units[p.idx])).collect();
            format!("join order: {} (reordered)", names.join(", "))
        });
    }

    let mut scope = Scope::default();
    let mut rows: Vec<Row> = vec![Vec::new()]; // identity row
    let mut slots: Vec<Option<Unit<'_>>> = units.into_iter().map(Some).collect();
    // Scope entries contributed per original unit index, for restoring
    // textual order below.
    let mut entry_spans: Vec<(usize, std::ops::Range<usize>)> = Vec::with_capacity(slots.len());

    for p in &planned {
        let unit = slots[p.idx].take().expect("each unit attaches exactly once");
        let label = unit_label(&unit);
        let entries_before = scope.entries.len();
        attach_unit(env, &mut scope, &mut rows, unit, &mut pending, needs)?;
        // Apply every pending conjunct that is now fully resolvable.
        apply_ready_conjuncts(env, &scope, &mut rows, &mut pending)?;
        entry_spans.push((p.idx, entries_before..scope.entries.len()));
        if let Some(est) = p.est {
            env.note(|| {
                format!("{label}: estimated {:.0} rows, actual {}", est, rows.len())
            });
        }
    }

    // Restore scope entries to textual order so `SELECT *` column order is
    // unaffected by the planner; offsets keep pointing at the physical row
    // layout, which is what name resolution uses.
    entry_spans.sort_by_key(|(orig, _)| *orig);
    let mut old: Vec<Option<ScopeEntry>> =
        std::mem::take(&mut scope.entries).into_iter().map(Some).collect();
    for (_, span) in entry_spans {
        for k in span {
            scope.entries.push(old[k].take().expect("entry moved once"));
        }
    }

    // Any conjunct still unresolved references unknown columns — surface the
    // resolution error.
    for c in pending.into_iter().flatten() {
        let compiled = compile_expr(env, &scope, c)?;
        rows = filter_rows_par(env, rows, &compiled)?;
    }
    Ok((scope, rows))
}

/// One step of the planned attachment order.
struct PlannedUnit {
    /// Index into the unit list.
    idx: usize,
    /// Estimated cumulative row count after this unit attaches and its
    /// filters apply (`None` when the planner did not estimate it).
    est: Option<f64>,
}

/// Display label for a unit (EXPLAIN output).
fn unit_label(unit: &Unit<'_>) -> String {
    match unit {
        Unit::Named { alias, .. } => alias.clone(),
        Unit::Derived { alias, .. } => alias.clone(),
        Unit::Lateral { alias, .. } => alias.clone(),
        Unit::LateralFn { alias, .. } => alias.clone(),
        Unit::JoinTree { scope_cols, .. } => {
            let names: Vec<&str> = scope_cols.iter().map(|(a, _)| a.as_str()).collect();
            names.join("+")
        }
    }
}

/// Flatten an inner-only JOIN tree whose leaves are all tables/subqueries
/// into its leaf items, pushing every ON conjunct into `on_out`. Returns
/// `None` (caller keeps the tree intact) for outer joins, lateral operands,
/// or non-join items.
fn flatten_inner_joins<'q>(
    item: &'q ast::FromItem,
    on_out: &mut Vec<&'q ast::Expr>,
) -> Option<Vec<&'q ast::FromItem>> {
    fn walk<'q>(
        item: &'q ast::FromItem,
        leaves: &mut Vec<&'q ast::FromItem>,
        ons: &mut Vec<&'q ast::Expr>,
    ) -> bool {
        match item {
            ast::FromItem::Join { left, right, kind: ast::JoinKind::Inner, on } => {
                walk(left, leaves, ons) && walk(right, leaves, ons) && {
                    collect_conjuncts(on, ons);
                    true
                }
            }
            ast::FromItem::Table { .. } | ast::FromItem::Subquery { .. } => {
                leaves.push(item);
                true
            }
            _ => false,
        }
    }
    if !matches!(item, ast::FromItem::Join { .. }) {
        return None;
    }
    let mut leaves = Vec::new();
    let mut ons = Vec::new();
    if walk(item, &mut leaves, &mut ons) {
        on_out.extend(ons);
        Some(leaves)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Cost-based join ordering
// ---------------------------------------------------------------------------

/// Cross joins are strongly discouraged: attaching an unconnected unit costs
/// its full Cartesian product, deferred until a join key becomes available.
const CROSS_JOIN_PENALTY: f64 = 10.0;
/// Mild preference for attaching base tables whose join key is indexed —
/// they probe per row instead of materializing a hash build side.
const INDEX_JOIN_BONUS: f64 = 0.8;

/// Planning facts for one FROM unit, gathered without executing it.
struct UnitFacts {
    /// Aliases this unit contributes to the scope (lower-cased).
    aliases: Vec<String>,
    /// Unfiltered cardinality.
    rows: f64,
    /// Cardinality after single-unit constant predicates.
    est: f64,
    /// Statistics (base tables only): stored `ANALYZE` stats or index-seeded.
    stats: Option<crate::stats::TableStats>,
    /// Lower-cased column name → position (base tables only).
    col_index: FxHashMap<String, usize>,
    /// Key parts covered by a single-part index (base tables only).
    indexed_parts: Vec<crate::index::KeyPart>,
    /// Live row count at planning time (base tables only; caps ndv).
    live: usize,
    /// Lateral units cannot move — they reference earlier units' columns.
    reorderable: bool,
}

/// An equi-join conjunct linking two units, with its estimated selectivity.
struct JoinEdge {
    a: usize,
    b: usize,
    sel: f64,
    /// The `a`/`b`-side key is a single-part-indexed key of that unit.
    a_indexed: bool,
    b_indexed: bool,
}

/// Collect the set of alias qualifiers in `e` into `out`. Returns `false`
/// when the expression is not analyzable (unqualified columns, subqueries).
fn expr_aliases(e: &ast::Expr, out: &mut FxHashSet<String>) -> bool {
    match e {
        ast::Expr::Column { table: Some(t), .. } => {
            out.insert(t.to_ascii_lowercase());
            true
        }
        ast::Expr::Column { table: None, .. } => false,
        ast::Expr::Literal(_) | ast::Expr::Param(_) | ast::Expr::CountStar => true,
        ast::Expr::Unary(_, x) | ast::Expr::IsNull(x, _) | ast::Expr::Cast(x, _) => {
            expr_aliases(x, out)
        }
        ast::Expr::Binary(_, l, r) | ast::Expr::Subscript(l, r) => {
            expr_aliases(l, out) && expr_aliases(r, out)
        }
        ast::Expr::Like { expr, pattern, .. } => {
            expr_aliases(expr, out) && expr_aliases(pattern, out)
        }
        ast::Expr::InList { expr, list, .. } => {
            expr_aliases(expr, out) && list.iter().all(|i| expr_aliases(i, out))
        }
        ast::Expr::InSubquery { .. } => false,
        ast::Expr::Between { expr, lo, hi, .. } => {
            expr_aliases(expr, out) && expr_aliases(lo, out) && expr_aliases(hi, out)
        }
        ast::Expr::Call { args, .. } => args.iter().all(|a| expr_aliases(a, out)),
    }
}

/// A constant operand from the planner's point of view (parameters are
/// inlined as constants at compile time).
fn is_const_operand(e: &ast::Expr) -> bool {
    matches!(e, ast::Expr::Literal(_) | ast::Expr::Param(_))
}

/// Resolve an AST expression to an index key part of `facts`' table: a
/// qualified bare column or `JSON_VAL(col, 'member')` over one.
fn ast_key_part(facts: &UnitFacts, e: &ast::Expr) -> Option<crate::index::KeyPart> {
    use crate::index::KeyPart;
    match e {
        ast::Expr::Column { table: Some(_), name } => facts
            .col_index
            .get(&name.to_ascii_lowercase())
            .map(|&c| KeyPart::Column(c)),
        ast::Expr::Call { name, args, .. } if name.eq_ignore_ascii_case("JSON_VAL") => {
            match (args.first(), args.get(1)) {
                (
                    Some(ast::Expr::Column { table: Some(_), name: col }),
                    Some(ast::Expr::Literal(Value::Str(member))),
                ) => facts
                    .col_index
                    .get(&col.to_ascii_lowercase())
                    .map(|&c| KeyPart::JsonKey(c, member.to_string())),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Distinct-value estimate for one side of a join conjunct. Falls back to
/// the System-R tenth-of-the-rows default when no statistic applies.
fn side_ndv(facts: &UnitFacts, e: &ast::Expr) -> f64 {
    if let (Some(part), Some(stats)) = (ast_key_part(facts, e), facts.stats.as_ref()) {
        return stats.ndv_or_default(&part, facts.live) as f64;
    }
    (facts.rows / 10.0).max(1.0)
}

/// Selectivity of a single-unit conjunct: `key = const` uses 1/ndv, any
/// other recognized predicate the classic 0.3 guess.
fn conjunct_selectivity(facts: &UnitFacts, c: &ast::Expr) -> f64 {
    if let ast::Expr::Binary(BinaryOp::Eq, a, b) = c {
        let key = if is_const_operand(b) {
            Some(a)
        } else if is_const_operand(a) {
            Some(b)
        } else {
            None
        };
        if let Some(key) = key {
            if let (Some(part), Some(stats)) = (ast_key_part(facts, key), facts.stats.as_ref()) {
                return stats.eq_selectivity(&part, facts.live);
            }
            return 1.0 / (facts.rows / 10.0).max(1.0);
        }
    }
    0.3
}

/// Gather planning facts for every unit; estimates never execute a unit
/// (base tables are inspected under a briefly-held read lock).
fn gather_unit_facts(
    env: &Env<'_>,
    units: &[Unit<'_>],
    pending: &[Option<&ast::Expr>],
) -> Vec<UnitFacts> {
    let mut all: Vec<UnitFacts> = units
        .iter()
        .map(|unit| match unit {
            Unit::Named { name, alias } => {
                if let Some(cte) = env.ctes.get(name) {
                    return UnitFacts {
                        aliases: vec![alias.to_ascii_lowercase()],
                        rows: cte.rows.len() as f64,
                        est: cte.rows.len() as f64,
                        stats: None,
                        col_index: FxHashMap::default(),
                        indexed_parts: Vec::new(),
                        live: 0,
                        reorderable: true,
                    };
                }
                match env.db.read_table(name) {
                    Ok(t) => {
                        let live = t.len();
                        // Analyzed stats whose recorded row count has
                        // drifted >2× from the live table mislead more
                        // than they help; fall back to seeded stats.
                        let stats = t
                            .stats()
                            .filter(|s| !s.is_stale(live))
                            .cloned()
                            .unwrap_or_else(|| crate::stats::TableStats::seed(&t));
                        let col_index = t
                            .schema
                            .columns
                            .iter()
                            .enumerate()
                            .map(|(i, c)| (c.name.clone(), i))
                            .collect();
                        let indexed_parts = t
                            .indexes()
                            .iter()
                            .filter(|i| i.parts.len() == 1)
                            .map(|i| i.parts[0].clone())
                            .collect();
                        UnitFacts {
                            aliases: vec![alias.to_ascii_lowercase()],
                            rows: live as f64,
                            est: live as f64,
                            stats: Some(stats),
                            col_index,
                            indexed_parts,
                            live,
                            reorderable: true,
                        }
                    }
                    // Missing table: the attach step will surface the error;
                    // give the planner a neutral placeholder.
                    Err(_) => UnitFacts {
                        aliases: vec![alias.to_ascii_lowercase()],
                        rows: 1.0,
                        est: 1.0,
                        stats: None,
                        col_index: FxHashMap::default(),
                        indexed_parts: Vec::new(),
                        live: 0,
                        reorderable: true,
                    },
                }
            }
            Unit::Derived { rel, alias } => UnitFacts {
                aliases: vec![alias.to_ascii_lowercase()],
                rows: rel.rows.len() as f64,
                est: rel.rows.len() as f64,
                stats: None,
                col_index: FxHashMap::default(),
                indexed_parts: Vec::new(),
                live: 0,
                reorderable: true,
            },
            Unit::JoinTree { rel, scope_cols } => UnitFacts {
                aliases: scope_cols.iter().map(|(a, _)| a.to_ascii_lowercase()).collect(),
                rows: rel.rows.len() as f64,
                est: rel.rows.len() as f64,
                stats: None,
                col_index: FxHashMap::default(),
                indexed_parts: Vec::new(),
                live: 0,
                reorderable: true,
            },
            Unit::Lateral { alias, .. } | Unit::LateralFn { alias, .. } => UnitFacts {
                aliases: vec![alias.to_ascii_lowercase()],
                rows: 1.0,
                est: 1.0,
                stats: None,
                col_index: FxHashMap::default(),
                indexed_parts: Vec::new(),
                live: 0,
                reorderable: false,
            },
        })
        .collect();

    // Apply single-unit constant predicates to the estimates.
    for facts in &mut all {
        let mut sel = 1.0;
        for c in pending.iter().flatten() {
            let mut aliases = FxHashSet::default();
            if !expr_aliases(c, &mut aliases) || aliases.len() != 1 {
                continue;
            }
            let alias = aliases.iter().next().expect("len checked");
            if facts.aliases.len() == 1 && facts.aliases[0] == *alias {
                sel *= conjunct_selectivity(facts, c);
            }
        }
        facts.est = facts.rows * sel;
    }
    all
}

/// Extract equi-join edges between reorderable units from the pending
/// conjuncts.
fn extract_join_edges(
    facts: &[UnitFacts],
    pending: &[Option<&ast::Expr>],
    prefix: usize,
) -> Vec<JoinEdge> {
    let owner_of = |alias: &str| -> Option<usize> {
        facts[..prefix]
            .iter()
            .position(|f| f.aliases.iter().any(|a| a == alias))
    };
    let mut edges = Vec::new();
    for c in pending.iter().flatten() {
        let ast::Expr::Binary(BinaryOp::Eq, l, r) = c else { continue };
        let mut la = FxHashSet::default();
        let mut ra = FxHashSet::default();
        if !expr_aliases(l, &mut la) || !expr_aliases(r, &mut ra) {
            continue;
        }
        if la.len() != 1 || ra.len() != 1 {
            continue;
        }
        let (la, ra) = (
            la.iter().next().expect("len checked").clone(),
            ra.iter().next().expect("len checked").clone(),
        );
        let (Some(a), Some(b)) = (owner_of(&la), owner_of(&ra)) else { continue };
        if a == b {
            continue;
        }
        let sel = 1.0 / side_ndv(&facts[a], l).max(side_ndv(&facts[b], r));
        let a_indexed = ast_key_part(&facts[a], l)
            .is_some_and(|p| facts[a].indexed_parts.contains(&p));
        let b_indexed = ast_key_part(&facts[b], r)
            .is_some_and(|p| facts[b].indexed_parts.contains(&p));
        edges.push(JoinEdge { a, b, sel, a_indexed, b_indexed });
    }
    edges
}

/// Greedy smallest-first join ordering over the maximal leading run of
/// non-lateral units. Starts from the unit with the smallest filtered
/// estimate, then repeatedly attaches the unit minimizing the estimated
/// intermediate result — penalizing cross joins, mildly preferring
/// index-probe attachments. Units at or after the first lateral keep their
/// textual positions.
fn plan_join_order(
    env: &Env<'_>,
    units: &[Unit<'_>],
    pending: &[Option<&ast::Expr>],
) -> Vec<PlannedUnit> {
    let facts = gather_unit_facts(env, units, pending);
    let prefix = facts.iter().position(|f| !f.reorderable).unwrap_or(facts.len());
    if prefix < 2 {
        return (0..units.len()).map(|idx| PlannedUnit { idx, est: None }).collect();
    }
    let edges = extract_join_edges(&facts, pending, prefix);

    let mut order: Vec<PlannedUnit> = Vec::with_capacity(units.len());
    let mut used = vec![false; prefix];
    let first = (0..prefix)
        .min_by(|&i, &j| facts[i].est.total_cmp(&facts[j].est))
        .expect("prefix >= 2");
    used[first] = true;
    let mut cur = facts[first].est;
    order.push(PlannedUnit { idx: first, est: Some(cur) });

    while order.len() < prefix {
        let mut best: Option<(usize, f64, f64)> = None; // (unit, cost, result rows)
        for j in 0..prefix {
            if used[j] {
                continue;
            }
            let mut sel = 1.0;
            let mut connected = false;
            let mut probes_index = false;
            for e in &edges {
                let (other, j_side_indexed) = if e.a == j {
                    (e.b, e.a_indexed)
                } else if e.b == j {
                    (e.a, e.b_indexed)
                } else {
                    continue;
                };
                if !used[other] {
                    continue;
                }
                connected = true;
                sel *= e.sel;
                probes_index |= j_side_indexed;
            }
            let result = cur * facts[j].est * sel;
            let mut cost = result;
            if !connected {
                cost *= CROSS_JOIN_PENALTY;
            } else if probes_index && facts[j].stats.is_some() {
                cost *= INDEX_JOIN_BONUS;
            }
            if best.as_ref().is_none_or(|(_, bc, _)| cost < *bc) {
                best = Some((j, cost, result));
            }
        }
        let (j, _, result) = best.expect("unused unit remains");
        used[j] = true;
        cur = result;
        order.push(PlannedUnit { idx: j, est: Some(cur) });
    }
    // The first lateral and everything after it attach in textual order.
    order.extend((prefix..units.len()).map(|idx| PlannedUnit { idx, est: None }));
    order
}

fn plan_unit<'q>(env: &Env<'_>, item: &'q ast::FromItem) -> Result<Unit<'q>> {
    match item {
        ast::FromItem::Table { name, alias } => Ok(Unit::Named {
            name: name.to_ascii_lowercase(),
            alias: alias.clone().unwrap_or_else(|| name.clone()),
        }),
        ast::FromItem::Subquery { query, alias } => {
            let rel = run_select(env, query)?;
            Ok(Unit::Derived { rel, alias: alias.clone() })
        }
        ast::FromItem::LateralValues { rows, alias, columns } => Ok(Unit::Lateral {
            rows,
            alias: alias.clone(),
            columns: columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
        }),
        ast::FromItem::LateralFunc { func, args, alias, columns } => Ok(Unit::LateralFn {
            func: TableFunc::parse(func)?,
            args,
            alias: alias.clone(),
            columns: columns.iter().map(|c| c.to_ascii_lowercase()).collect(),
        }),
        ast::FromItem::Join { .. } => {
            let (rel, scope_cols) = run_join_tree(env, item)?;
            Ok(Unit::JoinTree { rel, scope_cols })
        }
    }
}

/// Execute an explicit JOIN tree into a relation, tracking per-alias columns.
fn run_join_tree(env: &Env<'_>, item: &ast::FromItem) -> Result<(Relation, ScopeCols)> {
    match item {
        ast::FromItem::Join { left, right, kind, on } => {
            let (lrel, lcols) = run_join_tree(env, left)?;
            // Index nested-loop fast path: right side is a base table whose
            // join column is indexed — probe per left row instead of
            // materializing and hashing the whole table.
            if let ast::FromItem::Table { name, alias } = right.as_ref() {
                let lname = name.to_ascii_lowercase();
                if !env.ctes.contains_key(&lname) {
                    let ralias = alias.clone().unwrap_or_else(|| name.clone());
                    if let Some(result) =
                        try_index_join(env, &lrel, &lcols, &lname, &ralias, *kind, on)?
                    {
                        return Ok(result);
                    }
                }
            }
            let (rrel, rcols) = run_join_tree(env, right)?;
            // Build the combined scope for the ON expression.
            let mut scope = Scope::default();
            for (alias, cols) in lcols.iter().chain(rcols.iter()) {
                scope.push(alias, cols.clone());
            }
            let lwidth = lrel.columns.len();
            let rwidth = rrel.columns.len();
            let on_compiled = compile_expr(env, &scope, on)?;

            // Hash equi-join when the ON contains `l = r` across the inputs.
            let equi = find_equi_split(&on_compiled, lwidth);
            let mut out_rows = Vec::new();
            match equi {
                Some((lkey, rkey)) => {
                    // Side purity (per `find_equi_split`) lets the build key
                    // re-base onto the bare right row and the probe key run
                    // on the left row directly — no padding clones.
                    let mut rkey = rkey;
                    rkey.map_columns(&mut |c| c - lwidth);
                    let mut table: FxHashMap<Value, Vec<&Row>> = FxHashMap::default();
                    for r in &rrel.rows {
                        let k = rkey.eval(r)?;
                        if !k.is_null() {
                            table.entry(k).or_default().push(r);
                        }
                    }
                    for l in &lrel.rows {
                        let k = lkey.eval(l)?;
                        let mut matched = false;
                        if !k.is_null() {
                            if let Some(cands) = table.get(&k) {
                                for r in cands {
                                    let mut combined = l.clone();
                                    combined.extend_from_slice(r);
                                    if on_compiled.eval_bool(&combined)? {
                                        matched = true;
                                        out_rows.push(combined);
                                    }
                                }
                            }
                        }
                        if !matched && *kind == ast::JoinKind::LeftOuter {
                            let mut combined = l.clone();
                            combined.extend(std::iter::repeat_with(|| Value::Null).take(rwidth));
                            out_rows.push(combined);
                        }
                    }
                }
                None => {
                    // Nested loop.
                    for l in &lrel.rows {
                        let mut matched = false;
                        for r in &rrel.rows {
                            let mut combined = l.clone();
                            combined.extend_from_slice(r);
                            if on_compiled.eval_bool(&combined)? {
                                matched = true;
                                out_rows.push(combined);
                            }
                        }
                        if !matched && *kind == ast::JoinKind::LeftOuter {
                            let mut combined = l.clone();
                            combined.extend(std::iter::repeat_with(|| Value::Null).take(rwidth));
                            out_rows.push(combined);
                        }
                    }
                }
            }
            let mut columns = lrel.columns;
            columns.extend(rrel.columns);
            let mut scope_cols = lcols;
            scope_cols.extend(rcols);
            Ok((Relation { columns, rows: out_rows }, scope_cols))
        }
        ast::FromItem::Table { name, alias } => {
            let rel = load_named(env, &name.to_ascii_lowercase(), &[])?;
            let alias = alias.clone().unwrap_or_else(|| name.clone());
            let cols = rel.columns.clone();
            Ok((rel, vec![(alias, cols)]))
        }
        ast::FromItem::Subquery { query, alias } => {
            let rel = run_select(env, query)?;
            let cols = rel.columns.clone();
            Ok((rel, vec![(alias.clone(), cols)]))
        }
        ast::FromItem::LateralValues { .. } | ast::FromItem::LateralFunc { .. } => {
            Err(Error::Invalid(
                "TABLE(...) items cannot be JOIN operands; use them as comma FROM items".into(),
            ))
        }
    }
}

/// Index nested-loop join of `lrel` against base table `table_name`:
/// succeeds only when the ON clause contains an equi conjunct whose right
/// side is a bare indexed column of the table. Returns `None` (caller falls
/// back to hash/NL join) otherwise.
fn try_index_join(
    env: &Env<'_>,
    lrel: &Relation,
    lcols: &[(String, Vec<String>)],
    table_name: &str,
    ralias: &str,
    kind: ast::JoinKind,
    on: &ast::Expr,
) -> Result<Option<(Relation, ScopeCols)>> {
    let guard = match env.db.read_table(table_name) {
        Ok(g) => g,
        Err(_) => return Ok(None),
    };
    let table: &Table = &guard;
    let rnames: Vec<String> = table.schema.columns.iter().map(|c| c.name.clone()).collect();
    let mut scope = Scope::default();
    for (alias, cols) in lcols {
        scope.push(alias, cols.clone());
    }
    let lwidth = scope.width;
    scope.push(ralias, rnames.clone());
    let on_compiled = compile_expr(env, &scope, on)?;
    let Some((lkey, rkey)) = find_equi_split(&on_compiled, lwidth) else {
        return Ok(None);
    };
    // Right key must be a single bare column with a usable index.
    let Expr::Col(ridx) = rkey else { return Ok(None) };
    if ridx < lwidth {
        return Ok(None);
    }
    let rcol = ridx - lwidth;
    let Some(idx) = table
        .indexes()
        .iter()
        .find(|i| i.columns.len() == 1 && i.columns[0] == rcol)
    else {
        return Ok(None);
    };
    env.note(|| {
        format!(
            "{table_name}: index {} join via {}",
            if kind == ast::JoinKind::LeftOuter { "left-outer" } else { "nested-loop" },
            idx.name
        )
    });
    let rwidth = rnames.len();
    let mut out_rows = Vec::new();
    for l in &lrel.rows {
        // `lkey` touches only columns < lwidth, so it evaluates directly on
        // the left row — no padded probe clone.
        let k = lkey.eval(l)?;
        let mut matched = false;
        if !k.is_null() {
            for &rid in idx.lookup(&IndexKey(vec![k])) {
                let row = table.get(rid).expect("index points at live row");
                let mut combined = l.clone();
                combined.extend_from_slice(row);
                if on_compiled.eval_bool(&combined)? {
                    matched = true;
                    out_rows.push(combined);
                }
            }
        }
        if !matched && kind == ast::JoinKind::LeftOuter {
            let mut combined = l.clone();
            combined.extend(std::iter::repeat_with(|| Value::Null).take(rwidth));
            out_rows.push(combined);
        }
    }
    let mut columns = lrel.columns.clone();
    columns.extend(rnames.clone());
    let mut scope_cols = lcols.to_vec();
    scope_cols.push((ralias.to_string(), rnames));
    Ok(Some((Relation { columns, rows: out_rows }, scope_cols)))
}

/// If `on` includes a conjunct `expr_l = expr_r` where `expr_l` touches only
/// columns `< lwidth` and `expr_r` only columns `>= lwidth` (or vice versa),
/// return `(left_key, right_key)`.
fn find_equi_split(on: &Expr, lwidth: usize) -> Option<(Expr, Expr)> {
    let mut found = None;
    visit_conjuncts(on, &mut |c| {
        if found.is_some() {
            return;
        }
        if let Expr::Binary(BinaryOp::Eq, a, b) = c {
            let side = |e: &Expr| -> Option<bool> {
                // Some(true) = pure left, Some(false) = pure right.
                let mut all_left = true;
                let mut all_right = true;
                let mut any = false;
                e.visit_columns(&mut |i| {
                    any = true;
                    if i < lwidth {
                        all_right = false;
                    } else {
                        all_left = false;
                    }
                });
                if !any {
                    return None;
                }
                if all_left {
                    Some(true)
                } else if all_right {
                    Some(false)
                } else {
                    None
                }
            };
            match (side(a), side(b)) {
                (Some(true), Some(false)) => found = Some(((**a).clone(), (**b).clone())),
                (Some(false), Some(true)) => found = Some(((**b).clone(), (**a).clone())),
                _ => {}
            }
        }
    });
    found
}

fn visit_conjuncts(e: &Expr, f: &mut impl FnMut(&Expr)) {
    if let Expr::Binary(BinaryOp::And, l, r) = e {
        visit_conjuncts(l, f);
        visit_conjuncts(r, f);
    } else {
        f(e);
    }
}

fn collect_conjuncts<'q>(e: &'q ast::Expr, out: &mut Vec<&'q ast::Expr>) {
    if let ast::Expr::Binary(BinaryOp::And, l, r) = e {
        collect_conjuncts(l, out);
        collect_conjuncts(r, out);
    } else {
        out.push(e);
    }
}

/// Built-in lateral table functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TableFunc {
    /// `JSON_EDGES(doc [, label])`: unnest a JSON adjacency document
    /// `{"label": [{"eid": e, "val": v}, ...]}` into `(lbl, eid, val)` rows.
    JsonEdges,
    /// `JSON_EACH(doc)`: unnest a JSON object into `(key, value)` rows.
    JsonEach,
    /// `UNNEST(array)`: one row per array element, column `(val)`.
    Unnest,
}

impl TableFunc {
    fn parse(name: &str) -> Result<TableFunc> {
        match name.to_ascii_uppercase().as_str() {
            "JSON_EDGES" => Ok(TableFunc::JsonEdges),
            "JSON_EACH" => Ok(TableFunc::JsonEach),
            "UNNEST" => Ok(TableFunc::Unnest),
            other => Err(Error::NotFound(format!("table function '{other}'"))),
        }
    }

    fn invoke(&self, args: &[Value]) -> Result<Vec<Row>> {
        match self {
            TableFunc::JsonEdges => {
                // Accepts a parsed JSON value or serialized text. The text
                // form decodes per call — the document-store cost model the
                // adjacency micro-benchmark measures.
                let parsed;
                let doc = match args.first() {
                    Some(Value::Json(j)) => &**j,
                    Some(Value::Str(s)) => {
                        parsed = sqlgraph_json::parse(s)
                            .map_err(|e| Error::Type(format!("JSON_EDGES: {e}")))?;
                        &parsed
                    }
                    Some(Value::Null) | None => return Ok(Vec::new()),
                    Some(other) => {
                        return Err(Error::Type(format!(
                            "JSON_EDGES expects a JSON document, got {}",
                            other.type_name()
                        )))
                    }
                };
                let label_filter = match args.get(1) {
                    None | Some(Value::Null) => None,
                    Some(Value::Str(s)) => Some(s.as_ref()),
                    Some(other) => {
                        return Err(Error::Type(format!(
                            "JSON_EDGES label must be TEXT, got {}",
                            other.type_name()
                        )))
                    }
                };
                let Some(obj) = doc.as_object() else { return Ok(Vec::new()) };
                let mut out = Vec::new();
                for (label, edges) in obj.iter() {
                    if label_filter.is_some_and(|want| want != label) {
                        continue;
                    }
                    let Some(arr) = edges.as_array() else { continue };
                    for entry in arr {
                        let eid = entry
                            .get("eid")
                            .map(crate::expr::json_to_value)
                            .unwrap_or(Value::Null);
                        let val = entry
                            .get("val")
                            .map(crate::expr::json_to_value)
                            .unwrap_or(Value::Null);
                        out.push(vec![Value::str(label), eid, val]);
                    }
                }
                Ok(out)
            }
            TableFunc::JsonEach => {
                let doc = match args.first() {
                    Some(Value::Json(j)) => j,
                    Some(Value::Null) | None => return Ok(Vec::new()),
                    Some(other) => {
                        return Err(Error::Type(format!(
                            "JSON_EACH expects a JSON document, got {}",
                            other.type_name()
                        )))
                    }
                };
                let Some(obj) = doc.as_object() else { return Ok(Vec::new()) };
                Ok(obj
                    .iter()
                    .map(|(k, v)| vec![Value::str(k), crate::expr::json_to_value(v)])
                    .collect())
            }
            TableFunc::Unnest => match args.first() {
                Some(Value::Array(items)) => {
                    Ok(items.iter().map(|v| vec![v.clone()]).collect())
                }
                Some(Value::Null) | None => Ok(Vec::new()),
                Some(other) => Err(Error::Type(format!(
                    "UNNEST expects an array, got {}",
                    other.type_name()
                ))),
            },
        }
    }

    fn arity(&self) -> usize {
        match self {
            TableFunc::JsonEdges => 3,
            TableFunc::JsonEach => 2,
            TableFunc::Unnest => 1,
        }
    }
}

/// Attach a unit to the accumulated rows, choosing a join strategy.
fn attach_unit(
    env: &Env<'_>,
    scope: &mut Scope,
    rows: &mut Vec<Row>,
    unit: Unit<'_>,
    pending: &mut [Option<&ast::Expr>],
    needs: &Needs,
) -> Result<()> {
    match unit {
        Unit::Lateral { rows: value_rows, alias, columns } => {
            // Compile row expressions against a scope extended with the
            // lateral's own columns *excluded* — they may only reference
            // earlier units.
            let arity = columns.len();
            let mut compiled_rows = Vec::with_capacity(value_rows.len());
            for vr in value_rows {
                let mut cr = Vec::with_capacity(vr.len());
                for e in vr {
                    cr.push(compile_expr(env, scope, e)?);
                }
                compiled_rows.push(cr);
            }
            scope.push(&alias, columns);
            let mut out = Vec::with_capacity(rows.len() * compiled_rows.len());
            for row in rows.drain(..) {
                for cr in &compiled_rows {
                    let mut extended = row.clone();
                    for e in cr {
                        extended.push(e.eval(&row)?);
                    }
                    debug_assert_eq!(extended.len(), row.len() + arity);
                    out.push(extended);
                }
            }
            *rows = out;
            Ok(())
        }
        Unit::LateralFn { func, args, alias, columns } => {
            if columns.len() != func.arity() {
                return Err(Error::Invalid(format!(
                    "{func:?} produces {} columns, alias declares {}",
                    func.arity(),
                    columns.len()
                )));
            }
            let compiled: Vec<Expr> = args
                .iter()
                .map(|e| compile_expr(env, scope, e))
                .collect::<Result<_>>()?;
            scope.push(&alias, columns);
            let mut out = Vec::new();
            for row in rows.drain(..) {
                let mut arg_values = Vec::with_capacity(compiled.len());
                for e in &compiled {
                    arg_values.push(e.eval(&row)?);
                }
                for produced in func.invoke(&arg_values)? {
                    let mut extended = row.clone();
                    extended.extend(produced);
                    out.push(extended);
                }
            }
            *rows = out;
            Ok(())
        }
        Unit::Derived { rel, alias } => {
            attach_relation(scope, rows, rel, &alias, env, pending)
        }
        Unit::JoinTree { rel, scope_cols } => {
            // Multi-alias relation: extend the scope with every alias, then
            // cross/hash join like a derived table. Join-tree outputs are
            // attached by hash join when a pending equi conjunct links them.
            let base_alias_cols = scope_cols;
            let mut flat_cols = Vec::new();
            for (_, cols) in &base_alias_cols {
                flat_cols.extend(cols.iter().cloned());
            }
            let before_width = scope.width;
            for (alias, cols) in &base_alias_cols {
                scope.push(alias, cols.clone());
            }
            join_pending(env, scope, rows, rel, before_width, pending)
        }
        Unit::Named { name, alias } => {
            // Base table: try index-assisted attachment.
            if let Some(cte) = env.ctes.get(&name) {
                let rel = (**cte).clone();
                return attach_relation(scope, rows, rel, &alias, env, pending);
            }
            attach_base_table(env, scope, rows, &name, &alias, pending, needs)
        }
    }
}

fn attach_relation(
    scope: &mut Scope,
    rows: &mut Vec<Row>,
    rel: Relation,
    alias: &str,
    env: &Env<'_>,
    pending: &mut [Option<&ast::Expr>],
) -> Result<()> {
    let before_width = scope.width;
    let arity = rel.columns.len();
    scope.push(alias, rel.columns.clone());
    let mut rel = rel;
    push_down_filters(env, scope, before_width, arity, alias, &mut rel, pending)?;
    join_pending(env, scope, rows, rel, before_width, pending)
}

/// Predicate pushdown: apply every pending conjunct that touches only the
/// unit just pushed at `before_width` (arity `arity`, in `rel`'s layout)
/// directly to `rel`'s rows, before the join materializes combined rows.
fn push_down_filters(
    env: &Env<'_>,
    scope: &Scope,
    before_width: usize,
    arity: usize,
    alias: &str,
    rel: &mut Relation,
    pending: &mut [Option<&ast::Expr>],
) -> Result<()> {
    for slot in pending.iter_mut() {
        let Some(c) = slot else { continue };
        let Ok(compiled) = compile_expr(env, scope, c) else { continue };
        let mut any = false;
        let mut local = true;
        compiled.visit_columns(&mut |i| {
            any = true;
            if i < before_width || i >= before_width + arity {
                local = false;
            }
        });
        if !any || !local {
            continue;
        }
        // Re-base the predicate from the combined layout onto the bare unit
        // row, filter in place, and retire the conjunct.
        let mut rebased = compiled.clone();
        rebased.map_columns(&mut |i| i - before_width);
        let before = rel.rows.len();
        rel.rows = filter_rows(std::mem::take(&mut rel.rows), &rebased)?;
        env.note(|| {
            format!("{alias}: pushdown filter ({before} -> {} rows)", rel.rows.len())
        });
        *slot = None;
    }
    Ok(())
}

/// Take every pending conjunct local to the unit at `before_width` and
/// return it re-based onto the bare unit row, retiring the pending slot.
/// The scan then evaluates these predicates inside its morsel loop (fused
/// scan + filter) instead of materializing unfiltered rows first.
fn take_local_filters(
    env: &Env<'_>,
    scope: &Scope,
    before_width: usize,
    arity: usize,
    pending: &mut [Option<&ast::Expr>],
) -> Vec<Expr> {
    let mut out = Vec::new();
    for slot in pending.iter_mut() {
        let Some(c) = slot else { continue };
        let Ok(compiled) = compile_expr(env, scope, c) else { continue };
        let mut any = false;
        let mut local = true;
        compiled.visit_columns(&mut |i| {
            any = true;
            if i < before_width || i >= before_width + arity {
                local = false;
            }
        });
        if !any || !local {
            continue;
        }
        let mut rebased = compiled;
        rebased.map_columns(&mut |i| i - before_width);
        out.push(rebased);
        *slot = None;
    }
    out
}

/// Join `rel` (already pushed into `scope` at `before_width`) to the
/// accumulated rows: hash join on the first usable pending equi conjunct,
/// else cross product.
fn join_pending(
    env: &Env<'_>,
    scope: &Scope,
    rows: &mut Vec<Row>,
    rel: Relation,
    before_width: usize,
    pending: &mut [Option<&ast::Expr>],
) -> Result<()> {
    // Find a pending equi conjunct usable as the hash key.
    let mut key_pair: Option<(Expr, Expr, usize)> = None;
    for (i, slot) in pending.iter().enumerate() {
        let Some(c) = slot else { continue };
        let Ok(compiled) = compile_expr(env, scope, c) else { continue };
        if let Some((lk, rk)) = find_equi_split(&compiled, before_width) {
            // Keys must not reference columns beyond the current width.
            let mut max_col = 0;
            lk.visit_columns(&mut |i| max_col = max_col.max(i));
            rk.visit_columns(&mut |i| max_col = max_col.max(i));
            if max_col < scope.width {
                key_pair = Some((lk, rk, i));
                break;
            }
        }
    }
    match key_pair {
        Some((lkey, rkey, idx)) => {
            let dop = env.db.dop_for(rel.rows.len().max(rows.len()));
            env.note(|| format!("hash join ({} build rows, dop {dop})", rel.rows.len()));
            pending[idx] = None;
            // `find_equi_split` guarantees side purity: rkey references only
            // columns >= before_width, lkey only columns < before_width. So
            // the build key can be re-based onto the bare right row and the
            // probe key evaluated on the left row directly — no per-row
            // padding clones.
            let mut rkey = rkey;
            rkey.map_columns(&mut |c| c - before_width);
            if dop <= 1 {
                let mut table: FxHashMap<Value, Vec<&Row>> = FxHashMap::default();
                for r in &rel.rows {
                    let k = rkey.eval(r)?;
                    if !k.is_null() {
                        table.entry(k).or_default().push(r);
                    }
                }
                let mut out = Vec::new();
                for l in rows.drain(..) {
                    let k = lkey.eval(&l)?;
                    if k.is_null() {
                        continue;
                    }
                    if let Some(cands) = table.get(&k) {
                        for r in cands {
                            let mut combined = l.clone();
                            combined.extend_from_slice(r);
                            out.push(combined);
                        }
                    }
                }
                *rows = out;
            } else {
                *rows = parallel_hash_join(dop, rows, &rel.rows, &lkey, &rkey)?;
            }
        }
        None => {
            let dop = env.db.dop_for(rows.len());
            env.note(|| format!("cross join ({} right rows, dop {dop})", rel.rows.len()));
            let left = std::mem::take(rows);
            let right = &rel.rows;
            let chunks = crate::parallel::ordered_map(
                dop,
                left.len(),
                crate::parallel::MORSEL_ROWS,
                |range| {
                    let mut out = Vec::with_capacity(range.len() * right.len());
                    for l in &left[range] {
                        for r in right {
                            let mut combined = l.clone();
                            combined.extend_from_slice(r);
                            out.push(combined);
                        }
                    }
                    out
                },
            );
            *rows = chunks.into_iter().flatten().collect();
        }
    }
    Ok(())
}

/// Partitioned parallel hash join.
///
/// Build pass 1 splits the build side into morsels; each worker hashes its
/// morsel's keys into `dop` partition buckets. Pass 2 gives each worker
/// whole partitions; it assembles that partition's hash table by scanning
/// the morsel buckets **in morsel order**, so every key's candidate list
/// holds build-row indexes in exactly the order the serial build would
/// produce. The probe pass then splits the probe side into morsels and
/// concatenates outputs in morsel order — making the join's output
/// byte-identical to the serial nested loop at any DOP.
fn parallel_hash_join(
    dop: usize,
    probe_rows: &mut Vec<Row>,
    build_rows: &[Row],
    lkey: &Expr,
    rkey: &Expr,
) -> Result<Vec<Row>> {
    use crate::hasher::FxHasher;
    use std::hash::{Hash, Hasher};

    let parts = dop;
    let part_of = |v: &Value| -> usize {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        (h.finish() as usize) % parts
    };

    // Pass 1: per-morsel, per-partition (key, build row index) buckets.
    let morsel_buckets = crate::parallel::ordered_map(
        dop,
        build_rows.len(),
        crate::parallel::MORSEL_ROWS,
        |range| -> Result<Vec<Vec<(Value, u32)>>> {
            let mut buckets: Vec<Vec<(Value, u32)>> = vec![Vec::new(); parts];
            for i in range {
                let k = rkey.eval(&build_rows[i])?;
                if !k.is_null() {
                    let p = part_of(&k);
                    buckets[p].push((k, i as u32));
                }
            }
            Ok(buckets)
        },
    );
    let mut checked: Vec<Vec<Vec<(Value, u32)>>> = Vec::with_capacity(morsel_buckets.len());
    for b in morsel_buckets {
        checked.push(b?);
    }

    // Pass 2: one hash table per partition, filled in morsel order.
    let checked_ref = &checked;
    let tables: Vec<FxHashMap<Value, Vec<u32>>> =
        crate::parallel::ordered_map(dop, parts, 1, |range| {
            let p = range.start;
            let mut table: FxHashMap<Value, Vec<u32>> = FxHashMap::default();
            for morsel in checked_ref {
                for (k, i) in &morsel[p] {
                    table.entry(k.clone()).or_default().push(*i);
                }
            }
            table
        });

    // Probe pass: morsels over the probe side, outputs in morsel order.
    let probe = std::mem::take(probe_rows);
    let probe_ref = &probe;
    let tables_ref = &tables;
    let chunks = crate::parallel::ordered_map(
        dop,
        probe.len(),
        crate::parallel::MORSEL_ROWS,
        |range| -> Result<Vec<Row>> {
            let mut out = Vec::new();
            for l in &probe_ref[range] {
                let k = lkey.eval(l)?;
                if k.is_null() {
                    continue;
                }
                if let Some(cands) = tables_ref[part_of(&k)].get(&k) {
                    for &i in cands {
                        let mut combined = l.clone();
                        combined.extend_from_slice(&build_rows[i as usize]);
                        out.push(combined);
                    }
                }
            }
            Ok(out)
        },
    );
    let mut out = Vec::new();
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

/// Attach a base table with index support:
/// 1. index nested-loop join when a pending equi conjunct maps to an index
///    on the table (optionally extended with constant-equality columns);
/// 2. otherwise, an index-filtered or full scan, then hash/cross join.
fn attach_base_table(
    env: &Env<'_>,
    scope: &mut Scope,
    rows: &mut Vec<Row>,
    name: &str,
    alias: &str,
    pending: &mut [Option<&ast::Expr>],
    needs: &Needs,
) -> Result<()> {
    let guard = env.db.read_table(name)?;
    let table: &Table = &guard;
    let all_names: Vec<String> = table.schema.columns.iter().map(|c| c.name.clone()).collect();
    // Projection pruning: materialize only the columns the statement can
    // reference. `keep` maps pruned position -> original position.
    let keep: Vec<usize> = needs
        .pruned(&alias.to_ascii_lowercase(), &all_names)
        .unwrap_or_else(|| (0..all_names.len()).collect());
    let col_names: Vec<String> = keep.iter().map(|&i| all_names[i].clone()).collect();
    let before_width = scope.width;
    scope.push(alias, col_names);
    let arity = keep.len();

    // Gather, for this unit: constant equality pairs (key part -> const)
    // and probe equality pairs (key part -> left-side key expression).
    // A key part is a plain column or `JSON_VAL(json_col, 'member')` — the
    // latter matches functional indexes.
    use crate::index::KeyPart;
    let mut const_eq: Vec<(KeyPart, Value, usize)> = Vec::new();
    let mut probe_eq: Vec<(KeyPart, Expr, usize)> = Vec::new();
    for (i, slot) in pending.iter().enumerate() {
        let Some(c) = slot else { continue };
        let Ok(compiled) = compile_expr(env, scope, c) else { continue };
        // Only consider plain equality conjuncts.
        let Expr::Binary(BinaryOp::Eq, a, b) = &compiled else { continue };
        let as_key_part = |e: &Expr| -> Option<KeyPart> {
            match e {
                Expr::Col(idx) if *idx >= before_width && *idx < before_width + arity => {
                    // Map the pruned position back to the original column.
                    Some(KeyPart::Column(keep[*idx - before_width]))
                }
                Expr::Call(crate::expr::Func::JsonVal, args) => match (args.first(), args.get(1)) {
                    (Some(Expr::Col(idx)), Some(Expr::Const(Value::Str(member))))
                        if *idx >= before_width && *idx < before_width + arity =>
                    {
                        Some(KeyPart::JsonKey(keep[*idx - before_width], member.to_string()))
                    }
                    _ => None,
                },
                _ => None,
            }
        };
        let is_bound = |e: &Expr| -> bool {
            let mut ok = true;
            e.visit_columns(&mut |i| {
                if i >= before_width {
                    ok = false;
                }
            });
            ok
        };
        let (part, other) = match (as_key_part(a), as_key_part(b)) {
            (Some(p), None) if is_bound(b) => (p, (**b).clone()),
            (None, Some(p)) if is_bound(a) => (p, (**a).clone()),
            _ => continue,
        };
        if let Expr::Const(v) = &other {
            const_eq.push((part, v.clone(), i));
        } else {
            probe_eq.push((part, other, i));
        }
    }

    // Strategy 1: index nested loop. Find an index whose key parts are all
    // covered by probe/const pairs, preferring indexes that use a probe.
    let mut best: Option<(&crate::index::Index, Vec<ProbePart>, Vec<usize>)> = None;
    for idx in table.indexes() {
        let mut parts = Vec::with_capacity(idx.parts.len());
        let mut used = Vec::new();
        let mut ok = true;
        let mut uses_probe = false;
        for part in &idx.parts {
            if let Some((_, key_expr, pi)) = probe_eq.iter().find(|(pp, _, _)| pp == part) {
                parts.push(ProbePart::Probe(key_expr.clone()));
                used.push(*pi);
                uses_probe = true;
            } else if let Some((_, v, pi)) = const_eq.iter().find(|(cp, _, _)| cp == part) {
                parts.push(ProbePart::Const(v.clone()));
                used.push(*pi);
            } else {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        let better = match &best {
            None => true,
            Some((bidx, _, _)) => {
                // Prefer probe-using, then longer keys, then unique.
                let b_probe = bidx
                    .parts
                    .iter()
                    .any(|p| probe_eq.iter().any(|(pp, _, _)| pp == p));
                (uses_probe && !b_probe)
                    || (uses_probe == b_probe && idx.parts.len() > bidx.parts.len())
            }
        };
        if better {
            best = Some((idx, parts, used));
        }
    }

    if let Some((idx, parts, used)) = best {
        let uses_probe = parts.iter().any(|p| matches!(p, ProbePart::Probe(_)));
        env.note(|| {
            format!(
                "{name}: {} via index {} ({} key parts)",
                if uses_probe { "index nested-loop join" } else { "index scan" },
                idx.name,
                parts.len()
            )
        });
        if uses_probe {
            for pi in &used {
                pending[*pi] = None;
            }
            let mut out = Vec::new();
            for l in rows.drain(..) {
                let mut key = Vec::with_capacity(parts.len());
                let mut null_key = false;
                for p in &parts {
                    let v = match p {
                        ProbePart::Const(v) => v.clone(),
                        ProbePart::Probe(e) => e.eval(&l)?,
                    };
                    if v.is_null() {
                        null_key = true;
                        break;
                    }
                    key.push(v);
                }
                if null_key {
                    continue;
                }
                for &rid in idx.lookup(&IndexKey(key)) {
                    let row = table.get(rid).expect("index points at live row");
                    let mut combined = l.clone();
                    combined.extend(keep.iter().map(|&i| row[i].clone()));
                    out.push(combined);
                }
            }
            *rows = out;
            return Ok(());
        }
        // Const-only index: point scan, then join the scanned rows.
        for pi in &used {
            pending[*pi] = None;
        }
        let key: Vec<Value> = parts
            .iter()
            .map(|p| match p {
                ProbePart::Const(v) => v.clone(),
                ProbePart::Probe(_) => unreachable!("no probes in const-only path"),
            })
            .collect();
        let scanned: Vec<Row> = idx
            .lookup(&IndexKey(key))
            .iter()
            .map(|&rid| {
                let row = table.get(rid).expect("live");
                keep.iter().map(|&i| row[i].clone()).collect()
            })
            .collect();
        let mut rel = Relation {
            columns: keep.iter().map(|&i| all_names[i].clone()).collect(),
            rows: scanned,
        };
        drop(guard);
        push_down_filters(env, scope, before_width, arity, alias, &mut rel, pending)?;
        return join_pending(env, scope, rows, rel, before_width, pending);
    }

    // Strategy 2: B-tree range scan for comparison predicates on an indexed
    // key part. Bounds are applied inclusively; the original conjuncts stay
    // pending so exclusive endpoints are filtered residually.
    let mut range_scan: Option<(String, Vec<Row>)> = None;
    {
        let mut lo: Option<(KeyPart, Value)> = None;
        let mut hi: Option<(KeyPart, Value)> = None;
        for slot in pending.iter() {
            let Some(c) = slot else { continue };
            let Ok(compiled) = compile_expr(env, scope, c) else { continue };
            // BETWEEN desugars to `a AND b` inside one conjunct: split at
            // the compiled level too.
            visit_conjuncts(&compiled, &mut |leaf| {
                let Expr::Binary(op, a, b) = leaf else { return };
                let as_key_part = |e: &Expr| -> Option<KeyPart> {
                    match e {
                        Expr::Col(idx) if *idx >= before_width && *idx < before_width + arity => {
                            Some(KeyPart::Column(keep[*idx - before_width]))
                        }
                        Expr::Call(crate::expr::Func::JsonVal, args) => {
                            match (args.first(), args.get(1)) {
                                (Some(Expr::Col(idx)), Some(Expr::Const(Value::Str(member))))
                                    if *idx >= before_width && *idx < before_width + arity =>
                                {
                                    Some(KeyPart::JsonKey(
                                        keep[*idx - before_width],
                                        member.to_string(),
                                    ))
                                }
                                _ => None,
                            }
                        }
                        _ => None,
                    }
                };
                // Normalize to `part OP const`.
                let (part, value, op) =
                    match (as_key_part(a), b.as_ref(), as_key_part(b), a.as_ref()) {
                        (Some(p), Expr::Const(v), _, _) => (p, v.clone(), *op),
                        (_, _, Some(p), Expr::Const(v)) => {
                            // Flip: const OP part becomes part OP' const.
                            let flipped = match *op {
                                BinaryOp::Lt => BinaryOp::Gt,
                                BinaryOp::Le => BinaryOp::Ge,
                                BinaryOp::Gt => BinaryOp::Lt,
                                BinaryOp::Ge => BinaryOp::Le,
                                other => other,
                            };
                            (p, v.clone(), flipped)
                        }
                        _ => return,
                    };
                if value.is_null() {
                    return;
                }
                match op {
                    BinaryOp::Gt | BinaryOp::Ge
                        if lo.as_ref().is_none_or(|(p, _)| *p == part) =>
                    {
                        lo = Some((part, value));
                    }
                    BinaryOp::Lt | BinaryOp::Le
                        if hi.as_ref().is_none_or(|(p, _)| *p == part) =>
                    {
                        hi = Some((part, value));
                    }
                    _ => {}
                }
            });
        }
        // Bounds must target one part with a single-part B-tree index.
        let part = match (&lo, &hi) {
            (Some((p1, _)), Some((p2, _))) if p1 == p2 => Some(p1.clone()),
            (Some((p, _)), None) | (None, Some((p, _))) => Some(p.clone()),
            _ => None,
        };
        if let Some(part) = part {
            let found = table.indexes().iter().find(|i| {
                i.parts.len() == 1
                    && i.parts[0] == part
                    && i.kind() == crate::index::IndexKind::BTree
            });
            if let Some(idx) = found {
                let lo_key = lo
                    .as_ref()
                    .filter(|(p, _)| *p == part)
                    .map(|(_, v)| IndexKey(vec![v.clone()]));
                let hi_key = hi
                    .as_ref()
                    .filter(|(p, _)| *p == part)
                    .map(|(_, v)| IndexKey(vec![v.clone()]));
                let ids = idx.range(lo_key.as_ref(), hi_key.as_ref())?;
                let scanned: Vec<Row> = ids
                    .iter()
                    .map(|&rid| {
                        let row = table.get(rid).expect("index points at live row");
                        keep.iter().map(|&i| row[i].clone()).collect()
                    })
                    .collect();
                range_scan = Some((idx.name.clone(), scanned));
            }
        }
    }
    if let Some((idx_name, scanned)) = range_scan {
        env.note(|| {
            format!("{name}: range scan via index {idx_name} ({} rows)", scanned.len())
        });
        let mut rel = Relation {
            columns: keep.iter().map(|&i| all_names[i].clone()).collect(),
            rows: scanned,
        };
        drop(guard);
        push_down_filters(env, scope, before_width, arity, alias, &mut rel, pending)?;
        return join_pending(env, scope, rows, rel, before_width, pending);
    }

    // Strategy 3: full scan fused with the unit's pushed-down predicates,
    // split into morsels when the table is large enough (or parallelism is
    // pinned). Morsels cover disjoint slab ranges and their outputs are
    // concatenated in slab order, so the result is identical at every DOP.
    let locals = take_local_filters(env, scope, before_width, arity, pending);
    let live = table.len();
    let dop = env.db.dop_for(live);
    env.note(|| format!("{name}: full scan ({live} rows, dop {dop})"));
    let slots = table.slots();
    let keep_ref = &keep;
    let locals_ref = &locals;
    let chunks = crate::parallel::ordered_map(
        dop,
        slots.len(),
        crate::parallel::MORSEL_ROWS,
        |range| -> Result<Vec<Row>> {
            let mut out = Vec::new();
            'slot: for slot in &slots[range] {
                let Some(r) = slot else { continue };
                let row: Row = keep_ref.iter().map(|&i| r[i].clone()).collect();
                for p in locals_ref {
                    if !p.eval_bool(&row)? {
                        continue 'slot;
                    }
                }
                out.push(row);
            }
            Ok(out)
        },
    );
    let mut scanned = Vec::new();
    for chunk in chunks {
        scanned.extend(chunk?);
    }
    if !locals.is_empty() {
        env.note(|| format!("{alias}: pushdown filter ({live} -> {} rows)", scanned.len()));
    }
    let rel = Relation {
        columns: keep.iter().map(|&i| all_names[i].clone()).collect(),
        rows: scanned,
    };
    drop(guard);
    join_pending(env, scope, rows, rel, before_width, pending)
}

enum ProbePart {
    Const(Value),
    Probe(Expr),
}

fn apply_ready_conjuncts(
    env: &Env<'_>,
    scope: &Scope,
    rows: &mut Vec<Row>,
    pending: &mut [Option<&ast::Expr>],
) -> Result<()> {
    for slot in pending.iter_mut() {
        let Some(c) = slot else { continue };
        match compile_expr(env, scope, c) {
            Ok(compiled) => {
                let mut max_col = 0;
                let mut any = false;
                compiled.visit_columns(&mut |i| {
                    any = true;
                    max_col = max_col.max(i);
                });
                if !any || max_col < scope.width {
                    *rows = filter_rows_par(env, std::mem::take(rows), &compiled)?;
                    *slot = None;
                }
            }
            Err(_) => {
                // References columns not yet in scope; retry after the next
                // unit is attached.
            }
        }
    }
    Ok(())
}

fn filter_rows(rows: Vec<Row>, predicate: &Expr) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if predicate.eval_bool(&row)? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Morsel-parallel filter. Predicate evaluation fans out over morsels;
/// surviving rows are then moved (not cloned) into the output in row
/// order, so the result matches [`filter_rows`] exactly.
fn filter_rows_par(env: &Env<'_>, rows: Vec<Row>, predicate: &Expr) -> Result<Vec<Row>> {
    let dop = env.db.dop_for(rows.len());
    if dop <= 1 {
        return filter_rows(rows, predicate);
    }
    let rows_ref = &rows;
    let kept = crate::parallel::ordered_map(
        dop,
        rows.len(),
        crate::parallel::MORSEL_ROWS,
        |range| -> Result<Vec<u32>> {
            let mut keep = Vec::new();
            for i in range {
                if predicate.eval_bool(&rows_ref[i])? {
                    keep.push(i as u32);
                }
            }
            Ok(keep)
        },
    );
    let mut keep_all = Vec::new();
    for chunk in kept {
        keep_all.extend(chunk?);
    }
    let mut out = Vec::with_capacity(keep_all.len());
    let mut rows = rows;
    for i in keep_all {
        out.push(std::mem::take(&mut rows[i as usize]));
    }
    Ok(out)
}

/// Load a named relation (CTE or base table) fully.
fn load_named(env: &Env<'_>, name: &str, _hint: &[()]) -> Result<Relation> {
    if let Some(cte) = env.ctes.get(name) {
        return Ok((**cte).clone());
    }
    let guard = env.db.read_table(name)?;
    Ok(Relation {
        columns: guard.schema.columns.iter().map(|c| c.name.clone()).collect(),
        rows: guard.iter().map(|(_, r)| r.to_vec()).collect(),
    })
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

/// Compile an expression with no columns in scope (INSERT VALUES rows,
/// CALL arguments, LIMIT/OFFSET).
pub fn compile_scalar(env: &Env<'_>, e: &ast::Expr) -> Result<Expr> {
    compile_expr(env, &Scope::default(), e)
}

/// Compile an expression against a single table's columns (UPDATE/DELETE
/// predicates and assignments). The table is addressable by its own name.
pub fn compile_table_expr(
    env: &Env<'_>,
    schema: &crate::schema::TableSchema,
    e: &ast::Expr,
) -> Result<Expr> {
    let mut scope = Scope::default();
    scope.push(
        &schema.name,
        schema.columns.iter().map(|c| c.name.clone()).collect(),
    );
    compile_expr(env, &scope, e)
}

/// Compile a name-based expression against `scope`. Parameters are inlined
/// as constants; IN-subqueries are materialized into sets.
pub(crate) fn compile_expr(env: &Env<'_>, scope: &Scope, e: &ast::Expr) -> Result<Expr> {
    Ok(match e {
        ast::Expr::Literal(v) => Expr::Const(v.clone()),
        ast::Expr::Param(i) => Expr::Const(
            env.params
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::Invalid(format!("missing parameter ${}", i + 1)))?,
        ),
        ast::Expr::Column { table, name } => Expr::Col(scope.resolve(table.as_deref(), name)?),
        ast::Expr::Unary(op, x) => Expr::Unary(*op, Box::new(compile_expr(env, scope, x)?)),
        ast::Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(compile_expr(env, scope, l)?),
            Box::new(compile_expr(env, scope, r)?),
        ),
        ast::Expr::IsNull(x, negated) => {
            Expr::IsNull(Box::new(compile_expr(env, scope, x)?), *negated)
        }
        ast::Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(compile_expr(env, scope, expr)?),
            pattern: Box::new(compile_expr(env, scope, pattern)?),
            negated: *negated,
        },
        ast::Expr::InList { expr, list, negated } => {
            let scrutinee = compile_expr(env, scope, expr)?;
            let compiled: Vec<Expr> = list
                .iter()
                .map(|i| compile_expr(env, scope, i))
                .collect::<Result<_>>()?;
            if compiled.iter().all(|c| matches!(c, Expr::Const(_))) {
                let mut set = FxHashSet::default();
                for c in compiled {
                    if let Expr::Const(v) = c {
                        if !v.is_null() {
                            set.insert(v);
                        }
                    }
                }
                Expr::InSet {
                    expr: Box::new(scrutinee),
                    set: Arc::new(set),
                    negated: *negated,
                }
            } else {
                // Non-constant list: desugar to an OR chain.
                let mut acc: Option<Expr> = None;
                for c in compiled {
                    let eq = Expr::Binary(BinaryOp::Eq, Box::new(scrutinee.clone()), Box::new(c));
                    acc = Some(match acc {
                        None => eq,
                        Some(prev) => Expr::Binary(BinaryOp::Or, Box::new(prev), Box::new(eq)),
                    });
                }
                let inner = acc.unwrap_or(Expr::Const(Value::Bool(false)));
                if *negated {
                    Expr::Unary(crate::expr::UnaryOp::Not, Box::new(inner))
                } else {
                    inner
                }
            }
        }
        ast::Expr::InSubquery { expr, query, negated } => {
            let rel = run_select(env, query)?;
            if rel.columns.len() != 1 {
                return Err(Error::Invalid(
                    "IN subquery must return exactly one column".into(),
                ));
            }
            let mut set = FxHashSet::default();
            for row in rel.rows {
                let v = row.into_iter().next().expect("one column");
                if !v.is_null() {
                    set.insert(v);
                }
            }
            Expr::InSet {
                expr: Box::new(compile_expr(env, scope, expr)?),
                set: Arc::new(set),
                negated: *negated,
            }
        }
        ast::Expr::Between { expr, lo, hi, negated } => {
            let x = compile_expr(env, scope, expr)?;
            let lo = compile_expr(env, scope, lo)?;
            let hi = compile_expr(env, scope, hi)?;
            let ge = Expr::Binary(BinaryOp::Ge, Box::new(x.clone()), Box::new(lo));
            let le = Expr::Binary(BinaryOp::Le, Box::new(x), Box::new(hi));
            let and = Expr::Binary(BinaryOp::And, Box::new(ge), Box::new(le));
            if *negated {
                Expr::Unary(crate::expr::UnaryOp::Not, Box::new(and))
            } else {
                and
            }
        }
        ast::Expr::Call { name, args, distinct } => {
            if *distinct {
                return Err(Error::Invalid(format!(
                    "DISTINCT is only valid in aggregate calls, not {name}"
                )));
            }
            if AggFn::parse(name).is_some() {
                return Err(Error::Invalid(format!(
                    "aggregate {name} is not allowed here"
                )));
            }
            let func = expr::Func::parse(name)
                .ok_or_else(|| Error::NotFound(format!("function '{name}'")))?;
            let compiled: Vec<Expr> = args
                .iter()
                .map(|a| compile_expr(env, scope, a))
                .collect::<Result<_>>()?;
            Expr::Call(func, compiled)
        }
        ast::Expr::CountStar => {
            return Err(Error::Invalid("COUNT(*) is not allowed here".into()))
        }
        ast::Expr::Cast(x, ty) => Expr::Cast(Box::new(compile_expr(env, scope, x)?), *ty),
        ast::Expr::Subscript(x, i) => Expr::Subscript(
            Box::new(compile_expr(env, scope, x)?),
            Box::new(compile_expr(env, scope, i)?),
        ),
    })
}
