//! Query execution over the physical plan IR.
//!
//! Planning lives in [`crate::plan`]: `plan_from` turns a FROM list + WHERE
//! into an explicit [`plan::FromPlan`] operator tree (join order, access
//! paths, pushdown, pruning — every decision). This module only *executes*:
//! [`exec_from`] walks the finished plan step by step, [`run_aggregate`] /
//! [`project`] shape the output, and set ops / ORDER BY / LIMIT compose on
//! top. The executor makes no planning choices of its own.
//!
//! Execution is batch-at-a-time where the data allows: full scans emit
//! columnar [`Batch`]es (one per morsel), filters flip selection vectors,
//! and hash joins with bare-column keys build on the key columns directly.
//! Converting a batch to rows reproduces the row engine's output exactly,
//! so every operator can fall back to materialized `Vec<Row>` processing —
//! and the two representations are byte-identical end to end, at any DOP.

use crate::batch::{self, Batch};
use crate::db::Database;
use crate::error::{Error, Result};
use crate::expr::{self, BinaryOp, Expr};
use crate::hasher::{FxHashMap, FxHashSet};
use crate::index::IndexKey;
use crate::plan::{self, find_equi_split, Access, Attach, ProbePart, StepKind};
use crate::sql::ast;
use crate::storage::Table;
use crate::txn::Snapshot;
use crate::value::Value;
use std::sync::Arc;

/// An executor row.
pub type Row = Vec<Value>;

/// Per-alias column lists tracked through explicit JOIN trees.
pub(crate) type ScopeCols = Vec<(String, Vec<String>)>;

/// A materialized relation: named columns plus rows.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Lower-cased output column names.
    pub columns: Vec<String>,
    /// Row data.
    pub rows: Vec<Row>,
}

impl Relation {
    /// Build a relation, lower-casing column names.
    pub fn new(columns: Vec<String>, rows: Vec<Row>) -> Relation {
        Relation {
            columns: columns
                .into_iter()
                .map(|c| c.to_ascii_lowercase())
                .collect(),
            rows,
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| *c == lower)
    }

    /// Single-value convenience: the first column of the first row.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// First column of every row as i64 (skipping non-ints).
    pub fn int_column(&self) -> Vec<i64> {
        self.rows
            .iter()
            .filter_map(|r| r.first().and_then(Value::as_int))
            .collect()
    }

    /// First column of every row rendered as strings.
    pub fn strings(&self) -> Vec<String> {
        self.rows
            .iter()
            .filter_map(|r| r.first())
            .map(|v| v.to_string())
            .collect()
    }

    /// The single-cell `count` relation DML statements return.
    pub fn count(n: i64) -> Relation {
        Relation {
            columns: vec!["count".into()],
            rows: vec![vec![Value::Int(n)]],
        }
    }
}

/// One entry of the name-resolution scope: `(alias, column names)`.
#[derive(Debug, Clone)]
pub(crate) struct ScopeEntry {
    alias: String,
    columns: Vec<String>,
    offset: usize,
}

/// Name-resolution scope for a FROM list.
#[derive(Debug, Clone, Default)]
pub(crate) struct Scope {
    pub(crate) entries: Vec<ScopeEntry>,
    pub(crate) width: usize,
}

impl Scope {
    pub(crate) fn push(&mut self, alias: &str, columns: Vec<String>) {
        let offset = self.width;
        self.width += columns.len();
        self.entries.push(ScopeEntry {
            alias: alias.to_ascii_lowercase(),
            columns,
            offset,
        });
    }

    /// Resolve a possibly-qualified column to a flat offset.
    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize> {
        let lname = name.to_ascii_lowercase();
        match table {
            Some(t) => {
                let lt = t.to_ascii_lowercase();
                let entry = self
                    .entries
                    .iter()
                    .find(|e| e.alias == lt)
                    .ok_or_else(|| Error::NotFound(format!("table alias '{t}'")))?;
                let col = entry
                    .columns
                    .iter()
                    .position(|c| *c == lname)
                    .ok_or_else(|| Error::NotFound(format!("column '{t}.{name}'")))?;
                Ok(entry.offset + col)
            }
            None => {
                let mut found = None;
                for entry in &self.entries {
                    if let Some(col) = entry.columns.iter().position(|c| *c == lname) {
                        if found.is_some() {
                            return Err(Error::Invalid(format!("ambiguous column '{name}'")));
                        }
                        found = Some(entry.offset + col);
                    }
                }
                found.ok_or_else(|| Error::NotFound(format!("column '{name}'")))
            }
        }
    }
}

/// Execution environment: the database plus visible CTE bindings.
pub struct Env<'a> {
    /// Catalog / storage access.
    pub db: &'a Database,
    /// CTEs visible to the query being executed (lower-cased names).
    pub ctes: FxHashMap<String, Arc<Relation>>,
    /// Positional parameter values.
    pub params: &'a [Value],
    /// When set, the executor records access-path decisions here
    /// (`EXPLAIN` support).
    pub trace: Option<&'a std::cell::RefCell<Vec<String>>>,
    /// MVCC snapshot every table read resolves against. `Snapshot::latest`
    /// sees all committed state (no in-flight provisional versions).
    pub snap: Snapshot,
}

impl<'a> Env<'a> {
    /// New environment with no CTEs, reading latest-committed state.
    pub fn new(db: &'a Database, params: &'a [Value]) -> Env<'a> {
        Env::with_snap(db, params, Snapshot::latest())
    }

    /// New environment reading through an explicit MVCC snapshot.
    pub fn with_snap(db: &'a Database, params: &'a [Value], snap: Snapshot) -> Env<'a> {
        Env {
            db,
            ctes: FxHashMap::default(),
            params,
            trace: None,
            snap,
        }
    }

    /// Record one access-path decision (no-op unless tracing).
    pub fn note(&self, line: impl FnOnce() -> String) {
        if let Some(t) = self.trace {
            t.borrow_mut().push(line());
        }
    }
}

/// Run a full query.
pub fn run_select(env: &Env<'_>, stmt: &ast::SelectStmt) -> Result<Relation> {
    // Materialize CTEs in order; each sees the previous ones.
    let mut env2 = Env {
        db: env.db,
        ctes: env.ctes.clone(),
        params: env.params,
        trace: env.trace,
        snap: env.snap,
    };
    for (name, query) in &stmt.ctes {
        let rel = run_select(&env2, query)?;
        env2.ctes.insert(name.to_ascii_lowercase(), Arc::new(rel));
    }
    // A single-core body handles ORDER BY internally so sort keys may
    // reference input columns that are not projected; set-op bodies sort on
    // output columns only.
    let mut rel = match &stmt.body {
        ast::SetExpr::Select(core) if !stmt.order_by.is_empty() => {
            run_core(&env2, core, &stmt.order_by)?
        }
        body => {
            let mut rel = run_set_expr(&env2, body)?;
            if !stmt.order_by.is_empty() {
                sort_relation(&env2, &mut rel, &stmt.order_by)?;
            }
            rel
        }
    };
    apply_limit_offset(&env2, &mut rel, stmt.limit.as_ref(), stmt.offset.as_ref())?;
    Ok(rel)
}

fn apply_limit_offset(
    env: &Env<'_>,
    rel: &mut Relation,
    limit: Option<&ast::Expr>,
    offset: Option<&ast::Expr>,
) -> Result<()> {
    let eval_n = |e: &ast::Expr| -> Result<usize> {
        let scope = Scope::default();
        let compiled = compile_expr(env, &scope, e)?;
        compiled
            .eval(&[])?
            .as_int()
            .filter(|n| *n >= 0)
            .map(|n| n as usize)
            .ok_or_else(|| Error::Invalid("LIMIT/OFFSET must be a non-negative integer".into()))
    };
    if let Some(off) = offset {
        let n = eval_n(off)?.min(rel.rows.len());
        rel.rows.drain(..n);
    }
    if let Some(lim) = limit {
        let n = eval_n(lim)?;
        rel.rows.truncate(n);
    }
    Ok(())
}

fn sort_relation(env: &Env<'_>, rel: &mut Relation, keys: &[(ast::Expr, bool)]) -> Result<()> {
    // ORDER BY resolves against the output columns; bare integers are
    // 1-based output positions.
    let mut scope = Scope::default();
    scope.push("", rel.columns.clone());
    let mut compiled = Vec::with_capacity(keys.len());
    for (e, desc) in keys {
        let ce = match e {
            ast::Expr::Literal(Value::Int(n)) if *n >= 1 && (*n as usize) <= rel.columns.len() => {
                Expr::Col(*n as usize - 1)
            }
            // Qualified references (`ORDER BY p2.name`) resolve by bare
            // column name against the output, matching common SQL practice.
            ast::Expr::Column {
                table: Some(_),
                name,
            } => compile_expr(
                env,
                &scope,
                &ast::Expr::Column {
                    table: None,
                    name: name.clone(),
                },
            )?,
            other => compile_expr(env, &scope, other)?,
        };
        compiled.push((ce, *desc));
    }
    // Precompute sort keys to keep comparisons cheap and fallible code out
    // of the comparator.
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rel.rows.len());
    for row in rel.rows.drain(..) {
        let mut k = Vec::with_capacity(compiled.len());
        for (ce, _) in &compiled {
            k.push(ce.eval(&row)?);
        }
        keyed.push((k, row));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for ((a, b), (_, desc)) in ka.iter().zip(kb.iter()).zip(&compiled) {
            let o = a.total_cmp(b);
            if o != std::cmp::Ordering::Equal {
                return if *desc { o.reverse() } else { o };
            }
        }
        std::cmp::Ordering::Equal
    });
    rel.rows = keyed.into_iter().map(|(_, r)| r).collect();
    Ok(())
}

fn run_set_expr(env: &Env<'_>, body: &ast::SetExpr) -> Result<Relation> {
    match body {
        ast::SetExpr::Select(core) => run_core(env, core, &[]),
        ast::SetExpr::Op {
            op,
            all,
            left,
            right,
        } => {
            let l = run_set_expr(env, left)?;
            let r = run_set_expr(env, right)?;
            if l.columns.len() != r.columns.len() {
                return Err(Error::Invalid(format!(
                    "set operands have different arities ({} vs {})",
                    l.columns.len(),
                    r.columns.len()
                )));
            }
            let mut out = Relation {
                columns: l.columns.clone(),
                rows: Vec::new(),
            };
            match op {
                ast::SetOp::Union => {
                    out.rows = l.rows;
                    out.rows.extend(r.rows);
                    if !*all {
                        dedup_rows(&mut out.rows);
                    }
                }
                ast::SetOp::Intersect => {
                    let rset: FxHashSet<&Row> = r.rows.iter().collect();
                    let mut seen: FxHashSet<Row> = FxHashSet::default();
                    for row in l.rows {
                        // Membership checks on borrowed rows; clone only the
                        // distinct rows actually emitted.
                        if rset.contains(&row) && !seen.contains(&row) {
                            seen.insert(row.clone());
                            out.rows.push(row);
                        }
                    }
                }
                ast::SetOp::Except => {
                    let rset: FxHashSet<&Row> = r.rows.iter().collect();
                    let mut seen: FxHashSet<Row> = FxHashSet::default();
                    for row in l.rows {
                        if !rset.contains(&row) && !seen.contains(&row) {
                            seen.insert(row.clone());
                            out.rows.push(row);
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

fn dedup_rows(rows: &mut Vec<Row>) {
    let mut seen: FxHashSet<Row> = FxHashSet::default();
    rows.retain(|r| {
        // Check first so duplicate rows are dropped without cloning.
        if seen.contains(r) {
            false
        } else {
            seen.insert(r.clone());
            true
        }
    });
}

// ---------------------------------------------------------------------------
// SELECT core
// ---------------------------------------------------------------------------

fn run_core(
    env: &Env<'_>,
    core: &ast::SelectCore,
    order_by: &[(ast::Expr, bool)],
) -> Result<Relation> {
    // 1. Plan the FROM pipeline (join order, access paths, predicate
    //    pushdown, projection pruning), then execute the plan. Planning
    //    makes every decision; execution only follows the IR.
    let needs = crate::plan::collect_needs(core, order_by);
    let mut fplan = crate::plan::plan_from(env, &core.from, core.filter.as_ref(), &needs)?;
    let data = exec_from(env, &mut fplan)?;
    crate::plan::render_notes(env, &fplan);

    // 2. Aggregate or plain projection. ORDER BY keys are computed as
    //    hidden trailing columns so they may reference unprojected inputs.
    let needs_agg = !core.group_by.is_empty()
        || core.projections.iter().any(|p| match p {
            ast::Projection::Expr { expr, .. } => contains_aggregate(expr),
            _ => false,
        });

    let scope = &fplan.scope;
    let mut rel = if needs_agg {
        run_aggregate(env, scope, data, core, order_by)?
    } else {
        project(env, scope, data.into_rows(), &core.projections, order_by)?
    };

    let visible = rel.columns.len();
    if core.distinct {
        // Deduplicate on the visible prefix, keeping the first occurrence.
        let mut seen: FxHashSet<Vec<Value>> = FxHashSet::default();
        rel.rows.retain(|r| seen.insert(r[..visible].to_vec()));
    }
    if !order_by.is_empty() {
        let descs: Vec<bool> = order_by.iter().map(|(_, d)| *d).collect();
        sort_rows_by_hidden(&mut rel.rows, visible, &descs);
        for row in &mut rel.rows {
            row.truncate(visible);
        }
    }
    if env.trace.is_some() {
        // EXPLAIN: render the physical operator tree that just ran.
        let mut wrappers = Vec::new();
        if !order_by.is_empty() {
            wrappers.push(format!("Sort ({} keys)", order_by.len()));
        }
        if core.distinct {
            wrappers.push("Distinct".to_string());
        }
        if needs_agg {
            wrappers.push("Aggregate".to_string());
        }
        crate::plan::render_tree(env, &fplan, &wrappers);
    }
    Ok(rel)
}

/// Stable sort by the hidden key columns appended after `visible`.
///
/// Ordering follows [`Value::total_cmp`]'s engine-wide contract: NULLs
/// first ascending / last descending, mixed types ranked by class, NaN
/// greater than every other number. Stability means ties preserve the
/// executor's deterministic row order, so sorted output is byte-identical
/// across DOP and batch/row engine settings.
fn sort_rows_by_hidden(rows: &mut [Row], visible: usize, descs: &[bool]) {
    rows.sort_by(|a, b| {
        for (i, desc) in descs.iter().enumerate() {
            let o = a[visible + i].total_cmp(&b[visible + i]);
            if o != std::cmp::Ordering::Equal {
                return if *desc { o.reverse() } else { o };
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Compile one ORDER BY key against, in priority order: a matching output
/// alias (reusing that projection's expression), a 1-based output position,
/// or the input scope directly. `agg` is used for aggregate queries.
fn compile_order_key(
    env: &Env<'_>,
    scope: &Scope,
    key: &ast::Expr,
    names: &[String],
    exprs: &[Expr],
    aggs: Option<&mut Vec<AggSpec>>,
) -> Result<Expr> {
    // Positional: ORDER BY 2.
    if let ast::Expr::Literal(Value::Int(n)) = key {
        if *n >= 1 && (*n as usize) <= exprs.len() {
            return Ok(exprs[*n as usize - 1].clone());
        }
    }
    // Output alias (possibly qualified — qualifier ignored per SQL habit).
    if let ast::Expr::Column { name, .. } = key {
        let lower = name.to_ascii_lowercase();
        if let Some(i) = names.iter().position(|n| *n == lower) {
            return Ok(exprs[i].clone());
        }
    }
    match aggs {
        Some(aggs) => compile_with_aggs(env, scope, key, aggs),
        None => compile_expr(env, scope, key),
    }
}

fn project(
    env: &Env<'_>,
    scope: &Scope,
    rows: Vec<Row>,
    projections: &[ast::Projection],
    order_by: &[(ast::Expr, bool)],
) -> Result<Relation> {
    let (names, mut exprs) = compile_projections(env, scope, projections)?;
    let visible = exprs.len();
    for (key, _) in order_by {
        let ke = compile_order_key(env, scope, key, &names, &exprs[..visible], None)?;
        exprs.push(ke);
    }
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut out = Vec::with_capacity(exprs.len());
        for e in &exprs {
            out.push(e.eval(row)?);
        }
        out_rows.push(out);
    }
    Ok(Relation {
        columns: names,
        rows: out_rows,
    })
}

fn compile_projections(
    env: &Env<'_>,
    scope: &Scope,
    projections: &[ast::Projection],
) -> Result<(Vec<String>, Vec<Expr>)> {
    let mut names = Vec::new();
    let mut exprs = Vec::new();
    for p in projections {
        match p {
            ast::Projection::Wildcard => {
                for entry in &scope.entries {
                    for (i, c) in entry.columns.iter().enumerate() {
                        names.push(c.clone());
                        exprs.push(Expr::Col(entry.offset + i));
                    }
                }
            }
            ast::Projection::TableWildcard(t) => {
                let lt = t.to_ascii_lowercase();
                let entry = scope
                    .entries
                    .iter()
                    .find(|e| e.alias == lt)
                    .ok_or_else(|| Error::NotFound(format!("table alias '{t}'")))?;
                for (i, c) in entry.columns.iter().enumerate() {
                    names.push(c.clone());
                    exprs.push(Expr::Col(entry.offset + i));
                }
            }
            ast::Projection::Expr { expr, alias } => {
                let name = alias
                    .clone()
                    .or_else(|| match expr {
                        ast::Expr::Column { name, .. } => Some(name.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| format!("col{}", names.len()));
                names.push(name.to_ascii_lowercase());
                exprs.push(compile_expr(env, scope, expr)?);
            }
        }
    }
    Ok((names, exprs))
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AggFn {
    CountStar,
    Count,
    Sum,
    Min,
    Max,
    Avg,
}

impl AggFn {
    fn parse(name: &str) -> Option<AggFn> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFn::Count,
            "SUM" => AggFn::Sum,
            "MIN" => AggFn::Min,
            "MAX" => AggFn::Max,
            "AVG" => AggFn::Avg,
            _ => return None,
        })
    }
}

struct AggSpec {
    func: AggFn,
    arg: Option<Expr>,
    distinct: bool,
}

fn contains_aggregate(e: &ast::Expr) -> bool {
    match e {
        ast::Expr::CountStar => true,
        ast::Expr::Call { name, args, .. } => {
            AggFn::parse(name).is_some() || args.iter().any(contains_aggregate)
        }
        ast::Expr::Unary(_, x) | ast::Expr::IsNull(x, _) | ast::Expr::Cast(x, _) => {
            contains_aggregate(x)
        }
        ast::Expr::Binary(_, l, r) | ast::Expr::Subscript(l, r) => {
            contains_aggregate(l) || contains_aggregate(r)
        }
        ast::Expr::Like { expr, pattern, .. } => {
            contains_aggregate(expr) || contains_aggregate(pattern)
        }
        ast::Expr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        ast::Expr::Between { expr, lo, hi, .. } => {
            contains_aggregate(expr) || contains_aggregate(lo) || contains_aggregate(hi)
        }
        _ => false,
    }
}

/// Compile an expression that may contain aggregate calls: each aggregate
/// becomes a reference to a slot *after* the input row (the executor
/// evaluates groups into `input_row ++ agg_values`).
fn compile_with_aggs(
    env: &Env<'_>,
    scope: &Scope,
    e: &ast::Expr,
    aggs: &mut Vec<AggSpec>,
) -> Result<Expr> {
    match e {
        ast::Expr::CountStar => {
            aggs.push(AggSpec {
                func: AggFn::CountStar,
                arg: None,
                distinct: false,
            });
            Ok(Expr::Col(scope.width + aggs.len() - 1))
        }
        ast::Expr::Call {
            name,
            args,
            distinct,
        } if AggFn::parse(name).is_some() => {
            let func = AggFn::parse(name).unwrap();
            if args.len() != 1 {
                return Err(Error::Invalid(format!("{name} takes exactly one argument")));
            }
            let arg = compile_expr(env, scope, &args[0])?;
            aggs.push(AggSpec {
                func,
                arg: Some(arg),
                distinct: *distinct,
            });
            Ok(Expr::Col(scope.width + aggs.len() - 1))
        }
        ast::Expr::Unary(op, x) => Ok(Expr::Unary(
            *op,
            Box::new(compile_with_aggs(env, scope, x, aggs)?),
        )),
        ast::Expr::Binary(op, l, r) => Ok(Expr::Binary(
            *op,
            Box::new(compile_with_aggs(env, scope, l, aggs)?),
            Box::new(compile_with_aggs(env, scope, r, aggs)?),
        )),
        // Aggregates inside other constructs are rare; compile without.
        other => compile_expr(env, scope, other),
    }
}

fn run_aggregate(
    env: &Env<'_>,
    scope: &Scope,
    data: Data,
    core: &ast::SelectCore,
    order_by: &[(ast::Expr, bool)],
) -> Result<Relation> {
    let group_exprs: Vec<Expr> = core
        .group_by
        .iter()
        .map(|e| compile_expr(env, scope, e))
        .collect::<Result<_>>()?;

    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut names = Vec::new();
    let mut proj_exprs = Vec::new();
    for p in &core.projections {
        match p {
            ast::Projection::Expr { expr, alias } => {
                let name = alias
                    .clone()
                    .or_else(|| match expr {
                        ast::Expr::Column { name, .. } => Some(name.clone()),
                        _ => None,
                    })
                    .unwrap_or_else(|| format!("col{}", names.len()));
                names.push(name.to_ascii_lowercase());
                proj_exprs.push(compile_with_aggs(env, scope, expr, &mut aggs)?);
            }
            _ => {
                return Err(Error::Invalid(
                    "wildcard projections are not allowed with GROUP BY/aggregates".into(),
                ))
            }
        }
    }
    let having = core
        .having
        .as_ref()
        .map(|h| compile_with_aggs(env, scope, h, &mut aggs))
        .transpose()?;
    let visible = proj_exprs.len();
    for (key, _) in order_by {
        let snapshot = proj_exprs[..visible].to_vec();
        let ke = compile_order_key(env, scope, key, &names, &snapshot, Some(&mut aggs))?;
        proj_exprs.push(ke);
    }

    // Factorized COUNT(*): a count-only scalar aggregate over a factored
    // input needs just the leaf count plus the first path as the group
    // representative — the expansion lists are never flattened.
    if let Data::Factor(f) = &data {
        if group_exprs.is_empty()
            && !aggs.is_empty()
            && aggs
                .iter()
                .all(|s| s.func == AggFn::CountStar && !s.distinct)
        {
            let n = f.leaf_count();
            env.note(|| format!("aggregate (factorized count, {n} paths)"));
            let mut extended: Row = f
                .first_path_row()
                .unwrap_or_else(|| vec![Value::Null; scope.width]);
            for _ in &aggs {
                extended.push(Value::Int(n as i64));
            }
            let mut out_rows = Vec::new();
            let passes = match &having {
                Some(h) => h.eval_bool(&extended)?,
                None => true,
            };
            if passes {
                let mut out = Vec::with_capacity(proj_exprs.len());
                for e in &proj_exprs {
                    out.push(e.eval(&extended)?);
                }
                out_rows.push(out);
            }
            return Ok(Relation {
                columns: names,
                rows: out_rows,
            });
        }
    }

    // Group rows morsel by morsel into per-worker partial accumulators,
    // then merge partials in morsel order. The decomposition depends only
    // on input size — never on the DOP — so serial and parallel runs fold
    // the same values in the same order and agree bit-for-bit even on
    // float accumulations.
    let total = data.len();
    let dop = env.db.dop_for(total);
    env.note(|| format!("aggregate ({total} rows, dop {dop})"));

    // Columnar fast path: when the input is still batched and every group
    // key and aggregate argument is a bare column reference, fold straight
    // over the compacted column vectors without materializing rows.
    // `Batch::compact` re-chunks the live rows densely from index zero, so
    // the morsel decomposition (and thus the float fold order) is identical
    // to the materialized-row path.
    enum AggInput {
        Rows(Vec<Row>),
        Batch {
            b: Batch,
            gcols: Vec<usize>,
            acols: Vec<Option<usize>>,
        },
    }
    let input = match data {
        Data::Batches(bs) => {
            let gcols: Option<Vec<usize>> = group_exprs
                .iter()
                .map(|g| match g {
                    Expr::Col(c) => Some(*c),
                    _ => None,
                })
                .collect();
            let acols: Option<Vec<Option<usize>>> = aggs
                .iter()
                .map(|s| match &s.arg {
                    None => Some(None),
                    Some(Expr::Col(c)) => Some(Some(*c)),
                    Some(_) => None,
                })
                .collect();
            match (gcols, acols) {
                (Some(gcols), Some(acols)) => AggInput::Batch {
                    b: Batch::compact(&bs),
                    gcols,
                    acols,
                },
                _ => AggInput::Rows(Data::Batches(bs).into_rows()),
            }
        }
        Data::Rows(rows) => AggInput::Rows(rows),
        // Aggregation merges are a row-semantics operator: flatten here
        // (the count-only fast path above already handled the list case).
        // Only the columns the aggregation actually reads — group keys,
        // aggregate arguments, HAVING, and projection inputs — are cloned;
        // everything else flattens as NULL at full row width.
        Data::Factor(f) => {
            let mut mask = vec![false; scope.width];
            let mut need = |e: &Expr| {
                e.visit_columns(&mut |c| {
                    if c < mask.len() {
                        mask[c] = true;
                    }
                })
            };
            for g in &group_exprs {
                need(g);
            }
            for s in &aggs {
                if let Some(a) = &s.arg {
                    need(a);
                }
            }
            if let Some(h) = &having {
                need(h);
            }
            for p in &proj_exprs {
                need(p);
            }
            AggInput::Rows(f.flatten_masked(&mask))
        }
    };

    let input_ref = &input;
    let group_ref = &group_exprs;
    let aggs_ref = &aggs;
    let partials = crate::parallel::ordered_map(
        dop,
        total,
        crate::parallel::MORSEL_ROWS,
        |range| -> Result<Vec<PartialGroup>> {
            let mut map: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
            let mut local: Vec<PartialGroup> = Vec::new();
            for i in range {
                let mut key = Vec::with_capacity(group_ref.len());
                match input_ref {
                    AggInput::Rows(rows) => {
                        for g in group_ref {
                            key.push(g.eval(&rows[i])?);
                        }
                    }
                    AggInput::Batch { b, gcols, .. } => {
                        for &c in gcols {
                            key.push(b.cols[c].value_at(i));
                        }
                    }
                }
                let gi = match map.entry(key) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        let gi = local.len();
                        local.push(PartialGroup {
                            key: e.key().clone(),
                            accs: aggs_ref.iter().map(AggAcc::new).collect(),
                            rep: i,
                        });
                        e.insert(gi);
                        gi
                    }
                };
                let g = &mut local[gi];
                match input_ref {
                    AggInput::Rows(rows) => {
                        for (acc, spec) in g.accs.iter_mut().zip(aggs_ref) {
                            acc.update(spec, &rows[i])?;
                        }
                    }
                    AggInput::Batch { b, acols, .. } => {
                        for ((acc, spec), ac) in g.accs.iter_mut().zip(aggs_ref.iter()).zip(acols) {
                            let v = match ac {
                                Some(c) => b.cols[*c].value_at(i),
                                None => Value::Null,
                            };
                            acc.update_value(spec, v)?;
                        }
                    }
                }
            }
            Ok(local)
        },
    );

    // Merge in morsel order: group order is first appearance across the
    // morsel sequence (= first appearance in row order), the representative
    // row is the earliest morsel's (= the group's first row).
    let mut map: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
    let mut merged: Vec<PartialGroup> = Vec::new();
    for chunk in partials {
        for pg in chunk? {
            match map.entry(pg.key.clone()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let dst = &mut merged[*e.get()];
                    for ((acc, part), spec) in dst.accs.iter_mut().zip(pg.accs).zip(&aggs) {
                        acc.merge(spec, part);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(merged.len());
                    merged.push(pg);
                }
            }
        }
    }
    // A scalar aggregate over zero rows still yields one group.
    if merged.is_empty() && group_exprs.is_empty() {
        merged.push(PartialGroup {
            key: Vec::new(),
            accs: aggs.iter().map(AggAcc::new).collect(),
            rep: usize::MAX,
        });
    }

    let mut out_rows = Vec::with_capacity(merged.len());
    for pg in merged {
        // Representative row: first of group, or all-NULL for empty input.
        let mut extended: Row = if pg.rep == usize::MAX {
            vec![Value::Null; scope.width]
        } else {
            match input_ref {
                AggInput::Rows(rows) => rows[pg.rep].clone(),
                AggInput::Batch { b, .. } => b.cols.iter().map(|c| c.value_at(pg.rep)).collect(),
            }
        };
        for (acc, spec) in pg.accs.into_iter().zip(&aggs) {
            extended.push(acc.finish(spec));
        }
        if let Some(h) = &having {
            if !h.eval_bool(&extended)? {
                continue;
            }
        }
        let mut out = Vec::with_capacity(proj_exprs.len());
        for e in &proj_exprs {
            out.push(e.eval(&extended)?);
        }
        out_rows.push(out);
    }
    Ok(Relation {
        columns: names,
        rows: out_rows,
    })
}

/// One group's partial aggregation state within a morsel (or, after the
/// merge, globally): group key, one accumulator per aggregate, and the
/// index of the group's first row (its representative — projections may
/// reference non-grouped columns).
struct PartialGroup {
    key: Vec<Value>,
    accs: Vec<AggAcc>,
    rep: usize,
}

/// A mergeable aggregate accumulator. Serial and parallel aggregation both
/// run through these, so the two paths cannot drift.
enum AggAcc {
    CountStar(i64),
    Count(i64),
    CountDistinct(FxHashSet<Value>),
    /// SUM and AVG: integer and float lanes accumulated separately, mixed
    /// only at `finish` (matching SQL's int-stays-int SUM semantics).
    Sum {
        sum_i: i64,
        sum_f: f64,
        any_f: bool,
        n: i64,
    },
    MinMax(Option<Value>),
}

impl AggAcc {
    fn new(spec: &AggSpec) -> AggAcc {
        match spec.func {
            AggFn::CountStar => AggAcc::CountStar(0),
            AggFn::Count if spec.distinct => AggAcc::CountDistinct(FxHashSet::default()),
            AggFn::Count => AggAcc::Count(0),
            AggFn::Sum | AggFn::Avg => AggAcc::Sum {
                sum_i: 0,
                sum_f: 0.0,
                any_f: false,
                n: 0,
            },
            AggFn::Min | AggFn::Max => AggAcc::MinMax(None),
        }
    }

    fn update(&mut self, spec: &AggSpec, row: &Row) -> Result<()> {
        let v = match &spec.arg {
            None => Value::Null,
            Some(arg) => arg.eval(row)?,
        };
        self.update_value(spec, v)
    }

    /// Fold one already-evaluated argument value into the accumulator (the
    /// columnar path reads values straight out of column vectors instead of
    /// evaluating an expression against a materialized row).
    fn update_value(&mut self, spec: &AggSpec, v: Value) -> Result<()> {
        match self {
            AggAcc::CountStar(n) => *n += 1,
            AggAcc::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            AggAcc::CountDistinct(seen) => {
                if !v.is_null() {
                    seen.insert(v);
                }
            }
            AggAcc::Sum {
                sum_i,
                sum_f,
                any_f,
                n,
            } => match v {
                Value::Null => {}
                Value::Int(x) => {
                    *sum_i = sum_i.wrapping_add(x);
                    *n += 1;
                }
                Value::Double(x) => {
                    *sum_f += x;
                    *any_f = true;
                    *n += 1;
                }
                other => return Err(Error::Type(format!("cannot SUM a {}", other.type_name()))),
            },
            AggAcc::MinMax(best) => {
                if v.is_null() {
                    return Ok(());
                }
                let keep_new = match best {
                    None => true,
                    Some(b) => {
                        let ord = v.total_cmp(b);
                        match spec.func {
                            AggFn::Min => ord == std::cmp::Ordering::Less,
                            _ => ord == std::cmp::Ordering::Greater,
                        }
                    }
                };
                if keep_new {
                    *best = Some(v);
                }
            }
        }
        Ok(())
    }

    /// Fold another partial (from a later morsel of the same group) in.
    fn merge(&mut self, spec: &AggSpec, other: AggAcc) {
        match (self, other) {
            (AggAcc::CountStar(a), AggAcc::CountStar(b)) => *a += b,
            (AggAcc::Count(a), AggAcc::Count(b)) => *a += b,
            (AggAcc::CountDistinct(a), AggAcc::CountDistinct(b)) => a.extend(b),
            (
                AggAcc::Sum {
                    sum_i,
                    sum_f,
                    any_f,
                    n,
                },
                AggAcc::Sum {
                    sum_i: bi,
                    sum_f: bf,
                    any_f: ba,
                    n: bn,
                },
            ) => {
                *sum_i = sum_i.wrapping_add(bi);
                *sum_f += bf;
                *any_f |= ba;
                *n += bn;
            }
            (AggAcc::MinMax(a), AggAcc::MinMax(b)) => {
                if let Some(bv) = b {
                    let keep_new = match &a {
                        None => true,
                        Some(av) => {
                            let ord = bv.total_cmp(av);
                            match spec.func {
                                AggFn::Min => ord == std::cmp::Ordering::Less,
                                _ => ord == std::cmp::Ordering::Greater,
                            }
                        }
                    };
                    if keep_new {
                        *a = Some(bv);
                    }
                }
            }
            _ => unreachable!("mismatched accumulator kinds"),
        }
    }

    fn finish(self, spec: &AggSpec) -> Value {
        match self {
            AggAcc::CountStar(n) | AggAcc::Count(n) => Value::Int(n),
            AggAcc::CountDistinct(seen) => Value::Int(seen.len() as i64),
            AggAcc::Sum {
                sum_i,
                sum_f,
                any_f,
                n,
            } => {
                if n == 0 {
                    Value::Null
                } else if spec.func == AggFn::Sum {
                    if any_f {
                        Value::Double(sum_f + sum_i as f64)
                    } else {
                        Value::Int(sum_i)
                    }
                } else {
                    Value::Double((sum_f + sum_i as f64) / n as f64)
                }
            }
            AggAcc::MinMax(best) => best.unwrap_or(Value::Null),
        }
    }
}

// ---------------------------------------------------------------------------
// Plan execution
// ---------------------------------------------------------------------------
//
// The planning half of the old interleaved FROM pipeline lives in
// `crate::plan` now. The executor below consumes the finished
// [`plan::FromPlan`] without making any planning decisions of its own: it
// follows access paths, attach strategies, and pushed filters exactly as
// planned, and records observed cardinalities into each step's
// [`plan::StepExec`] for EXPLAIN.

/// Intermediate data flowing between plan steps: materialized rows, or
/// columnar batches while a scan's output stays columnar (full scans, and
/// hash joins whose inputs are both batched). Converting batches to rows
/// reproduces the row engine's output exactly, so every operator may fall
/// back to the row representation at any point.
pub(crate) enum Data {
    Rows(Vec<Row>),
    /// Invariant: never an empty vec — a scan with zero morsels still
    /// contributes one zero-length batch so `Batch::compact` can learn the
    /// width downstream.
    Batches(Vec<Batch>),
    /// List-based (factorized) representation produced by CSR adjacency
    /// expansion: base rows plus one offset-delimited expansion level per
    /// CSR step. Flattening reproduces the row engine's nested-loop output
    /// exactly, so any operator may fall back via `into_rows`.
    Factor(Factored),
}

/// One expansion level of a [`Factored`] intermediate: element `e` belongs
/// to parent `p` (a base row for level 0, an element of the previous level
/// otherwise) iff `offsets[p] <= e < offsets[p + 1]`. Elements keep the
/// index's posting order, so a depth-first walk visits exactly the rows the
/// row engine's index nested-loop join would produce, in the same order.
pub(crate) struct Level {
    /// `parent_count + 1` offsets into the element arrays.
    offsets: Vec<u32>,
    /// One value vector per kept column (may be empty when the step keeps
    /// zero columns; `len` still counts elements).
    cols: Vec<Vec<Value>>,
    /// Element count (`offsets.last()`), tracked separately because `cols`
    /// can be empty.
    len: usize,
}

/// Factorized intermediate data: `base` rows and a chain of expansion
/// [`Level`]s. Each leaf element has exactly one ancestor chain, so the
/// logical row count is the last level's element count and per-leaf
/// filtering equals per-flattened-row filtering.
pub(crate) struct Factored {
    base: Vec<Row>,
    /// Width of every base row (kept explicitly so an empty base still
    /// knows its scope width).
    base_width: usize,
    /// Invariant: never empty — a factor exists only once a CSR step has
    /// expanded at least one level.
    levels: Vec<Level>,
}

impl Factored {
    /// Logical (flattened) row count: one row per leaf element.
    fn leaf_count(&self) -> usize {
        self.levels.last().map_or(self.base.len(), |l| l.len)
    }

    /// Column offset where the last level's values start in a flattened row.
    fn last_level_start(&self) -> usize {
        self.base_width
            + self.levels[..self.levels.len() - 1]
                .iter()
                .map(|l| l.cols.len())
                .sum::<usize>()
    }

    /// Depth-first flatten: for each base row in order, expand each level's
    /// elements in order — byte-identical to the nested index-probe loops
    /// the plan would otherwise run.
    fn flatten(self) -> Vec<Row> {
        fn rec(levels: &[Level], parent: usize, prefix: &mut Row, out: &mut Vec<Row>) {
            let (lv, rest) = levels.split_first().expect("levels never empty here");
            let (lo, hi) = (lv.offsets[parent] as usize, lv.offsets[parent + 1] as usize);
            for e in lo..hi {
                let w = prefix.len();
                for col in &lv.cols {
                    prefix.push(col[e].clone());
                }
                if rest.is_empty() {
                    out.push(prefix.clone());
                } else {
                    rec(rest, e, prefix, out);
                }
                prefix.truncate(w);
            }
        }
        if self.levels.is_empty() {
            return self.base;
        }
        let mut out = Vec::with_capacity(self.leaf_count());
        let mut prefix: Row = Vec::new();
        for (b, row) in self.base.iter().enumerate() {
            prefix.clear();
            prefix.extend_from_slice(row);
            rec(&self.levels, b, &mut prefix, &mut out);
        }
        out
    }

    /// Flatten, cloning only the columns marked in `mask` — the rest come
    /// out as `NULL`. Consumers that provably never read the unmasked
    /// columns (aggregation reads group keys, aggregate arguments, HAVING,
    /// and projection inputs only) get rows of the full width — column
    /// indices stay valid — without paying for the dead values. Row count
    /// and order are exactly [`Factored::flatten`]'s.
    fn flatten_masked(self, mask: &[bool]) -> Vec<Row> {
        if mask.iter().all(|&m| m) {
            return self.flatten();
        }
        // `prefix.len()` on entry to a level is that level's first absolute
        // column index, so the mask indexes directly.
        fn rec(
            levels: &[Level],
            parent: usize,
            prefix: &mut Row,
            mask: &[bool],
            out: &mut Vec<Row>,
        ) {
            let (lv, rest) = levels.split_first().expect("levels never empty here");
            let (lo, hi) = (lv.offsets[parent] as usize, lv.offsets[parent + 1] as usize);
            let w = prefix.len();
            for e in lo..hi {
                for (c, col) in lv.cols.iter().enumerate() {
                    prefix.push(if mask[w + c] {
                        col[e].clone()
                    } else {
                        Value::Null
                    });
                }
                if rest.is_empty() {
                    out.push(prefix.clone());
                } else {
                    rec(rest, e, prefix, mask, out);
                }
                prefix.truncate(w);
            }
        }
        let keep_base = |row: &Row| -> Row {
            row.iter()
                .enumerate()
                .map(|(c, v)| if mask[c] { v.clone() } else { Value::Null })
                .collect()
        };
        if self.levels.is_empty() {
            return self.base.iter().map(keep_base).collect();
        }
        let mut out = Vec::with_capacity(self.leaf_count());
        let mut prefix: Row = Vec::new();
        for (b, row) in self.base.iter().enumerate() {
            prefix.clear();
            prefix.extend(keep_base(row));
            rec(&self.levels, b, &mut prefix, mask, &mut out);
        }
        out
    }

    /// The first flattened row (the aggregate representative) without
    /// materializing the rest, or `None` when there are no leaves.
    fn first_path_row(&self) -> Option<Row> {
        if self.leaf_count() == 0 {
            return None;
        }
        // Walk ancestor indices from the first leaf up: the parent of
        // element `e` is the last offset entry at or below `e`.
        let mut elem = vec![0usize; self.levels.len()];
        let mut idx = 0usize;
        for (d, lv) in self.levels.iter().enumerate().rev() {
            elem[d] = idx;
            idx = lv.offsets.partition_point(|&o| o as usize <= idx) - 1;
        }
        let mut row = self.base[idx].clone();
        for (lv, &e) in self.levels.iter().zip(&elem) {
            for col in &lv.cols {
                row.push(col[e].clone());
            }
        }
        Some(row)
    }
}

impl Data {
    /// Live row count (honoring selection vectors; leaf paths for factors).
    fn len(&self) -> usize {
        match self {
            Data::Rows(r) => r.len(),
            Data::Batches(bs) => bs.iter().map(Batch::selected).sum(),
            Data::Factor(f) => f.leaf_count(),
        }
    }

    /// Materialize to rows — the row-engine boundary.
    fn into_rows(self) -> Vec<Row> {
        match self {
            Data::Rows(r) => r,
            Data::Batches(bs) => bs.iter().flat_map(Batch::to_rows).collect(),
            Data::Factor(f) => f.flatten(),
        }
    }

    /// The identity seed (`[[]]`) a FROM pipeline starts from.
    fn is_identity(&self) -> bool {
        matches!(self, Data::Rows(r) if r.len() == 1 && r[0].is_empty())
    }
}

/// Control flow out of [`exec_step`]'s produce phase: `Right` hands the
/// unit's rows to the attach phase; `Done` consumed the accumulated rows
/// already (index probes and laterals combine while producing).
enum Produced {
    Right(Data),
    Done(Data),
}

/// Execute a planned FROM pipeline.
fn exec_from(env: &Env<'_>, plan: &mut plan::FromPlan) -> Result<Data> {
    let mut data = Data::Rows(vec![Vec::new()]); // identity row
    for step in &mut plan.steps {
        let was_factor = matches!(&data, Data::Factor(_));
        data = exec_step(env, step, data)?;
        for p in &step.after {
            data = filter_data(env, data, p)?;
        }
        // EXPLAIN's per-step list-vs-flat mode: a step whose output stays
        // factorized runs in list mode; the step that materializes a
        // factored input back to rows is the flatten point.
        if matches!(&data, Data::Factor(_)) {
            step.exec.list_out = Some(true);
        } else if was_factor {
            step.exec.list_out = Some(false);
        }
        step.exec.actual = Some(data.len());
    }
    for p in &plan.residual {
        data = filter_data(env, data, p)?;
    }
    Ok(data)
}

fn find_index<'t>(t: &'t Table, name: &str) -> Result<&'t crate::index::Index> {
    // Plans hold index *names*; re-resolve at execution time so a plan never
    // outlives the index it chose (DDL between plan and run surfaces as a
    // clean error).
    t.indexes()
        .iter()
        .find(|i| i.name == name)
        .ok_or_else(|| Error::NotFound(format!("index '{name}'")))
}

/// Execute one step: produce the unit's rows per [`plan::StepKind`] /
/// [`plan::Access`], then combine with the accumulated rows per
/// [`plan::Attach`].
fn exec_step(env: &Env<'_>, step: &mut plan::Step, left: Data) -> Result<Data> {
    let mut left = Some(left);
    let produced = match &mut step.kind {
        StepKind::Scan {
            table,
            keep,
            access,
            locals,
        } => {
            let guard = env.db.read_table(table)?;
            let t: &Table = &guard;
            match access {
                Access::Probe { index, parts } => {
                    // Index nested-loop join: build a key per accumulated
                    // row, probe, and emit combined rows directly.
                    let idx = find_index(t, index)?;
                    let lrows = left.take().expect("left consumed once").into_rows();
                    let mut out = Vec::new();
                    for l in lrows {
                        let mut key = Vec::with_capacity(parts.len());
                        let mut null_key = false;
                        for p in parts.iter() {
                            let v = match p {
                                ProbePart::Const(v) => v.clone(),
                                ProbePart::Probe(e) => e.eval(&l)?,
                            };
                            if v.is_null() {
                                null_key = true;
                                break;
                            }
                            key.push(v);
                        }
                        if null_key {
                            continue;
                        }
                        let probe = IndexKey(key);
                        for &rid in idx.lookup(&probe) {
                            // A posting covers every version of a chain;
                            // re-check the key against the visible version
                            // (older versions may carry a different key).
                            let Some(row) = t.get_visible(rid, env.snap) else {
                                continue;
                            };
                            if idx.key_of(row) != probe {
                                continue;
                            }
                            let mut combined = l.clone();
                            combined.extend(keep.iter().map(|&i| row[i].clone()));
                            out.push(combined);
                        }
                    }
                    Produced::Done(Data::Rows(out))
                }
                Access::Csr { index, part } => {
                    // CSR adjacency expansion: probe keys resolve through a
                    // compressed per-key grouping of the index's postings
                    // (cached across statements when the snapshot allows —
                    // see `Database::csr_for`). Output stays factorized:
                    // the expansion is appended as an offset-delimited
                    // level instead of materializing one row per match.
                    let entry = env.db.csr_for(t, table, index, keep, env.snap)?;
                    step.exec.csr_groups = Some(entry.group_count());
                    let width = keep.len();
                    let ldata = left.take().expect("left consumed once");
                    // A factored input extends in place when the probe key
                    // only reads the last level's columns (each leaf then
                    // owns its key); otherwise flatten first.
                    let extend = match &ldata {
                        Data::Factor(f) if !f.levels.is_empty() => {
                            let start = f.last_level_start();
                            let lw = f.levels.last().expect("checked non-empty").cols.len();
                            let mut ok = true;
                            part.visit_columns(&mut |c| {
                                if c < start || c >= start + lw {
                                    ok = false;
                                }
                            });
                            ok
                        }
                        _ => false,
                    };
                    let mut offsets: Vec<u32> = vec![0];
                    let mut cols: Vec<Vec<Value>> = (0..width).map(|_| Vec::new()).collect();
                    let mut total = 0usize;
                    if extend {
                        let Data::Factor(mut f) = ldata else {
                            unreachable!("extend implies factored input");
                        };
                        let start = f.last_level_start();
                        let last = f.levels.last().expect("checked non-empty");
                        // Scratch row: NULL prefix (the probe never reads
                        // it) + the leaf element's own columns.
                        let mut buf: Row = vec![Value::Null; start];
                        for e in 0..last.len {
                            buf.truncate(start);
                            for col in &last.cols {
                                buf.push(col[e].clone());
                            }
                            let key = part.eval(&buf)?;
                            if !key.is_null() {
                                total += entry.expand_into(&key, &mut cols);
                            }
                            offsets.push(total as u32);
                        }
                        f.levels.push(Level {
                            offsets,
                            cols,
                            len: total,
                        });
                        Produced::Done(Data::Factor(f))
                    } else {
                        let base = ldata.into_rows();
                        let base_width = base.first().map_or(0, Vec::len);
                        for l in &base {
                            let key = part.eval(l)?;
                            if !key.is_null() {
                                total += entry.expand_into(&key, &mut cols);
                            }
                            offsets.push(total as u32);
                        }
                        Produced::Done(Data::Factor(Factored {
                            base,
                            base_width,
                            levels: vec![Level {
                                offsets,
                                cols,
                                len: total,
                            }],
                        }))
                    }
                }
                Access::Point { index, key, .. } => {
                    let idx = find_index(t, index)?;
                    let probe = IndexKey(key.clone());
                    let mut scanned: Vec<Row> = idx
                        .lookup(&probe)
                        .iter()
                        .filter_map(|&rid| {
                            let row = t.get_visible(rid, env.snap)?;
                            (idx.key_of(row) == probe)
                                .then(|| keep.iter().map(|&i| row[i].clone()).collect())
                        })
                        .collect();
                    for p in locals.iter() {
                        let before = scanned.len();
                        scanned = filter_rows(scanned, p)?;
                        step.exec.local_counts.push((before, scanned.len()));
                    }
                    Produced::Right(Data::Rows(scanned))
                }
                Access::Range { index, lo, hi } => {
                    let idx = find_index(t, index)?;
                    let lo_key = lo.as_ref().map(|v| IndexKey(vec![v.clone()]));
                    let hi_key = hi.as_ref().map(|v| IndexKey(vec![v.clone()]));
                    let ids = idx.range(lo_key.as_ref(), hi_key.as_ref())?;
                    let mut scanned: Vec<Row> = ids
                        .iter()
                        .filter_map(|&rid| {
                            let row = t.get_visible(rid, env.snap)?;
                            // Re-check bounds against the visible version's
                            // key (postings cover the whole chain).
                            let k = idx.key_of(row);
                            let in_lo = lo_key.as_ref().is_none_or(|lo| &k >= lo);
                            let in_hi = hi_key.as_ref().is_none_or(|hi| &k <= hi);
                            (in_lo && in_hi).then(|| keep.iter().map(|&i| row[i].clone()).collect())
                        })
                        .collect();
                    // EXPLAIN's range-scan count is rows before locals.
                    step.exec.scan_rows = Some(scanned.len());
                    for p in locals.iter() {
                        let before = scanned.len();
                        scanned = filter_rows(scanned, p)?;
                        step.exec.local_counts.push((before, scanned.len()));
                    }
                    Produced::Right(Data::Rows(scanned))
                }
                Access::Full => {
                    // Full scan fused with the pushed-down predicates, split
                    // into morsels when the table is large enough (or
                    // parallelism is pinned). Morsels cover disjoint slab
                    // ranges and outputs concatenate in slab order, so the
                    // result is identical at every DOP — and identical
                    // between the columnar and row representations.
                    let snap = env.snap;
                    let live = t.len();
                    let dop = env.db.dop_for(live);
                    step.exec.scan_rows = Some(live);
                    step.exec.scan_dop = Some(dop);
                    let slots = t.slots();
                    if env.db.batch_enabled() {
                        // Columnar: one batch per morsel; filters flip the
                        // selection vector (vectorized where the predicate
                        // shape allows) instead of materializing rows.
                        let specs: Vec<Option<batch::PredSpec>> =
                            locals.iter().map(batch::compile_spec).collect();
                        let keep_ref: &[usize] = keep;
                        let locals_ref: &[Expr] = locals;
                        let specs_ref = &specs;
                        let chunks = crate::parallel::ordered_map(
                            dop,
                            slots.len(),
                            crate::parallel::MORSEL_ROWS,
                            |range| -> Result<Batch> {
                                let mut b = t.batch_range(range, keep_ref, snap);
                                if !locals_ref.is_empty() {
                                    let mut sel: Vec<u32> = (0..b.len as u32).collect();
                                    for (p, spec) in locals_ref.iter().zip(specs_ref) {
                                        sel =
                                            match spec.as_ref().and_then(|s| s.try_apply(&b, &sel))
                                            {
                                                Some(s) => s,
                                                None => generic_batch_filter(&b, &sel, p)?,
                                            };
                                    }
                                    b.sel = Some(sel);
                                }
                                Ok(b)
                            },
                        );
                        let mut batches = Vec::with_capacity(chunks.len().max(1));
                        for c in chunks {
                            batches.push(c?);
                        }
                        if batches.is_empty() {
                            batches.push(t.batch_range(0..0, keep, snap));
                        }
                        if !locals.is_empty() {
                            let total: usize = batches.iter().map(Batch::selected).sum();
                            step.exec.local_counts.push((live, total));
                        }
                        Produced::Right(Data::Batches(batches))
                    } else {
                        let keep_ref: &[usize] = keep;
                        let locals_ref: &[Expr] = locals;
                        let chunks = crate::parallel::ordered_map(
                            dop,
                            slots.len(),
                            crate::parallel::MORSEL_ROWS,
                            |range| -> Result<Vec<Row>> {
                                let mut out = Vec::new();
                                'slot: for slot in &slots[range] {
                                    let Some(r) = slot.visible(snap) else {
                                        continue;
                                    };
                                    let row: Row = keep_ref.iter().map(|&i| r[i].clone()).collect();
                                    for p in locals_ref {
                                        if !p.eval_bool(&row)? {
                                            continue 'slot;
                                        }
                                    }
                                    out.push(row);
                                }
                                Ok(out)
                            },
                        );
                        let mut scanned = Vec::new();
                        for chunk in chunks {
                            scanned.extend(chunk?);
                        }
                        if !locals.is_empty() {
                            step.exec.local_counts.push((live, scanned.len()));
                        }
                        Produced::Right(Data::Rows(scanned))
                    }
                }
            }
        }
        StepKind::Rel { rel, .. } => Produced::Right(Data::Rows(std::mem::take(&mut rel.rows))),
        StepKind::LateralValues {
            rows: compiled_rows,
            arity,
        } => {
            let ldata = left.take().expect("left consumed once");
            // A factored input stays factored when every row expression
            // reads only the last level's columns (the unpivot then nests
            // as one more offset-delimited level instead of materializing
            // the full-width cross product). Flatten order is preserved:
            // each leaf's lateral rows nest under it in VALUES order.
            let listwise = match &ldata {
                Data::Factor(f) if !f.levels.is_empty() => {
                    let start = f.last_level_start();
                    let lw = f.levels.last().expect("checked non-empty").cols.len();
                    let mut ok = true;
                    for cr in compiled_rows.iter() {
                        for e in cr {
                            e.visit_columns(&mut |c| {
                                if c < start || c >= start + lw {
                                    ok = false;
                                }
                            });
                        }
                    }
                    ok
                }
                _ => false,
            };
            if listwise {
                let Data::Factor(mut f) = ldata else {
                    unreachable!("listwise implies factored input");
                };
                let start = f.last_level_start();
                let last = f.levels.last().expect("checked non-empty");
                let k = compiled_rows.len();
                let parent_len = last.len;
                let mut offsets: Vec<u32> = Vec::with_capacity(parent_len + 1);
                offsets.push(0);
                let mut cols: Vec<Vec<Value>> = (0..*arity)
                    .map(|_| Vec::with_capacity(parent_len * k))
                    .collect();
                // Scratch row: NULL prefix (never read) + the leaf element.
                let mut buf: Row = vec![Value::Null; start];
                for e in 0..parent_len {
                    buf.truncate(start);
                    for col in &last.cols {
                        buf.push(col[e].clone());
                    }
                    for cr in compiled_rows.iter() {
                        for (j, expr) in cr.iter().enumerate() {
                            cols[j].push(expr.eval(&buf)?);
                        }
                    }
                    offsets.push(((e + 1) * k) as u32);
                }
                f.levels.push(Level {
                    offsets,
                    cols,
                    len: parent_len * k,
                });
                Produced::Done(Data::Factor(f))
            } else {
                let lrows = ldata.into_rows();
                let mut out = Vec::with_capacity(lrows.len() * compiled_rows.len());
                for row in lrows {
                    for cr in compiled_rows.iter() {
                        let mut extended = row.clone();
                        for e in cr {
                            extended.push(e.eval(&row)?);
                        }
                        out.push(extended);
                    }
                }
                Produced::Done(Data::Rows(out))
            }
        }
        StepKind::LateralFunc {
            func,
            args,
            arity: _,
        } => {
            let lrows = left.take().expect("left consumed once").into_rows();
            let mut out = Vec::new();
            for row in lrows {
                let mut arg_values = Vec::with_capacity(args.len());
                for e in args.iter() {
                    arg_values.push(e.eval(&row)?);
                }
                for produced in func.invoke(&arg_values)? {
                    let mut extended = row.clone();
                    extended.extend(produced);
                    out.push(extended);
                }
            }
            Produced::Done(Data::Rows(out))
        }
    };
    match produced {
        Produced::Done(data) => Ok(data),
        Produced::Right(right) => {
            exec_attach(env, step, left.take().expect("left consumed once"), right)
        }
    }
}

/// Combine the accumulated rows with a step's produced unit rows.
fn exec_attach(env: &Env<'_>, step: &mut plan::Step, left: Data, right: Data) -> Result<Data> {
    match &step.attach {
        Attach::Hash { lkey, rkey } => {
            let dop = env.db.dop_for(right.len().max(left.len()));
            step.exec.join_rows = Some(right.len());
            step.exec.join_dop = Some(dop);
            // Columnar fast path: both sides batched and both keys bare
            // columns — join on the column vectors directly.
            if let (Data::Batches(lb), Data::Batches(rb), Expr::Col(lc), Expr::Col(rc)) =
                (&left, &right, lkey, rkey)
            {
                return batch_hash_join(dop, lb, rb, *lc, *rc);
            }
            let rrows = right.into_rows();
            let mut lrows = left.into_rows();
            if dop <= 1 {
                // Serial build in row order, probe in row order.
                let mut table: FxHashMap<Value, Vec<&Row>> = FxHashMap::default();
                for r in &rrows {
                    let k = rkey.eval(r)?;
                    if !k.is_null() {
                        table.entry(k).or_default().push(r);
                    }
                }
                let mut out = Vec::new();
                for l in lrows {
                    let k = lkey.eval(&l)?;
                    if k.is_null() {
                        continue;
                    }
                    if let Some(cands) = table.get(&k) {
                        for r in cands {
                            let mut combined = l.clone();
                            combined.extend_from_slice(r);
                            out.push(combined);
                        }
                    }
                }
                Ok(Data::Rows(out))
            } else {
                Ok(Data::Rows(parallel_hash_join(
                    dop, &mut lrows, &rrows, lkey, rkey,
                )?))
            }
        }
        Attach::Cross => {
            if left.is_identity() {
                // Leading unit: crossing the identity row is a passthrough
                // (this keeps columnar scans columnar).
                step.exec.join_rows = Some(right.len());
                step.exec.join_dop = Some(1);
                return Ok(right);
            }
            let rrows = right.into_rows();
            let lrows = left.into_rows();
            let dop = env.db.dop_for(lrows.len());
            step.exec.join_rows = Some(rrows.len());
            step.exec.join_dop = Some(dop);
            let left_ref = &lrows;
            let right_ref = &rrows;
            let chunks = crate::parallel::ordered_map(
                dop,
                lrows.len(),
                crate::parallel::MORSEL_ROWS,
                |range| {
                    let mut out = Vec::with_capacity(range.len() * right_ref.len());
                    for l in &left_ref[range] {
                        for r in right_ref {
                            let mut combined = l.clone();
                            combined.extend_from_slice(r);
                            out.push(combined);
                        }
                    }
                    out
                },
            );
            Ok(Data::Rows(chunks.into_iter().flatten().collect()))
        }
        Attach::Probe | Attach::Flatten => {
            unreachable!("probe/flatten attaches combine inside exec_step")
        }
    }
}

/// Hash join over columnar inputs. The build side (right/unit) is hashed
/// serially in row order; the probe side fans out over MORSEL_ROWS chunks
/// whose outputs concatenate in order — so match lists and output order are
/// exactly the serial row join's at any DOP. Keys go through a typed `i64`
/// map when both key columns are integer vectors (`Value` hashing and
/// equality agree with `i64`'s there, and never equate `Int` with `Double`,
/// matching the row engine); anything else uses `Value` keys.
fn batch_hash_join(dop: usize, lb: &[Batch], rb: &[Batch], lc: usize, rc: usize) -> Result<Data> {
    use crate::batch::ColVec;
    let lbat = Batch::compact(lb);
    let rbat = Batch::compact(rb);

    enum KeyMap {
        Int(FxHashMap<i64, Vec<u32>>),
        Val(FxHashMap<Value, Vec<u32>>),
    }
    let map = match (&lbat.cols[lc], &rbat.cols[rc]) {
        (ColVec::Int { .. }, ColVec::Int { vals, .. }) => {
            let mut m: FxHashMap<i64, Vec<u32>> = FxHashMap::default();
            for (i, v) in vals.iter().enumerate() {
                if !rbat.cols[rc].is_null(i) {
                    m.entry(*v).or_default().push(i as u32);
                }
            }
            KeyMap::Int(m)
        }
        _ => {
            let mut m: FxHashMap<Value, Vec<u32>> = FxHashMap::default();
            for i in 0..rbat.len {
                let k = rbat.cols[rc].value_at(i);
                if !k.is_null() {
                    m.entry(k).or_default().push(i as u32);
                }
            }
            KeyMap::Val(m)
        }
    };

    let map_ref = &map;
    let lbat_ref = &lbat;
    let pair_chunks = crate::parallel::ordered_map(
        dop,
        lbat.len,
        crate::parallel::MORSEL_ROWS,
        |range| -> Vec<(u32, u32)> {
            let mut pairs = Vec::new();
            for i in range {
                let cands = match map_ref {
                    KeyMap::Int(m) => {
                        if lbat_ref.cols[lc].is_null(i) {
                            continue;
                        }
                        let ColVec::Int { vals, .. } = &lbat_ref.cols[lc] else {
                            unreachable!("typed map implies Int probe column");
                        };
                        m.get(&vals[i])
                    }
                    KeyMap::Val(m) => {
                        let k = lbat_ref.cols[lc].value_at(i);
                        if k.is_null() {
                            continue;
                        }
                        m.get(&k)
                    }
                };
                if let Some(cands) = cands {
                    for &r in cands {
                        pairs.push((i as u32, r));
                    }
                }
            }
            pairs
        },
    );
    let mut li = Vec::new();
    let mut ri = Vec::new();
    for chunk in pair_chunks {
        for (l, r) in chunk {
            li.push(l);
            ri.push(r);
        }
    }
    let mut cols = Vec::with_capacity(lbat.cols.len() + rbat.cols.len());
    for c in &lbat.cols {
        cols.push(c.gather(&li));
    }
    for c in &rbat.cols {
        cols.push(c.gather(&ri));
    }
    let len = li.len();
    Ok(Data::Batches(vec![Batch {
        cols,
        len,
        sel: None,
    }]))
}

/// Apply one compiled predicate to intermediate data. Rows filter through
/// the morsel-parallel row filter; batches flip their selection vectors in
/// place (vectorized where the predicate shape allows) without
/// materializing.
fn filter_data(env: &Env<'_>, data: Data, p: &Expr) -> Result<Data> {
    match data {
        Data::Rows(rows) => Ok(Data::Rows(filter_rows_par(env, rows, p)?)),
        Data::Batches(mut bs) => {
            let spec = batch::compile_spec(p);
            for b in &mut bs {
                let sel: Vec<u32> = b.live().map(|i| i as u32).collect();
                let new = match spec.as_ref().and_then(|s| s.try_apply(b, &sel)) {
                    Some(s) => s,
                    None => generic_batch_filter(b, &sel, p)?,
                };
                b.sel = Some(new);
            }
            Ok(Data::Batches(bs))
        }
        Data::Factor(mut f) => {
            // A predicate that only reads the last level's columns filters
            // leaf elements list-wise (each leaf is exactly one flattened
            // row, so dropping an element drops exactly that row); anything
            // touching earlier columns falls back to flattening.
            let start = f.last_level_start();
            let w = f
                .levels
                .last()
                .expect("factor levels never empty")
                .cols
                .len();
            let mut leaf_only = true;
            p.visit_columns(&mut |c| {
                if c < start || c >= start + w {
                    leaf_only = false;
                }
            });
            if !leaf_only {
                return Ok(Data::Rows(filter_rows_par(env, f.flatten(), p)?));
            }
            let last = f.levels.last_mut().expect("factor levels never empty");
            let mut buf: Row = vec![Value::Null; start];
            let mut offsets: Vec<u32> = Vec::with_capacity(last.offsets.len());
            offsets.push(0);
            let mut cols: Vec<Vec<Value>> = (0..w).map(|_| Vec::new()).collect();
            let mut kept = 0usize;
            for parent in 0..last.offsets.len() - 1 {
                let (lo, hi) = (
                    last.offsets[parent] as usize,
                    last.offsets[parent + 1] as usize,
                );
                for e in lo..hi {
                    buf.truncate(start);
                    for col in &last.cols {
                        buf.push(col[e].clone());
                    }
                    if p.eval_bool(&buf)? {
                        for (nc, col) in cols.iter_mut().zip(&last.cols) {
                            nc.push(col[e].clone());
                        }
                        kept += 1;
                    }
                }
                offsets.push(kept as u32);
            }
            last.offsets = offsets;
            last.cols = cols;
            last.len = kept;
            Ok(Data::Factor(f))
        }
    }
}

/// Scalar fallback for predicates without a columnar fast path: evaluate
/// against a scratch row per selected index.
fn generic_batch_filter(b: &Batch, sel: &[u32], p: &Expr) -> Result<Vec<u32>> {
    let mut out = Vec::with_capacity(sel.len());
    let mut buf: Row = Vec::new();
    for &i in sel {
        b.read_row(i as usize, &mut buf);
        if p.eval_bool(&buf)? {
            out.push(i);
        }
    }
    Ok(out)
}

/// Execute an explicit JOIN tree into a relation, tracking per-alias columns.
pub(crate) fn run_join_tree(env: &Env<'_>, item: &ast::FromItem) -> Result<(Relation, ScopeCols)> {
    match item {
        ast::FromItem::Join {
            left,
            right,
            kind,
            on,
        } => {
            let (lrel, lcols) = run_join_tree(env, left)?;
            // Index nested-loop fast path: right side is a base table whose
            // join column is indexed — probe per left row instead of
            // materializing and hashing the whole table.
            if let ast::FromItem::Table { name, alias } = right.as_ref() {
                let lname = name.to_ascii_lowercase();
                if !env.ctes.contains_key(&lname) {
                    let ralias = alias.clone().unwrap_or_else(|| name.clone());
                    if let Some(result) =
                        try_index_join(env, &lrel, &lcols, &lname, &ralias, *kind, on)?
                    {
                        return Ok(result);
                    }
                }
            }
            let (rrel, rcols) = run_join_tree(env, right)?;
            // Build the combined scope for the ON expression.
            let mut scope = Scope::default();
            for (alias, cols) in lcols.iter().chain(rcols.iter()) {
                scope.push(alias, cols.clone());
            }
            let lwidth = lrel.columns.len();
            let rwidth = rrel.columns.len();
            let on_compiled = compile_expr(env, &scope, on)?;

            // Hash equi-join when the ON contains `l = r` across the inputs.
            let equi = find_equi_split(&on_compiled, lwidth);
            let mut out_rows = Vec::new();
            match equi {
                Some((lkey, rkey)) => {
                    // Side purity (per `find_equi_split`) lets the build key
                    // re-base onto the bare right row and the probe key run
                    // on the left row directly — no padding clones.
                    let mut rkey = rkey;
                    rkey.map_columns(&mut |c| c - lwidth);
                    let mut table: FxHashMap<Value, Vec<&Row>> = FxHashMap::default();
                    for r in &rrel.rows {
                        let k = rkey.eval(r)?;
                        if !k.is_null() {
                            table.entry(k).or_default().push(r);
                        }
                    }
                    for l in &lrel.rows {
                        let k = lkey.eval(l)?;
                        let mut matched = false;
                        if !k.is_null() {
                            if let Some(cands) = table.get(&k) {
                                for r in cands {
                                    let mut combined = l.clone();
                                    combined.extend_from_slice(r);
                                    if on_compiled.eval_bool(&combined)? {
                                        matched = true;
                                        out_rows.push(combined);
                                    }
                                }
                            }
                        }
                        if !matched && *kind == ast::JoinKind::LeftOuter {
                            let mut combined = l.clone();
                            combined.extend(std::iter::repeat_with(|| Value::Null).take(rwidth));
                            out_rows.push(combined);
                        }
                    }
                }
                None => {
                    // Nested loop.
                    for l in &lrel.rows {
                        let mut matched = false;
                        for r in &rrel.rows {
                            let mut combined = l.clone();
                            combined.extend_from_slice(r);
                            if on_compiled.eval_bool(&combined)? {
                                matched = true;
                                out_rows.push(combined);
                            }
                        }
                        if !matched && *kind == ast::JoinKind::LeftOuter {
                            let mut combined = l.clone();
                            combined.extend(std::iter::repeat_with(|| Value::Null).take(rwidth));
                            out_rows.push(combined);
                        }
                    }
                }
            }
            let mut columns = lrel.columns;
            columns.extend(rrel.columns);
            let mut scope_cols = lcols;
            scope_cols.extend(rcols);
            Ok((
                Relation {
                    columns,
                    rows: out_rows,
                },
                scope_cols,
            ))
        }
        ast::FromItem::Table { name, alias } => {
            let rel = load_named(env, &name.to_ascii_lowercase(), &[])?;
            let alias = alias.clone().unwrap_or_else(|| name.clone());
            let cols = rel.columns.clone();
            Ok((rel, vec![(alias, cols)]))
        }
        ast::FromItem::Subquery { query, alias } => {
            let rel = run_select(env, query)?;
            let cols = rel.columns.clone();
            Ok((rel, vec![(alias.clone(), cols)]))
        }
        ast::FromItem::LateralValues { .. } | ast::FromItem::LateralFunc { .. } => {
            Err(Error::Invalid(
                "TABLE(...) items cannot be JOIN operands; use them as comma FROM items".into(),
            ))
        }
    }
}

/// Index nested-loop join of `lrel` against base table `table_name`:
/// succeeds only when the ON clause contains an equi conjunct whose right
/// side is a bare indexed column of the table. Returns `None` (caller falls
/// back to hash/NL join) otherwise.
fn try_index_join(
    env: &Env<'_>,
    lrel: &Relation,
    lcols: &[(String, Vec<String>)],
    table_name: &str,
    ralias: &str,
    kind: ast::JoinKind,
    on: &ast::Expr,
) -> Result<Option<(Relation, ScopeCols)>> {
    let guard = match env.db.read_table(table_name) {
        Ok(g) => g,
        Err(_) => return Ok(None),
    };
    let table: &Table = &guard;
    let rnames: Vec<String> = table
        .schema
        .columns
        .iter()
        .map(|c| c.name.clone())
        .collect();
    let mut scope = Scope::default();
    for (alias, cols) in lcols {
        scope.push(alias, cols.clone());
    }
    let lwidth = scope.width;
    scope.push(ralias, rnames.clone());
    let on_compiled = compile_expr(env, &scope, on)?;
    let Some((lkey, rkey)) = find_equi_split(&on_compiled, lwidth) else {
        return Ok(None);
    };
    // Right key must be a single bare column with a usable index.
    let Expr::Col(ridx) = rkey else {
        return Ok(None);
    };
    if ridx < lwidth {
        return Ok(None);
    }
    let rcol = ridx - lwidth;
    let Some(idx) = table
        .indexes()
        .iter()
        .find(|i| i.columns.len() == 1 && i.columns[0] == rcol)
    else {
        return Ok(None);
    };
    env.note(|| {
        format!(
            "{table_name}: index {} join via {}",
            if kind == ast::JoinKind::LeftOuter {
                "left-outer"
            } else {
                "nested-loop"
            },
            idx.name
        )
    });
    let rwidth = rnames.len();
    let mut out_rows = Vec::new();
    for l in &lrel.rows {
        // `lkey` touches only columns < lwidth, so it evaluates directly on
        // the left row — no padded probe clone.
        let k = lkey.eval(l)?;
        let mut matched = false;
        if !k.is_null() {
            for &rid in idx.lookup(&IndexKey(vec![k])) {
                // The full ON re-evaluation below also rejects chain
                // versions whose visible key differs from the posting.
                let Some(row) = table.get_visible(rid, env.snap) else {
                    continue;
                };
                let mut combined = l.clone();
                combined.extend_from_slice(row);
                if on_compiled.eval_bool(&combined)? {
                    matched = true;
                    out_rows.push(combined);
                }
            }
        }
        if !matched && kind == ast::JoinKind::LeftOuter {
            let mut combined = l.clone();
            combined.extend(std::iter::repeat_with(|| Value::Null).take(rwidth));
            out_rows.push(combined);
        }
    }
    let mut columns = lrel.columns.clone();
    columns.extend(rnames.clone());
    let mut scope_cols = lcols.to_vec();
    scope_cols.push((ralias.to_string(), rnames));
    Ok(Some((
        Relation {
            columns,
            rows: out_rows,
        },
        scope_cols,
    )))
}

/// Built-in lateral table functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TableFunc {
    /// `JSON_EDGES(doc [, label])`: unnest a JSON adjacency document
    /// `{"label": [{"eid": e, "val": v}, ...]}` into `(lbl, eid, val)` rows.
    JsonEdges,
    /// `JSON_EACH(doc)`: unnest a JSON object into `(key, value)` rows.
    JsonEach,
    /// `UNNEST(array)`: one row per array element, column `(val)`.
    Unnest,
}

impl TableFunc {
    pub(crate) fn parse(name: &str) -> Result<TableFunc> {
        match name.to_ascii_uppercase().as_str() {
            "JSON_EDGES" => Ok(TableFunc::JsonEdges),
            "JSON_EACH" => Ok(TableFunc::JsonEach),
            "UNNEST" => Ok(TableFunc::Unnest),
            other => Err(Error::NotFound(format!("table function '{other}'"))),
        }
    }

    fn invoke(&self, args: &[Value]) -> Result<Vec<Row>> {
        match self {
            TableFunc::JsonEdges => {
                // Accepts a parsed JSON value or serialized text. The text
                // form decodes per call — the document-store cost model the
                // adjacency micro-benchmark measures.
                let parsed;
                let doc = match args.first() {
                    Some(Value::Json(j)) => &**j,
                    Some(Value::Str(s)) => {
                        parsed = sqlgraph_json::parse(s)
                            .map_err(|e| Error::Type(format!("JSON_EDGES: {e}")))?;
                        &parsed
                    }
                    Some(Value::Null) | None => return Ok(Vec::new()),
                    Some(other) => {
                        return Err(Error::Type(format!(
                            "JSON_EDGES expects a JSON document, got {}",
                            other.type_name()
                        )))
                    }
                };
                let label_filter = match args.get(1) {
                    None | Some(Value::Null) => None,
                    Some(Value::Str(s)) => Some(s.as_ref()),
                    Some(other) => {
                        return Err(Error::Type(format!(
                            "JSON_EDGES label must be TEXT, got {}",
                            other.type_name()
                        )))
                    }
                };
                let Some(obj) = doc.as_object() else {
                    return Ok(Vec::new());
                };
                let mut out = Vec::new();
                for (label, edges) in obj.iter() {
                    if label_filter.is_some_and(|want| want != label) {
                        continue;
                    }
                    let Some(arr) = edges.as_array() else {
                        continue;
                    };
                    for entry in arr {
                        let eid = entry
                            .get("eid")
                            .map(crate::expr::json_to_value)
                            .unwrap_or(Value::Null);
                        let val = entry
                            .get("val")
                            .map(crate::expr::json_to_value)
                            .unwrap_or(Value::Null);
                        out.push(vec![Value::str(label), eid, val]);
                    }
                }
                Ok(out)
            }
            TableFunc::JsonEach => {
                let doc = match args.first() {
                    Some(Value::Json(j)) => j,
                    Some(Value::Null) | None => return Ok(Vec::new()),
                    Some(other) => {
                        return Err(Error::Type(format!(
                            "JSON_EACH expects a JSON document, got {}",
                            other.type_name()
                        )))
                    }
                };
                let Some(obj) = doc.as_object() else {
                    return Ok(Vec::new());
                };
                Ok(obj
                    .iter()
                    .map(|(k, v)| vec![Value::str(k), crate::expr::json_to_value(v)])
                    .collect())
            }
            TableFunc::Unnest => match args.first() {
                Some(Value::Array(items)) => Ok(items.iter().map(|v| vec![v.clone()]).collect()),
                Some(Value::Null) | None => Ok(Vec::new()),
                Some(other) => Err(Error::Type(format!(
                    "UNNEST expects an array, got {}",
                    other.type_name()
                ))),
            },
        }
    }

    pub(crate) fn arity(&self) -> usize {
        match self {
            TableFunc::JsonEdges => 3,
            TableFunc::JsonEach => 2,
            TableFunc::Unnest => 1,
        }
    }
}

/// Partitioned parallel hash join.
///
/// Build pass 1 splits the build side into morsels; each worker hashes its
/// morsel's keys into `dop` partition buckets. Pass 2 gives each worker
/// whole partitions; it assembles that partition's hash table by scanning
/// the morsel buckets **in morsel order**, so every key's candidate list
/// holds build-row indexes in exactly the order the serial build would
/// produce. The probe pass then splits the probe side into morsels and
/// concatenates outputs in morsel order — making the join's output
/// byte-identical to the serial nested loop at any DOP.
fn parallel_hash_join(
    dop: usize,
    probe_rows: &mut Vec<Row>,
    build_rows: &[Row],
    lkey: &Expr,
    rkey: &Expr,
) -> Result<Vec<Row>> {
    use crate::hasher::FxHasher;
    use std::hash::{Hash, Hasher};

    let parts = dop;
    let part_of = |v: &Value| -> usize {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        (h.finish() as usize) % parts
    };

    // Pass 1: per-morsel, per-partition (key, build row index) buckets.
    let morsel_buckets = crate::parallel::ordered_map(
        dop,
        build_rows.len(),
        crate::parallel::MORSEL_ROWS,
        |range| -> Result<Vec<Vec<(Value, u32)>>> {
            let mut buckets: Vec<Vec<(Value, u32)>> = vec![Vec::new(); parts];
            for i in range {
                let k = rkey.eval(&build_rows[i])?;
                if !k.is_null() {
                    let p = part_of(&k);
                    buckets[p].push((k, i as u32));
                }
            }
            Ok(buckets)
        },
    );
    let mut checked: Vec<Vec<Vec<(Value, u32)>>> = Vec::with_capacity(morsel_buckets.len());
    for b in morsel_buckets {
        checked.push(b?);
    }

    // Pass 2: one hash table per partition, filled in morsel order.
    let checked_ref = &checked;
    let tables: Vec<FxHashMap<Value, Vec<u32>>> =
        crate::parallel::ordered_map(dop, parts, 1, |range| {
            let p = range.start;
            let mut table: FxHashMap<Value, Vec<u32>> = FxHashMap::default();
            for morsel in checked_ref {
                for (k, i) in &morsel[p] {
                    table.entry(k.clone()).or_default().push(*i);
                }
            }
            table
        });

    // Probe pass: morsels over the probe side, outputs in morsel order.
    let probe = std::mem::take(probe_rows);
    let probe_ref = &probe;
    let tables_ref = &tables;
    let chunks = crate::parallel::ordered_map(
        dop,
        probe.len(),
        crate::parallel::MORSEL_ROWS,
        |range| -> Result<Vec<Row>> {
            let mut out = Vec::new();
            for l in &probe_ref[range] {
                let k = lkey.eval(l)?;
                if k.is_null() {
                    continue;
                }
                if let Some(cands) = tables_ref[part_of(&k)].get(&k) {
                    for &i in cands {
                        let mut combined = l.clone();
                        combined.extend_from_slice(&build_rows[i as usize]);
                        out.push(combined);
                    }
                }
            }
            Ok(out)
        },
    );
    let mut out = Vec::new();
    for chunk in chunks {
        out.extend(chunk?);
    }
    Ok(out)
}

pub(crate) fn filter_rows(rows: Vec<Row>, predicate: &Expr) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if predicate.eval_bool(&row)? {
            out.push(row);
        }
    }
    Ok(out)
}

/// Morsel-parallel filter. Predicate evaluation fans out over morsels;
/// surviving rows are then moved (not cloned) into the output in row
/// order, so the result matches [`filter_rows`] exactly.
fn filter_rows_par(env: &Env<'_>, rows: Vec<Row>, predicate: &Expr) -> Result<Vec<Row>> {
    let dop = env.db.dop_for(rows.len());
    if dop <= 1 {
        return filter_rows(rows, predicate);
    }
    let rows_ref = &rows;
    let kept = crate::parallel::ordered_map(
        dop,
        rows.len(),
        crate::parallel::MORSEL_ROWS,
        |range| -> Result<Vec<u32>> {
            let mut keep = Vec::new();
            for i in range {
                if predicate.eval_bool(&rows_ref[i])? {
                    keep.push(i as u32);
                }
            }
            Ok(keep)
        },
    );
    let mut keep_all = Vec::new();
    for chunk in kept {
        keep_all.extend(chunk?);
    }
    let mut out = Vec::with_capacity(keep_all.len());
    let mut rows = rows;
    for i in keep_all {
        out.push(std::mem::take(&mut rows[i as usize]));
    }
    Ok(out)
}

/// Load a named relation (CTE or base table) fully.
fn load_named(env: &Env<'_>, name: &str, _hint: &[()]) -> Result<Relation> {
    if let Some(cte) = env.ctes.get(name) {
        return Ok((**cte).clone());
    }
    let guard = env.db.read_table(name)?;
    Ok(Relation {
        columns: guard
            .schema
            .columns
            .iter()
            .map(|c| c.name.clone())
            .collect(),
        rows: guard.iter_snap(env.snap).map(|(_, r)| r.to_vec()).collect(),
    })
}

// ---------------------------------------------------------------------------
// Expression compilation
// ---------------------------------------------------------------------------

/// Compile an expression with no columns in scope (INSERT VALUES rows,
/// CALL arguments, LIMIT/OFFSET).
pub fn compile_scalar(env: &Env<'_>, e: &ast::Expr) -> Result<Expr> {
    compile_expr(env, &Scope::default(), e)
}

/// Compile an expression against a single table's columns (UPDATE/DELETE
/// predicates and assignments). The table is addressable by its own name.
pub fn compile_table_expr(
    env: &Env<'_>,
    schema: &crate::schema::TableSchema,
    e: &ast::Expr,
) -> Result<Expr> {
    let mut scope = Scope::default();
    scope.push(
        &schema.name,
        schema.columns.iter().map(|c| c.name.clone()).collect(),
    );
    compile_expr(env, &scope, e)
}

/// Compile a name-based expression against `scope`. Parameters are inlined
/// as constants; IN-subqueries are materialized into sets.
pub(crate) fn compile_expr(env: &Env<'_>, scope: &Scope, e: &ast::Expr) -> Result<Expr> {
    Ok(match e {
        ast::Expr::Literal(v) => Expr::Const(v.clone()),
        ast::Expr::Param(i) => Expr::Const(
            env.params
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::Invalid(format!("missing parameter ${}", i + 1)))?,
        ),
        ast::Expr::Column { table, name } => Expr::Col(scope.resolve(table.as_deref(), name)?),
        ast::Expr::Unary(op, x) => Expr::Unary(*op, Box::new(compile_expr(env, scope, x)?)),
        ast::Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(compile_expr(env, scope, l)?),
            Box::new(compile_expr(env, scope, r)?),
        ),
        ast::Expr::IsNull(x, negated) => {
            Expr::IsNull(Box::new(compile_expr(env, scope, x)?), *negated)
        }
        ast::Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(compile_expr(env, scope, expr)?),
            pattern: Box::new(compile_expr(env, scope, pattern)?),
            negated: *negated,
        },
        ast::Expr::InList {
            expr,
            list,
            negated,
        } => {
            let scrutinee = compile_expr(env, scope, expr)?;
            let compiled: Vec<Expr> = list
                .iter()
                .map(|i| compile_expr(env, scope, i))
                .collect::<Result<_>>()?;
            if compiled.iter().all(|c| matches!(c, Expr::Const(_))) {
                let mut set = FxHashSet::default();
                for c in compiled {
                    if let Expr::Const(v) = c {
                        if !v.is_null() {
                            set.insert(v);
                        }
                    }
                }
                Expr::InSet {
                    expr: Box::new(scrutinee),
                    set: Arc::new(set),
                    negated: *negated,
                }
            } else {
                // Non-constant list: desugar to an OR chain.
                let mut acc: Option<Expr> = None;
                for c in compiled {
                    let eq = Expr::Binary(BinaryOp::Eq, Box::new(scrutinee.clone()), Box::new(c));
                    acc = Some(match acc {
                        None => eq,
                        Some(prev) => Expr::Binary(BinaryOp::Or, Box::new(prev), Box::new(eq)),
                    });
                }
                let inner = acc.unwrap_or(Expr::Const(Value::Bool(false)));
                if *negated {
                    Expr::Unary(crate::expr::UnaryOp::Not, Box::new(inner))
                } else {
                    inner
                }
            }
        }
        ast::Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            let rel = run_select(env, query)?;
            if rel.columns.len() != 1 {
                return Err(Error::Invalid(
                    "IN subquery must return exactly one column".into(),
                ));
            }
            let mut set = FxHashSet::default();
            for row in rel.rows {
                let v = row.into_iter().next().expect("one column");
                if !v.is_null() {
                    set.insert(v);
                }
            }
            Expr::InSet {
                expr: Box::new(compile_expr(env, scope, expr)?),
                set: Arc::new(set),
                negated: *negated,
            }
        }
        ast::Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let x = compile_expr(env, scope, expr)?;
            let lo = compile_expr(env, scope, lo)?;
            let hi = compile_expr(env, scope, hi)?;
            let ge = Expr::Binary(BinaryOp::Ge, Box::new(x.clone()), Box::new(lo));
            let le = Expr::Binary(BinaryOp::Le, Box::new(x), Box::new(hi));
            let and = Expr::Binary(BinaryOp::And, Box::new(ge), Box::new(le));
            if *negated {
                Expr::Unary(crate::expr::UnaryOp::Not, Box::new(and))
            } else {
                and
            }
        }
        ast::Expr::Call {
            name,
            args,
            distinct,
        } => {
            if *distinct {
                return Err(Error::Invalid(format!(
                    "DISTINCT is only valid in aggregate calls, not {name}"
                )));
            }
            if AggFn::parse(name).is_some() {
                return Err(Error::Invalid(format!(
                    "aggregate {name} is not allowed here"
                )));
            }
            let func = expr::Func::parse(name)
                .ok_or_else(|| Error::NotFound(format!("function '{name}'")))?;
            let compiled: Vec<Expr> = args
                .iter()
                .map(|a| compile_expr(env, scope, a))
                .collect::<Result<_>>()?;
            Expr::Call(func, compiled)
        }
        ast::Expr::CountStar => return Err(Error::Invalid("COUNT(*) is not allowed here".into())),
        ast::Expr::Cast(x, ty) => Expr::Cast(Box::new(compile_expr(env, scope, x)?), *ty),
        ast::Expr::Subscript(x, i) => Expr::Subscript(
            Box::new(compile_expr(env, scope, x)?),
            Box::new(compile_expr(env, scope, i)?),
        ),
    })
}
