//! DBpedia-like knowledge graph generator (§3.1 of the paper).
//!
//! The paper converts DBpedia 3.8 to a property graph: object properties →
//! edges, datatype properties → vertex attributes, provenance quads → edge
//! attributes. Its micro-benchmarks traverse `isPartOf` chains between
//! places and `team` relations between soccer players and teams, and look
//! up a fixed set of attribute keys (Table 2).
//!
//! This generator reproduces those structures at a configurable scale:
//!
//! * a forest of `isPartOf` containment trees over *places* (so k-hop
//!   `isPartOf` traversals behave like the geographic hierarchy),
//! * a player↔team bipartite layer with multi-valued `team` edges,
//! * an entity layer wired with a large, skewed edge-label vocabulary
//!   (thousands of labels → meaningful coloring / Table 3 statistics),
//! * `type` edges to class vertices with `uri` attributes, mirroring the
//!   converted RDF types the benchmark queries start from,
//! * the Table 2 attribute keys (`national`, `genre`, `title`, `label`,
//!   `regionAffiliation`, `populationDensitySqMi`, `longm`, `wikiPageID`)
//!   with value shapes that make each query's selectivity meaningful,
//! * provenance attributes (`oldid`, `section`, `relative-line`) on a
//!   fraction of edges.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sqlgraph_json::Json;

/// Scale and shape parameters.
#[derive(Debug, Clone)]
pub struct DbpediaConfig {
    /// RNG seed (everything is deterministic given the seed).
    pub seed: u64,
    /// Place vertices (the `isPartOf` forest).
    pub places: usize,
    /// Soccer-player vertices.
    pub players: usize,
    /// Team vertices.
    pub teams: usize,
    /// Generic entity vertices (label-vocabulary layer).
    pub entities: usize,
    /// Distinct edge labels in the entity layer.
    pub label_vocabulary: usize,
    /// Entity-layer edges.
    pub entity_edges: usize,
}

impl Default for DbpediaConfig {
    fn default() -> Self {
        DbpediaConfig {
            seed: 42,
            places: 2_000,
            players: 1_500,
            teams: 150,
            entities: 3_000,
            label_vocabulary: 200,
            entity_edges: 12_000,
        }
    }
}

impl DbpediaConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> DbpediaConfig {
        DbpediaConfig {
            seed: 7,
            places: 120,
            players: 60,
            teams: 10,
            entities: 100,
            label_vocabulary: 20,
            entity_edges: 300,
        }
    }

    /// Scale all sizes by `factor` (for parameter sweeps).
    pub fn scaled(mut self, factor: f64) -> DbpediaConfig {
        let s = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        self.places = s(self.places);
        self.players = s(self.players);
        self.teams = s(self.teams);
        self.entities = s(self.entities);
        self.entity_edges = s(self.entity_edges);
        self
    }
}

/// Class-vertex URIs (the converted `rdf:type` targets).
pub const CLASS_PLACE: &str = "http://dbpedia.org/ontology/Place";
/// Person class URI.
pub const CLASS_PERSON: &str = "http://dbpedia.org/ontology/Person";
/// Team class URI.
pub const CLASS_TEAM: &str = "http://dbpedia.org/ontology/SoccerClub";

/// Id layout of a generated graph (all ranges inclusive).
#[derive(Debug, Clone)]
pub struct DbpediaIds {
    /// First/last place vertex id.
    pub places: (i64, i64),
    /// First/last player id.
    pub players: (i64, i64),
    /// First/last team id.
    pub teams: (i64, i64),
    /// First/last entity id.
    pub entities: (i64, i64),
    /// Class vertex ids: (Place, Person, SoccerClub).
    pub classes: (i64, i64, i64),
    /// A chain of place ids of strictly increasing depth (deepest first) —
    /// handy single-vertex starts for the long-path queries.
    pub deep_places: Vec<i64>,
}

/// A generated DBpedia-like graph plus its id layout.
#[derive(Debug, Clone)]
pub struct DbpediaGraph {
    /// The graph data.
    pub data: Dataset,
    /// Where each section lives.
    pub ids: DbpediaIds,
    /// The configuration used.
    pub config: DbpediaConfig,
}

/// Generate the graph.
pub fn generate(config: &DbpediaConfig) -> DbpediaGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut data = Dataset::default();
    let mut next_vid = 0i64;
    let mut next_eid = 0i64;
    fn alloc_v(data: &mut Dataset, next_vid: &mut i64, props: Vec<(String, Json)>) -> i64 {
        *next_vid += 1;
        data.vertices.push((*next_vid, props));
        *next_vid
    }

    let sections = [
        "External_links",
        "History",
        "Geography",
        "Career",
        "Honours",
    ];
    let provenance = |rng: &mut StdRng| -> Vec<(String, Json)> {
        if rng.gen_bool(0.3) {
            vec![
                (
                    "oldid".into(),
                    Json::int(rng.gen_range(10_000_000..99_999_999)),
                ),
                (
                    "section".into(),
                    Json::str(sections[rng.gen_range(0..sections.len())]),
                ),
                ("relative-line".into(), Json::int(rng.gen_range(1..400))),
            ]
        } else {
            Vec::new()
        }
    };

    // -- places: a containment forest ------------------------------------
    // `bucket` is a random permutation of 0..places so `interval('bucket',
    // 0, K)` selects a uniform random start set of exactly K places.
    let mut buckets: Vec<usize> = (0..config.places).collect();
    buckets.shuffle(&mut rng);
    let first_place = next_vid + 1;
    for (i, &bucket) in buckets.iter().enumerate() {
        let mut props: Vec<(String, Json)> = vec![
            (
                "uri".into(),
                Json::str(format!("http://dbpedia.org/resource/Place_{i}")),
            ),
            ("kind".into(), Json::str("place")),
            ("bucket".into(), Json::int(bucket as i64)),
            ("label".into(), place_label(&mut rng, i)),
        ];
        if rng.gen_bool(0.5) {
            // Exact value 100 appears rarely → query 12 is selective.
            let dens = if rng.gen_bool(0.002) {
                100.0
            } else {
                (rng.gen_range(1..100_000) as f64) / 10.0
            };
            props.push(("populationDensitySqMi".into(), Json::float(dens)));
        }
        if rng.gen_bool(0.6) {
            let lm = if rng.gen_bool(0.01) {
                1.0
            } else {
                rng.gen_range(-180.0..180.0)
            };
            props.push(("longm".into(), Json::float(lm)));
        }
        if rng.gen_bool(0.05) {
            let v = if rng.gen_bool(0.02) {
                "1958".to_string()
            } else {
                format!("region-{}", rng.gen_range(0..50))
            };
            props.push(("regionAffiliation".into(), Json::str(v)));
        }
        alloc_v(&mut data, &mut next_vid, props);
    }
    let last_place = next_vid;
    // Containment: place i isPartOf a place with smaller index (forest with
    // a handful of roots), giving deep chains for long-path traversals.
    for i in 1..config.places {
        let child = first_place + i as i64;
        // Bias the parent towards `i-1` so chains get deep.
        let parent_idx = if rng.gen_bool(0.55) {
            i - 1
        } else {
            rng.gen_range(0..i)
        };
        let parent = first_place + parent_idx as i64;
        next_eid += 1;
        data.edges.push((
            next_eid,
            child,
            parent,
            "isPartOf".into(),
            provenance(&mut rng),
        ));
    }
    // Deepest chain: follow i-1 links from the last place.
    let deep_places: Vec<i64> = (0..12.min(config.places))
        .map(|k| last_place - k as i64)
        .collect();

    // -- teams ------------------------------------------------------------
    let first_team = next_vid + 1;
    for i in 0..config.teams {
        alloc_v(
            &mut data,
            &mut next_vid,
            vec![
                (
                    "uri".into(),
                    Json::str(format!("http://dbpedia.org/resource/Team_{i}")),
                ),
                ("kind".into(), Json::str("team")),
                ("title".into(), Json::str(format!("FC Team {i}"))),
                ("label".into(), Json::str(format!("Team {i}@en"))),
            ],
        );
    }
    let last_team = next_vid;

    // -- players ----------------------------------------------------------
    let nationals = [
        "england",
        "brazilien",
        "deutschland@en",
        "espana@en",
        "france",
    ];
    let first_player = next_vid + 1;
    for i in 0..config.players {
        let mut props: Vec<(String, Json)> = vec![
            (
                "uri".into(),
                Json::str(format!("http://dbpedia.org/resource/Player_{i}")),
            ),
            ("kind".into(), Json::str("player")),
            ("label".into(), Json::str(format!("Player {i}@en"))),
            ("wikiPageID".into(), Json::int(20_000_000 + i as i64)),
        ];
        if rng.gen_bool(0.08) {
            props.push((
                "national".into(),
                Json::str(nationals[rng.gen_range(0..nationals.len())]),
            ));
        }
        alloc_v(&mut data, &mut next_vid, props);
        let player = next_vid;
        // Mostly one membership, sometimes two (keeps `both('team')`
        // fan-out bounded while still exercising multi-valued labels).
        let n_teams = (1 + usize::from(rng.gen_bool(0.3))).min(config.teams);
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < n_teams {
            chosen.insert(first_team + rng.gen_range(0..config.teams) as i64);
        }
        for team in chosen {
            next_eid += 1;
            data.edges
                .push((next_eid, player, team, "team".into(), provenance(&mut rng)));
        }
    }
    let last_player = next_vid;

    // -- entities with the big label vocabulary ---------------------------
    let genres = ["rock@en", "jazz", "pop@en", "folk", "metal"];
    let first_entity = next_vid + 1;
    for i in 0..config.entities {
        let mut props: Vec<(String, Json)> = vec![(
            "uri".into(),
            Json::str(format!("http://dbpedia.org/resource/Entity_{i}")),
        )];
        if rng.gen_bool(0.3) {
            props.push((
                "genre".into(),
                Json::str(genres[rng.gen_range(0..genres.len())]),
            ));
        }
        if rng.gen_bool(0.4) {
            props.push(("title".into(), Json::str(format!("Entity Title {i}@en"))));
        }
        if rng.gen_bool(0.5) {
            props.push(("label".into(), place_label(&mut rng, i)));
        }
        if rng.gen_bool(0.1) {
            // Multi-valued attribute (drives the multi-value overflow rows).
            props.push((
                "alias".into(),
                Json::Array(vec![
                    Json::str(format!("alias-{i}-a")),
                    Json::str(format!("alias-{i}-b")),
                ]),
            ));
        }
        alloc_v(&mut data, &mut next_vid, props);
    }
    let last_entity = next_vid;
    // Skewed label vocabulary: label ℓ has weight ~ 1/(ℓ+1). Sources are
    // drawn from places and entities alike: DBpedia places carry many
    // distinct object properties besides `isPartOf`, which is what makes
    // their adjacency documents wide.
    let weights: Vec<f64> = (0..config.label_vocabulary)
        .map(|l| 1.0 / (l as f64 + 1.0))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    for _ in 0..config.entity_edges {
        let src = if rng.gen_bool(0.5) {
            first_place + rng.gen_range(0..config.places) as i64
        } else {
            first_entity + rng.gen_range(0..config.entities) as i64
        };
        let dst = first_entity + rng.gen_range(0..config.entities) as i64;
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut label_idx = 0;
        for (l, w) in weights.iter().enumerate() {
            if pick < *w {
                label_idx = l;
                break;
            }
            pick -= w;
        }
        next_eid += 1;
        data.edges.push((
            next_eid,
            src,
            dst,
            format!("http://dbpedia.org/property/p{label_idx}"),
            provenance(&mut rng),
        ));
    }

    // -- classes and type edges -------------------------------------------
    let class_place = alloc_v(
        &mut data,
        &mut next_vid,
        vec![
            ("uri".into(), Json::str(CLASS_PLACE)),
            ("kind".into(), Json::str("class")),
        ],
    );
    let class_person = alloc_v(
        &mut data,
        &mut next_vid,
        vec![
            ("uri".into(), Json::str(CLASS_PERSON)),
            ("kind".into(), Json::str("class")),
        ],
    );
    let class_team = alloc_v(
        &mut data,
        &mut next_vid,
        vec![
            ("uri".into(), Json::str(CLASS_TEAM)),
            ("kind".into(), Json::str("class")),
        ],
    );
    for v in first_place..=last_place {
        next_eid += 1;
        data.edges
            .push((next_eid, v, class_place, "type".into(), vec![]));
    }
    for v in first_player..=last_player {
        next_eid += 1;
        data.edges
            .push((next_eid, v, class_person, "type".into(), vec![]));
    }
    for v in first_team..=last_team {
        next_eid += 1;
        data.edges
            .push((next_eid, v, class_team, "type".into(), vec![]));
    }

    DbpediaGraph {
        data,
        ids: DbpediaIds {
            places: (first_place, last_place),
            players: (first_player, last_player),
            teams: (first_team, last_team),
            entities: (first_entity, last_entity),
            classes: (class_place, class_person, class_team),
            deep_places,
        },
        config: config.clone(),
    }
}

/// Labels: mostly short `...@en` strings, occasionally very long (the
/// long-string overflow driver).
fn place_label(rng: &mut StdRng, i: usize) -> Json {
    if rng.gen_bool(0.05) {
        let filler = "lorem ipsum dolor sit amet ".repeat(rng.gen_range(3..10));
        Json::str(format!("Long Label {i} {filler}@en"))
    } else if rng.gen_bool(0.8) {
        Json::str(format!("Label {i}@en"))
    } else {
        Json::str(format!("Etikett {i}@de"))
    }
}

// ---------------------------------------------------------------------------
// Query sets
// ---------------------------------------------------------------------------

/// One adjacency micro-benchmark query (a row of Table 1).
#[derive(Debug, Clone)]
pub struct AdjacencyQuery {
    /// Query id (1-11, matching Table 1).
    pub id: usize,
    /// Number of hops.
    pub hops: usize,
    /// Start-set size (scaled).
    pub input_size: usize,
    /// Gremlin text.
    pub gremlin: String,
    /// Edge label traversed.
    pub label: &'static str,
}

/// The 11 queries of Table 1, scaled to the generated graph. Queries 1-6
/// traverse `isPartOf` from start sets selected by the `bucket` attribute;
/// queries 7-11 traverse `team` relations ignoring direction, starting from
/// single players / small player sets.
pub fn adjacency_queries(g: &DbpediaGraph) -> Vec<AdjacencyQuery> {
    let places = g.config.places;
    let large = places; // Table 1's 16000 ≙ "all places"
    let scaled = |n: usize| n.min(places);
    // (hops, input size, label) per Table 1.
    let specs: [(usize, usize, &str); 11] = [
        (3, large, "isPartOf"),
        (6, large, "isPartOf"),
        (9, large, "isPartOf"),
        (5, scaled(100), "isPartOf"),
        (5, scaled(1000), "isPartOf"),
        (5, scaled(large / 2), "isPartOf"),
        (4, 1, "team"),
        (6, 1, "team"),
        (8, 1, "team"),
        (6, 10, "team"),
        (6, 100, "team"),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, &(hops, input, label))| {
            let gremlin = if label == "isPartOf" {
                let mut q = format!("g.V.interval('bucket', 0, {input})");
                for _ in 0..hops {
                    q.push_str(".out('isPartOf')");
                }
                q.push_str(".count()");
                q
            } else {
                // Team traversals: both('team'), from 1..k players.
                let (p0, _) = g.ids.players;
                let mut q = if input == 1 {
                    format!("g.v({p0})")
                } else {
                    format!("g.V.has('wikiPageID', T.lt, {})", 20_000_000 + input as i64)
                };
                for _ in 0..hops {
                    q.push_str(".both('team')");
                }
                q.push_str(".count()");
                q
            };
            AdjacencyQuery {
                id: i + 1,
                hops,
                input_size: input,
                gremlin,
                label,
            }
        })
        .collect()
}

/// One vertex-attribute lookup query (a row of Table 2).
#[derive(Debug, Clone)]
pub struct AttributeQuery {
    /// Query id (1-16, matching Table 2).
    pub id: usize,
    /// Attribute key.
    pub key: &'static str,
    /// The filter, in Table 2's terms.
    pub filter: AttrFilter,
}

/// Table 2 filter kinds.
#[derive(Debug, Clone)]
pub enum AttrFilter {
    /// `not null` — existence only.
    NotNull,
    /// `LIKE pattern` string match.
    Like(&'static str),
    /// Numeric equality.
    NumericEq(f64),
    /// Integer equality (the `wikiPageID` lookup).
    IntEq(i64),
    /// String equality.
    StrEq(&'static str),
}

/// The 16 queries of Table 2.
pub fn attribute_queries() -> Vec<AttributeQuery> {
    use AttrFilter::*;
    let rows: [(&'static str, AttrFilter); 16] = [
        ("national", NotNull),
        ("national", Like("%en")),
        ("genre", NotNull),
        ("genre", Like("%en")),
        ("title", NotNull),
        ("title", Like("%en")),
        ("label", NotNull),
        ("label", Like("%en")),
        ("regionAffiliation", NotNull),
        ("regionAffiliation", StrEq("1958")),
        ("populationDensitySqMi", NotNull),
        ("populationDensitySqMi", NumericEq(100.0)),
        ("longm", NotNull),
        ("longm", NumericEq(1.0)),
        ("wikiPageID", NotNull),
        ("wikiPageID", IntEq(20_000_001)),
    ];
    rows.into_iter()
        .enumerate()
        .map(|(i, (key, filter))| AttributeQuery {
            id: i + 1,
            key,
            filter,
        })
        .collect()
}

/// The 20 DBpedia benchmark queries (converted-SPARQL style, Appendix B) as
/// Gremlin, adapted to the generated schema. Query 15 is the deliberately
/// heavy one the paper reports separately.
pub fn benchmark_queries(g: &DbpediaGraph) -> Vec<String> {
    let (p0, p1) = g.ids.players;
    let mid_player = (p0 + p1) / 2;
    let (e0, _) = g.ids.entities;
    let deep = *g.ids.deep_places.first().expect("deep chain");
    vec![
        // 1: typed lookup + attribute filter + 1 hop (Table 9's shape).
        format!("g.V('uri','{CLASS_PERSON}').in('type').has('national').out('team').count()"),
        // 2: the paper's dq2 analogue: selective label + traverse + back.
        format!("g.V('uri','{CLASS_TEAM}').in('type').has('title','FC Team 1').in('team').count()"),
        // 3: star lookup on a single resource.
        format!("g.v({mid_player}).out('team').values('title')"),
        // 4: two-hop with dedup.
        format!("g.v({mid_player}).out('team').in('team').dedup().count()"),
        // 5: typed scan with numeric filter.
        format!("g.V('uri','{CLASS_PLACE}').in('type').has('populationDensitySqMi', T.gt, 5000).count()"),
        // 6: interval + traversal.
        "g.V.interval('bucket', 0, 50).out('isPartOf').out('isPartOf').dedup().count()".to_string(),
        // 7: union via copySplit.
        format!("g.v({mid_player}).copySplit(_().out('team'), _().out('type')).fairMerge.count()"),
        // 8: filter closure with conjunction.
        "g.V.filter{it.kind == 'place' && it.longm > 100}.count()".to_string(),
        // 9: existence + like-style contains.
        "g.V.has('genre').filter{it.genre.contains('en')}.count()".to_string(),
        // 10: and() branch intersection.
        "g.V.and(_().out('team'), _().out('type')).count()".to_string(),
        // 11: path query over containment.
        format!("g.v({deep}).out('isPartOf').out('isPartOf').out('isPartOf').path"),
        // 12: edges by property (provenance).
        "g.E.has('section', 'History').count()".to_string(),
        // 13: label projection.
        format!("g.v({deep}).outE.label.dedup()"),
        // 14: back() re-selection.
        "g.V.as('x').out('team').has('title','FC Team 2').back('x').values('label')".to_string(),
        // 15: the heavy query — full scan, two unlabeled hops, dedup.
        "g.V.out.out.dedup().count()".to_string(),
        // 16: aggregate/except neighborhood difference.
        format!("g.v({mid_player}).aggregate(x).both('team').both('team').except(x).dedup().count()"),
        // 17: multi-label traversal.
        format!("g.v({e0}).out('http://dbpedia.org/property/p0','http://dbpedia.org/property/p1').count()"),
        // 18: hasNot filter.
        format!("g.V('uri','{CLASS_PLACE}').in('type').hasNot('populationDensitySqMi').count()"),
        // 19: range slice after traversal.
        "g.V.interval('bucket', 0, 200).out('isPartOf')[0..49].count()".to_string(),
        // 20: nested loop (fixed depth) over containment.
        format!("g.v({deep}).as('s').out('isPartOf').loop('s'){{it.loops < 4}}.dedup().count()"),
    ]
}

/// The 11 long-path queries (Figure 8b / Figure 6's `lq*`): the Table 1
/// traversals ending in `count()`.
pub fn path_queries(g: &DbpediaGraph) -> Vec<String> {
    adjacency_queries(g)
        .into_iter()
        .map(|q| q.gremlin)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgraph_gremlin::{interp, parse_query, MemGraph};

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&DbpediaConfig::tiny());
        let b = generate(&DbpediaConfig::tiny());
        assert_eq!(a.data.vertex_count(), b.data.vertex_count());
        assert_eq!(a.data.edge_count(), b.data.edge_count());
        assert_eq!(a.data.vertices[5].1, b.data.vertices[5].1);
        assert_eq!(a.data.edges[10], b.data.edges[10]);
    }

    #[test]
    fn structure_is_sound() {
        let g = generate(&DbpediaConfig::tiny());
        let n = g.data.vertex_count() as i64;
        // Every edge endpoint is a valid vertex.
        for (_, src, dst, _, _) in &g.data.edges {
            assert!(*src >= 1 && *src <= n);
            assert!(*dst >= 1 && *dst <= n);
        }
        // Id ranges partition the space (classes at the end).
        assert_eq!(g.ids.places.0, 1);
        assert_eq!(g.ids.classes.2, n);
        // isPartOf chain from the deepest place reaches 3+ hops.
        let mem = MemGraph::new();
        g.data.load_blueprints(&mem).unwrap();
        let deep = g.ids.deep_places[0];
        let q = parse_query(&format!(
            "g.v({deep}).out('isPartOf').out('isPartOf').out('isPartOf')"
        ))
        .unwrap();
        assert!(!interp::eval(&mem, &q).unwrap().is_empty());
    }

    #[test]
    fn table1_queries_run_and_scale() {
        let g = generate(&DbpediaConfig::tiny());
        let mem = MemGraph::new();
        g.data.load_blueprints(&mem).unwrap();
        let queries = adjacency_queries(&g);
        assert_eq!(queries.len(), 11);
        for q in &queries[..3] {
            let p = parse_query(&q.gremlin).unwrap();
            let out = interp::eval(&mem, &p).unwrap();
            assert_eq!(out.len(), 1, "count query {}", q.id);
        }
        // Longer hops over the same input reach at least as shallow a set.
        let c3 = eval_count(&mem, &queries[0].gremlin);
        assert!(c3 > 0, "3-hop traversal from all places must be non-empty");
    }

    fn eval_count(mem: &MemGraph, q: &str) -> i64 {
        let p = parse_query(q).unwrap();
        interp::eval(mem, &p).unwrap()[0]
            .to_json()
            .as_i64()
            .unwrap()
    }

    #[test]
    fn attribute_value_shapes_exist() {
        let g = generate(&DbpediaConfig::tiny());
        let count_key = |key: &str| {
            g.data
                .vertices
                .iter()
                .filter(|(_, props)| props.iter().any(|(k, _)| k == key))
                .count()
        };
        for key in ["national", "genre", "title", "label", "wikiPageID"] {
            assert!(count_key(key) > 0, "missing attribute {key}");
        }
        // wikiPageID 20_000_001 (query 16's target) exists exactly once.
        let hits = g
            .data
            .vertices
            .iter()
            .filter(|(_, props)| {
                props
                    .iter()
                    .any(|(k, v)| k == "wikiPageID" && v.as_i64() == Some(20_000_001))
            })
            .count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn benchmark_queries_parse_and_run() {
        let g = generate(&DbpediaConfig::tiny());
        let mem = MemGraph::new();
        g.data.load_blueprints(&mem).unwrap();
        let queries = benchmark_queries(&g);
        assert_eq!(queries.len(), 20);
        for (i, q) in queries.iter().enumerate() {
            let p =
                parse_query(q).unwrap_or_else(|e| panic!("query {} failed to parse: {e}", i + 1));
            interp::eval(&mem, &p).unwrap_or_else(|e| panic!("query {} failed: {e}", i + 1));
        }
    }

    #[test]
    fn scaled_config() {
        let c = DbpediaConfig::tiny().scaled(2.0);
        assert_eq!(c.places, 240);
        assert_eq!(c.teams, 20);
    }
}
