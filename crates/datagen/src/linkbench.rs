//! LinkBench-style dataset and operation mix (§5.2, Tables 6/7).
//!
//! LinkBench models Facebook's social graph: *objects* (nodes with `type`,
//! `version`, `time`, `data`) and *associations* (typed, timestamped links
//! with `visibility` and a payload). Out-degrees follow a power law; the
//! access pattern is skewed toward hot nodes. The operation mix is the one
//! reported in Table 6 (50.7% `get_link_list`, 12.9% `get_node`, ...).

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlgraph_json::Json;

/// Association type labels (LinkBench uses a small set of integer types).
pub const ASSOC_TYPES: [&str; 3] = ["assoc_0", "assoc_1", "assoc_2"];

/// Dataset shape parameters.
#[derive(Debug, Clone)]
pub struct LinkBenchConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of objects (nodes).
    pub nodes: usize,
    /// Mean out-degree (degrees are power-law distributed around this).
    pub mean_degree: f64,
    /// Payload size in bytes.
    pub payload: usize,
}

impl Default for LinkBenchConfig {
    fn default() -> Self {
        LinkBenchConfig {
            seed: 1,
            nodes: 10_000,
            mean_degree: 4.0,
            payload: 32,
        }
    }
}

impl LinkBenchConfig {
    /// Config with `nodes` nodes, everything else default.
    pub fn with_nodes(nodes: usize) -> LinkBenchConfig {
        LinkBenchConfig {
            nodes,
            ..LinkBenchConfig::default()
        }
    }
}

/// Generate the initial social graph.
pub fn generate(config: &LinkBenchConfig) -> Dataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut data = Dataset::default();
    let payload: String = "x".repeat(config.payload);
    for i in 1..=config.nodes as i64 {
        data.vertices.push((
            i,
            vec![
                ("type".into(), Json::int(rng.gen_range(0..5))),
                ("version".into(), Json::int(1)),
                ("time".into(), Json::int(1_400_000_000 + i)),
                ("data".into(), Json::str(&payload)),
            ],
        ));
    }
    let mut eid = 0i64;
    for src in 1..=config.nodes as i64 {
        // Power-law out-degree: degree = mean * u^(-0.5) clamped, where u is
        // uniform — a heavy tail with a few supernodes.
        let u: f64 = rng.gen_range(0.01..1.0);
        let degree = ((config.mean_degree * u.powf(-0.5) * 0.5) as usize).min(config.nodes / 2);
        for _ in 0..degree {
            let dst = zipf_target(&mut rng, config.nodes);
            eid += 1;
            data.edges.push((
                eid,
                src,
                dst,
                ASSOC_TYPES[rng.gen_range(0..ASSOC_TYPES.len())].to_string(),
                vec![
                    ("visibility".into(), Json::int(1)),
                    ("timestamp".into(), Json::int(1_400_000_000 + eid)),
                    ("data".into(), Json::str("assoc-payload")),
                ],
            ));
        }
    }
    data
}

/// Skewed target choice: hot nodes (small ids) attract most links.
fn zipf_target(rng: &mut StdRng, nodes: usize) -> i64 {
    let u: f64 = rng.gen_range(0.0..1.0f64);
    // Approximate zipf via the inverse-power transform.
    let idx = ((nodes as f64).powf(u) as usize).min(nodes - 1);
    (idx + 1) as i64
}

/// One LinkBench operation. Percentages are the Table 6 distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// 2.6% — create a node.
    AddNode {
        /// Initial properties.
        props: Vec<(String, Json)>,
    },
    /// 7.4% — bump a node's version/payload.
    UpdateNode {
        /// Target node.
        id: i64,
    },
    /// 1.0% — delete a node (and incident links).
    DeleteNode {
        /// Target node.
        id: i64,
    },
    /// 12.9% — read a node's record.
    GetNode {
        /// Target node.
        id: i64,
    },
    /// 9.0% — add a link.
    AddLink {
        /// Source.
        src: i64,
        /// Destination.
        dst: i64,
        /// Association type.
        ltype: &'static str,
    },
    /// 3.0% — delete a link if present.
    DeleteLink {
        /// Source.
        src: i64,
        /// Destination.
        dst: i64,
        /// Association type.
        ltype: &'static str,
    },
    /// 8.0% — update a link's attributes if present.
    UpdateLink {
        /// Source.
        src: i64,
        /// Destination.
        dst: i64,
        /// Association type.
        ltype: &'static str,
    },
    /// 4.9% — count a node's links of one type.
    CountLink {
        /// Source.
        id: i64,
        /// Association type.
        ltype: &'static str,
    },
    /// 0.5% — check several (src, dst) pairs.
    MultigetLink {
        /// Source.
        src: i64,
        /// Candidate destinations.
        dsts: Vec<i64>,
        /// Association type.
        ltype: &'static str,
    },
    /// 50.7% — list a node's links of one type with their attributes.
    GetLinkList {
        /// Source.
        id: i64,
        /// Association type.
        ltype: &'static str,
    },
}

impl Op {
    /// Short operation name matching Table 6 row labels.
    pub fn name(&self) -> &'static str {
        match self {
            Op::AddNode { .. } => "add node",
            Op::UpdateNode { .. } => "update node",
            Op::DeleteNode { .. } => "delete node",
            Op::GetNode { .. } => "get node",
            Op::AddLink { .. } => "add link",
            Op::DeleteLink { .. } => "delete link",
            Op::UpdateLink { .. } => "update link",
            Op::CountLink { .. } => "count link",
            Op::MultigetLink { .. } => "multiget link",
            Op::GetLinkList { .. } => "get link list",
        }
    }

    /// True for operations that modify the graph.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Op::AddNode { .. }
                | Op::UpdateNode { .. }
                | Op::DeleteNode { .. }
                | Op::AddLink { .. }
                | Op::DeleteLink { .. }
                | Op::UpdateLink { .. }
        )
    }
}

/// Table 6 operation mix in permille: (cumulative bound, constructor tag).
const MIX: [(u32, u8); 10] = [
    (26, 0),   // add node      2.6%
    (100, 1),  // update node   7.4%
    (110, 2),  // delete node   1.0%
    (239, 3),  // get node     12.9%
    (329, 4),  // add link      9.0%
    (359, 5),  // delete link   3.0%
    (439, 6),  // update link   8.0%
    (488, 7),  // count link    4.9%
    (493, 8),  // multiget      0.5%
    (1000, 9), // get link list 50.7%
];

/// Deterministic operation stream for one requester.
#[derive(Debug)]
pub struct Workload {
    rng: StdRng,
    nodes: usize,
    payload: String,
}

impl Workload {
    /// A stream seeded per `(benchmark seed, requester index)`.
    pub fn new(seed: u64, requester: u64, nodes: usize, payload: usize) -> Workload {
        Workload {
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(requester)),
            nodes,
            payload: "x".repeat(payload),
        }
    }

    fn node(&mut self) -> i64 {
        zipf_target(&mut self.rng, self.nodes)
    }

    fn ltype(&mut self) -> &'static str {
        ASSOC_TYPES[self.rng.gen_range(0..ASSOC_TYPES.len())]
    }

    /// Next operation with the read/write balance pinned: a write with
    /// probability `write_permille`/1000, a read otherwise, while the
    /// relative frequencies *within* each class still follow the Table 6
    /// mix (rejection-sampled, so the stream stays deterministic per
    /// seed). Used by the mixed-throughput benchmark to sweep read/write
    /// ratios independently of the paper's fixed mix.
    pub fn next_op_mixed(&mut self, write_permille: u32) -> Op {
        let want_write = self.rng.gen_range(0..1000u32) < write_permille;
        loop {
            let op = self.next_op();
            if op.is_write() == want_write {
                return op;
            }
        }
    }

    /// Next operation, drawn from the Table 6 mix.
    pub fn next_op(&mut self) -> Op {
        let roll = self.rng.gen_range(0..1000u32);
        let tag = MIX
            .iter()
            .find(|(bound, _)| roll < *bound)
            .map(|(_, t)| *t)
            .unwrap_or(9);
        match tag {
            0 => Op::AddNode {
                props: vec![
                    ("type".into(), Json::int(self.rng.gen_range(0..5))),
                    ("version".into(), Json::int(1)),
                    ("time".into(), Json::int(1_500_000_000)),
                    ("data".into(), Json::str(&self.payload)),
                ],
            },
            1 => Op::UpdateNode { id: self.node() },
            // Node deletes draw uniformly, not from the hot set: LinkBench
            // uses separate per-operation access distributions, and at
            // laptop scale a zipf-hot delete would always hit a supernode.
            2 => Op::DeleteNode {
                id: self.rng.gen_range(1..=self.nodes as i64),
            },
            3 => Op::GetNode { id: self.node() },
            4 => Op::AddLink {
                src: self.node(),
                dst: self.node(),
                ltype: self.ltype(),
            },
            5 => Op::DeleteLink {
                src: self.node(),
                dst: self.node(),
                ltype: self.ltype(),
            },
            6 => Op::UpdateLink {
                src: self.node(),
                dst: self.node(),
                ltype: self.ltype(),
            },
            7 => Op::CountLink {
                id: self.node(),
                ltype: self.ltype(),
            },
            8 => Op::MultigetLink {
                src: self.node(),
                dsts: (0..3).map(|_| self.node()).collect(),
                ltype: self.ltype(),
            },
            _ => Op::GetLinkList {
                id: self.node(),
                ltype: self.ltype(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn dataset_shape() {
        let config = LinkBenchConfig {
            nodes: 500,
            ..LinkBenchConfig::default()
        };
        let data = generate(&config);
        assert_eq!(data.vertex_count(), 500);
        assert!(
            data.edge_count() > 500,
            "mean degree ~4 ⇒ well over 1 edge/node"
        );
        // Degrees are skewed: the max out-degree well above the mean.
        let mut out_deg: HashMap<i64, usize> = HashMap::new();
        for (_, src, ..) in &data.edges {
            *out_deg.entry(*src).or_default() += 1;
        }
        let max = out_deg.values().copied().max().unwrap();
        let mean = data.edge_count() as f64 / 500.0;
        assert!(max as f64 > 3.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn generation_is_deterministic() {
        let c = LinkBenchConfig {
            nodes: 200,
            ..LinkBenchConfig::default()
        };
        let a = generate(&c);
        let b = generate(&c);
        assert_eq!(a.edges.len(), b.edges.len());
        assert_eq!(a.edges[7], b.edges[7]);
    }

    #[test]
    fn mix_matches_table6() {
        let mut wl = Workload::new(9, 0, 1000, 16);
        let mut counts: HashMap<&'static str, usize> = HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(wl.next_op().name()).or_default() += 1;
        }
        let pct = |name: &str| 100.0 * counts.get(name).copied().unwrap_or(0) as f64 / n as f64;
        assert!((pct("get link list") - 50.7).abs() < 1.0);
        assert!((pct("get node") - 12.9).abs() < 1.0);
        assert!((pct("add link") - 9.0) < 1.0);
        assert!((pct("delete node") - 1.0).abs() < 0.5);
        assert!((pct("multiget link") - 0.5).abs() < 0.3);
    }

    #[test]
    fn workload_streams_are_deterministic_per_requester() {
        let ops_a: Vec<String> = {
            let mut w = Workload::new(3, 1, 100, 8);
            (0..50).map(|_| format!("{:?}", w.next_op())).collect()
        };
        let ops_b: Vec<String> = {
            let mut w = Workload::new(3, 1, 100, 8);
            (0..50).map(|_| format!("{:?}", w.next_op())).collect()
        };
        let ops_c: Vec<String> = {
            let mut w = Workload::new(3, 2, 100, 8);
            (0..50).map(|_| format!("{:?}", w.next_op())).collect()
        };
        assert_eq!(ops_a, ops_b);
        assert_ne!(ops_a, ops_c);
    }

    #[test]
    fn zipf_targets_prefer_hot_nodes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0;
        let n = 10_000;
        for _ in 0..n {
            if zipf_target(&mut rng, 1000) <= 100 {
                low += 1;
            }
        }
        // Far more than the uniform 10% land in the first decile.
        assert!(low > n / 4, "only {low}/{n} hit the hot set");
    }
}
