//! # sqlgraph-datagen — datasets and workloads for the SQLGraph evaluation
//!
//! The paper evaluates on two converted benchmarks that cannot be
//! redistributed at their original scale: DBpedia 3.8 (a 300M+ edge RDF
//! dump converted to a property graph, §3.1) and LinkBench (Facebook's
//! social-graph benchmark, §5.2). This crate generates scaled synthetic
//! graphs that preserve the *structural characteristics* those experiments
//! exercise, plus the exact query and operation mixes:
//!
//! * [`dbpedia`] — a knowledge-graph generator with `isPartOf` containment
//!   trees, player↔team bipartite relations, a large skewed edge-label
//!   vocabulary, datatype properties (including long strings and
//!   multi-valued keys), and provenance edge attributes; together with the
//!   Table 1 traversal queries, Table 2 attribute queries, and the
//!   DBpedia/SPARQL-derived Gremlin benchmark query set.
//! * [`linkbench`] — LinkBench's object/association model with power-law
//!   degrees and the Table 6 operation mix.
//!
//! All generation is seeded and deterministic.

pub mod dbpedia;
pub mod linkbench;

use sqlgraph_gremlin::{Blueprints, GraphResult};
use sqlgraph_json::Json;

/// One vertex: `(vertex id, properties)`; ids are dense starting at 1.
pub type VertexSpec = (i64, Vec<(String, Json)>);
/// One edge: `(edge id, source, target, label, properties)`.
pub type EdgeSpec = (i64, i64, i64, String, Vec<(String, Json)>);

/// A generated property graph, store-agnostic.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Vertices.
    pub vertices: Vec<VertexSpec>,
    /// Edges.
    pub edges: Vec<EdgeSpec>,
}

impl Dataset {
    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Split into `n` partition datasets by `hash(vid)` (the store's VID
    /// partitioner, passed in so this crate stays placement-agnostic). A
    /// vertex goes to its owner's partition; an edge goes to its *source's*
    /// partition and, when different, is duplicated into its *target's* —
    /// each side of a cross-partition edge needs the edge to build its
    /// local adjacency half.
    pub fn partition(&self, n: usize, hash: impl Fn(i64) -> usize) -> Vec<Dataset> {
        let mut parts = vec![Dataset::default(); n.max(1)];
        for v in &self.vertices {
            parts[hash(v.0)].vertices.push(v.clone());
        }
        for e in &self.edges {
            let (src_part, dst_part) = (hash(e.1), hash(e.2));
            parts[src_part].edges.push(e.clone());
            if dst_part != src_part {
                parts[dst_part].edges.push(e.clone());
            }
        }
        parts
    }

    /// Load into any Blueprints store, asserting the store assigns the same
    /// dense ids (true for all stores in this workspace when fresh).
    pub fn load_blueprints<G: Blueprints + ?Sized>(&self, g: &G) -> GraphResult<()> {
        for (vid, props) in &self.vertices {
            let got = g.add_vertex(props)?;
            debug_assert_eq!(got, *vid, "store must assign dense vertex ids");
        }
        for (eid, src, dst, label, props) in &self.edges {
            let got = g.add_edge(*src, *dst, label, props)?;
            debug_assert_eq!(got, *eid, "store must assign dense edge ids");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlgraph_gremlin::MemGraph;

    #[test]
    fn partition_covers_vertices_once_and_edges_per_endpoint() {
        let mut data = Dataset::default();
        for vid in 1..=10i64 {
            data.vertices.push((vid, vec![]));
        }
        // Edge 1 is intra-partition under `vid % 3`, edge 2 crosses.
        data.edges.push((1, 3, 6, "x".into(), vec![]));
        data.edges.push((2, 1, 2, "y".into(), vec![]));
        let parts = data.partition(3, |vid| (vid % 3) as usize);
        assert_eq!(parts.len(), 3);
        let vids: usize = parts.iter().map(|p| p.vertex_count()).sum();
        assert_eq!(vids, 10, "every vertex in exactly one partition");
        let edges: usize = parts.iter().map(|p| p.edge_count()).sum();
        assert_eq!(edges, 3, "cross-partition edge duplicated to both sides");
        assert!(parts[0].edges.iter().any(|e| e.0 == 1));
        assert!(parts[1].edges.iter().any(|e| e.0 == 2));
        assert!(parts[2].edges.iter().any(|e| e.0 == 2));
    }

    #[test]
    fn load_into_memgraph() {
        let mut data = Dataset::default();
        data.vertices.push((1, vec![("a".into(), Json::int(1))]));
        data.vertices.push((2, vec![]));
        data.edges.push((1, 1, 2, "x".into(), vec![]));
        let g = MemGraph::new();
        data.load_blueprints(&g).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }
}
