//! From-scratch JSON support for SQLGraph.
//!
//! The SQLGraph schema (SIGMOD 2015) stores vertex and edge attributes as
//! JSON documents inside relational tables (the `VA` and `EA` tables). The
//! behaviour under study — "attribute access is a key-value lookup, one
//! probe into a parsed document" — is implemented here rather than borrowed
//! from an external crate, because the JSON storage path is itself part of
//! the system being reproduced.
//!
//! The crate provides:
//!
//! * [`Json`] — an owned JSON value with insertion-ordered objects,
//! * [`parse`] — a recursive-descent parser with full escape handling,
//! * [`Json::to_string`] (via [`std::fmt::Display`]) — a compact serializer
//!   whose output round-trips through [`parse`],
//! * key/path accessors used by the relational engine's `JSON_VAL` function.
//!
//! # Example
//!
//! ```
//! use sqlgraph_json::{parse, Json};
//!
//! let doc = parse(r#"{ "name": "marko", "age": 29 }"#).unwrap();
//! assert_eq!(doc.get("name").and_then(Json::as_str), Some("marko"));
//! assert_eq!(doc.get("age").and_then(Json::as_i64), Some(29));
//! let text = doc.to_string();
//! assert_eq!(parse(&text).unwrap(), doc);
//! ```

mod number;
mod parse;
mod ser;
mod value;

pub use number::Number;
pub use parse::{parse, ParseError};
pub use value::{Json, JsonObject};
