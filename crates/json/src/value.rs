//! The owned JSON value model.

use crate::number::Number;
use std::cmp::Ordering;

/// An object: insertion-ordered key/value pairs.
///
/// Property graph attribute maps are small (a handful of keys), so a linear
/// vector beats a hash map on both footprint and probe cost, and preserves
/// the order attributes were written in — which keeps serialized documents
/// stable for tests and on-disk comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct JsonObject {
    entries: Vec<(String, Json)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the object has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable value for `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Insert or replace `key`, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Json) -> Option<Json> {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Remove `key`, returning its value if present. Order of the remaining
    /// entries is preserved.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True if `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// Iterator over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Json)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterator over keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

impl FromIterator<(String, Json)> for JsonObject {
    fn from_iter<T: IntoIterator<Item = (String, Json)>>(iter: T) -> Self {
        let mut obj = JsonObject::new();
        for (k, v) in iter {
            obj.insert(k, v);
        }
        obj
    }
}

/// An owned JSON value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Json {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (integer-ness preserved; see [`Number`]).
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(JsonObject),
}

impl Json {
    /// Build an integer value.
    pub fn int(v: i64) -> Json {
        Json::Num(Number::Int(v))
    }

    /// Build a float value.
    pub fn float(v: f64) -> Json {
        Json::Num(Number::Float(v))
    }

    /// Build a string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// `true` for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Value as `i64` if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Value as `f64` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Value as `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as an object, if this is one.
    pub fn as_object(&self) -> Option<&JsonObject> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutably borrow as an object, if this is one.
    pub fn as_object_mut(&mut self) -> Option<&mut JsonObject> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object member access: `doc.get("name")`. `None` on non-objects and
    /// missing keys — the shape `JSON_VAL` needs.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Array element access.
    pub fn get_index(&self, idx: usize) -> Option<&Json> {
        self.as_array().and_then(|a| a.get(idx))
    }

    /// Deep access along a `/`-free key path, e.g. `["a", "b"]`.
    pub fn get_path<'a, I>(&self, path: I) -> Option<&Json>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut cur = self;
        for key in path {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// A stable total order across all JSON values, used when JSON documents
    /// participate in SQL `ORDER BY`/`DISTINCT`. Order by type class first
    /// (null < bool < number < string < array < object), then by content.
    pub fn total_cmp(&self, other: &Json) -> Ordering {
        fn rank(j: &Json) -> u8 {
            match j {
                Json::Null => 0,
                Json::Bool(_) => 1,
                Json::Num(_) => 2,
                Json::Str(_) => 3,
                Json::Array(_) => 4,
                Json::Object(_) => 5,
            }
        }
        match (self, other) {
            (Json::Bool(a), Json::Bool(b)) => a.cmp(b),
            (Json::Num(a), Json::Num(b)) => a.cmp_num(b),
            (Json::Str(a), Json::Str(b)) => a.cmp(b),
            (Json::Array(a), Json::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.total_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Json::Object(a), Json::Object(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let o = ka.cmp(kb).then_with(|| va.total_cmp(vb));
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::str(v)
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_insert_get_remove() {
        let mut obj = JsonObject::new();
        assert!(obj.insert("a", Json::int(1)).is_none());
        assert!(obj.insert("b", Json::str("x")).is_none());
        assert_eq!(obj.insert("a", Json::int(2)), Some(Json::int(1)));
        assert_eq!(obj.get("a"), Some(&Json::int(2)));
        assert_eq!(obj.len(), 2);
        assert_eq!(obj.remove("a"), Some(Json::int(2)));
        assert!(!obj.contains_key("a"));
        assert_eq!(obj.len(), 1);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut obj = JsonObject::new();
        obj.insert("z", Json::Null);
        obj.insert("a", Json::Null);
        obj.insert("m", Json::Null);
        let keys: Vec<_> = obj.keys().collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn deep_path_access() {
        let mut inner = JsonObject::new();
        inner.insert("age", Json::int(29));
        let mut outer = JsonObject::new();
        outer.insert("who", Json::Object(inner));
        let doc = Json::Object(outer);
        assert_eq!(doc.get_path(["who", "age"]), Some(&Json::int(29)));
        assert_eq!(doc.get_path(["who", "nope"]), None);
        assert_eq!(doc.get_path(["who", "age", "deeper"]), None);
    }

    #[test]
    fn total_order_ranks_types() {
        let vals = [
            Json::Null,
            Json::Bool(false),
            Json::int(0),
            Json::str(""),
            Json::Array(vec![]),
            Json::Object(JsonObject::new()),
        ];
        for w in vals.windows(2) {
            assert_eq!(w[0].total_cmp(&w[1]), Ordering::Less);
        }
    }

    #[test]
    fn array_order_is_lexicographic() {
        let a = Json::Array(vec![Json::int(1), Json::int(2)]);
        let b = Json::Array(vec![Json::int(1), Json::int(3)]);
        let c = Json::Array(vec![Json::int(1)]);
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(c.total_cmp(&a), Ordering::Less);
    }
}
