//! Recursive-descent JSON parser.
//!
//! Accepts RFC 8259 JSON. Duplicate object keys keep the last value (the
//! behaviour of most engines, and what the attribute-update code relies on).

use crate::number::Number;
use crate::value::{Json, JsonObject};
use std::fmt;

/// Error produced by [`parse`], carrying a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document. Trailing whitespace is allowed; any other
/// trailing content is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting depth cap: protects the parser against stack exhaustion on
/// adversarial inputs (attributes can come from untrusted clients).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword '{kw}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Json::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut obj = JsonObject::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            obj.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
        self.depth -= 1;
        Ok(Json::Object(obj))
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
        self.depth -= 1;
        Ok(Json::Array(items))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        // Fast path: copy runs of plain bytes without per-byte pushes.
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safe: the input is a &str, and we only stopped at ASCII
                // boundaries, so the run is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 inside string"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{0008}'),
            Some(b'f') => out.push('\u{000C}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a low surrogate must follow.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("unexpected low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(ch);
            }
            _ => return Err(self.err("invalid escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit in \\u escape"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Num(Number::Int(v)));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err("number out of representable range"))?;
        Ok(Json::Num(Number::Float(v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::int(42));
        assert_eq!(parse("-7").unwrap(), Json::int(-7));
        assert_eq!(parse("2.5").unwrap(), Json::float(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::float(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::str("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": null}, "x"], "c": {"d": false}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().get_index(0), Some(&Json::int(1)));
        assert_eq!(
            doc.get("a").unwrap().get_index(1).unwrap().get("b"),
            Some(&Json::Null)
        );
        assert_eq!(doc.get_path(["c", "d"]), Some(&Json::Bool(false)));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\n\tA""#).unwrap(),
            Json::str("a\"b\\c/d\n\tA")
        );
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(parse(r#""😀""#).unwrap(), Json::str("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let doc = parse(r#"{"k": 1, "k": 2}"#).unwrap();
        assert_eq!(doc.get("k"), Some(&Json::int(2)));
        assert_eq!(doc.as_object().unwrap().len(), 1);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "", "{", "[", "\"", "{]", "[1,]", "{\"a\":}", "tru", "01", "1.", "1e", "--1", "nullx",
            "[1] []",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_control_chars_in_strings() {
        assert!(parse("\"a\u{0001}b\"").is_err());
    }

    #[test]
    fn big_integer_falls_back_to_float() {
        let doc = parse("99999999999999999999").unwrap();
        assert!(matches!(doc, Json::Num(Number::Float(_))));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_everywhere() {
        let doc = parse(" \n\t { \"a\" : [ 1 , 2 ] } \r\n ").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
