//! JSON numbers.
//!
//! JSON does not distinguish integers from floats, but the SQLGraph engine
//! does (`INTEGER` vs `DOUBLE` columns, casts in `JSON_VAL`). `Number` keeps
//! the distinction observed in the source text: `29` parses as an integer,
//! `29.0` as a double, so equality and ordering match SQL semantics.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A JSON number, preserving whether the literal was integral.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A number written without a fraction or exponent, within `i64` range.
    Int(i64),
    /// Any other finite number.
    Float(f64),
}

impl Number {
    /// The value as `i64` if it is integral and in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::Int(v) => Some(v),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (always possible; integers may lose precision).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::Int(v) => v as f64,
            Number::Float(f) => f,
        }
    }

    /// True if the number was written as an integer literal.
    pub fn is_int(self) -> bool {
        matches!(self, Number::Int(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_num(other) == Ordering::Equal
    }
}

impl Eq for Number {}

impl Number {
    /// Total numeric ordering: `Int` and `Float` compare by value; NaN sorts
    /// greater than every other value so the order is total.
    pub fn cmp_num(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a.cmp(b),
            (a, b) => {
                let (x, y) = (a.as_f64(), b.as_f64());
                match x.partial_cmp(&y) {
                    Some(o) => o,
                    None => y.is_nan().cmp(&x.is_nan()).reverse(),
                }
            }
        }
    }
}

impl PartialOrd for Number {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Number {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_num(other)
    }
}

impl Hash for Number {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Numbers that compare equal must hash equal: hash the f64 bit
        // pattern of the canonical value, folding -0.0 into 0.0.
        match self.as_i64() {
            Some(i) => {
                state.write_u8(0);
                i.hash(state);
            }
            None => {
                let f = self.as_f64();
                let f = if f == 0.0 { 0.0 } else { f };
                state.write_u8(1);
                f.to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    // Keep the float-ness visible so round trips preserve type.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        Number::Int(v)
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(n: Number) -> u64 {
        let mut h = DefaultHasher::new();
        n.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality() {
        assert_eq!(Number::Int(3), Number::Float(3.0));
        assert_ne!(Number::Int(3), Number::Float(3.5));
    }

    #[test]
    fn equal_numbers_hash_equal() {
        assert_eq!(hash_of(Number::Int(7)), hash_of(Number::Float(7.0)));
        assert_eq!(hash_of(Number::Float(0.0)), hash_of(Number::Float(-0.0)));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(Number::Int(2) < Number::Float(2.5));
        assert!(Number::Float(-1.0) < Number::Int(0));
    }

    #[test]
    fn nan_sorts_last_totally() {
        let nan = Number::Float(f64::NAN);
        assert_eq!(nan.cmp_num(&nan), Ordering::Equal);
        assert_eq!(Number::Int(1).cmp_num(&nan), Ordering::Less);
        assert_eq!(nan.cmp_num(&Number::Int(1)), Ordering::Greater);
    }

    #[test]
    fn display_preserves_intness() {
        assert_eq!(Number::Int(5).to_string(), "5");
        assert_eq!(Number::Float(5.0).to_string(), "5.0");
        assert_eq!(Number::Float(1.25).to_string(), "1.25");
    }

    #[test]
    fn as_i64_bounds() {
        assert_eq!(Number::Float(2.0).as_i64(), Some(2));
        assert_eq!(Number::Float(2.5).as_i64(), None);
        assert_eq!(Number::Float(1e300).as_i64(), None);
    }
}
