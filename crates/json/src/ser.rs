//! Compact JSON serializer. `Display` output round-trips through [`crate::parse`].

use crate::value::Json;
use std::fmt::{self, Write};

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_char(']')
            }
            Json::Object(obj) => {
                f.write_char('{')?;
                for (i, (k, v)) in obj.iter().enumerate() {
                    if i > 0 {
                        f.write_char(',')?;
                    }
                    write_escaped(f, k)?;
                    f.write_char(':')?;
                    write!(f, "{v}")?;
                }
                f.write_char('}')
            }
        }
    }
}

/// Escape a string per RFC 8259: `"` and `\` are escaped, control characters
/// use short forms where available and `\u00XX` otherwise. Non-ASCII passes
/// through as UTF-8.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_char('"')?;
    let mut last = 0;
    for (i, c) in s.char_indices() {
        let esc: Option<&str> = match c {
            '"' => Some("\\\""),
            '\\' => Some("\\\\"),
            '\n' => Some("\\n"),
            '\r' => Some("\\r"),
            '\t' => Some("\\t"),
            '\u{0008}' => Some("\\b"),
            '\u{000C}' => Some("\\f"),
            c if (c as u32) < 0x20 => None, // handled below
            _ => continue,
        };
        f.write_str(&s[last..i])?;
        match esc {
            Some(e) => f.write_str(e)?,
            None => write!(f, "\\u{:04x}", c as u32)?,
        }
        last = i + c.len_utf8();
    }
    f.write_str(&s[last..])?;
    f.write_char('"')
}

#[cfg(test)]
mod tests {
    use crate::{parse, Json, JsonObject};

    #[test]
    fn serializes_compactly() {
        let mut obj = JsonObject::new();
        obj.insert("name", Json::str("marko"));
        obj.insert("age", Json::int(29));
        let doc = Json::Object(obj);
        assert_eq!(doc.to_string(), r#"{"name":"marko","age":29}"#);
    }

    #[test]
    fn escapes_round_trip() {
        let s = "quote \" slash \\ newline \n tab \t bell \u{0007} emoji 😀";
        let doc = Json::str(s);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn float_intness_round_trips() {
        for (src, text) in [("1.0", "1.0"), ("1", "1"), ("0.5", "0.5")] {
            let doc = parse(src).unwrap();
            assert_eq!(doc.to_string(), text);
            assert_eq!(parse(&doc.to_string()).unwrap(), doc);
        }
    }

    #[test]
    fn nested_round_trip() {
        let src = r#"{"a":[1,2.5,null,true,"s"],"b":{"c":[{"d":false}]}}"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.to_string(), src);
    }
}
