//! Property-based tests: every generated JSON value survives a
//! serialize → parse round trip, and parsing is deterministic.

use proptest::prelude::*;
use sqlgraph_json::{parse, Json, JsonObject};

fn arb_json() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        any::<i64>().prop_map(Json::int),
        // Finite floats only: JSON has no NaN/Inf literals.
        prop::num::f64::NORMAL.prop_map(Json::float),
        "[ -~]{0,12}".prop_map(Json::str),
        "\\PC{0,8}".prop_map(Json::str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Json::Array),
            prop::collection::vec(("[a-z]{1,6}", inner), 0..6)
                .prop_map(|kvs| { Json::Object(kvs.into_iter().collect::<JsonObject>()) }),
        ]
    })
}

proptest! {
    #[test]
    fn roundtrip(doc in arb_json()) {
        let text = doc.to_string();
        let back = parse(&text).expect("serializer output must parse");
        prop_assert_eq!(&back, &doc);
        // Idempotence: re-serializing the parsed value gives the same text.
        prop_assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parse_never_panics(s in "\\PC{0,64}") {
        let _ = parse(&s);
    }

    #[test]
    fn total_cmp_is_total_order(a in arb_json(), b in arb_json(), c in arb_json()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        // Transitivity (for the <= relation).
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        // Reflexivity.
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }
}
