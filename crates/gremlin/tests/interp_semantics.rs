//! Interpreter semantics tests over the Figure 2a sample graph.
//!
//! Sample graph (ids assigned in insertion order):
//!   1 marko(29) -knows(7->renum:1)-> 2 vadas(27)
//!   1 -knows-> 4 josh(32)
//!   1 -created-> 3 lop(java)
//!   4 -likes-> 2
//!   4 -created-> 3
//! Edge ids: 1..=5 in the order above.

use sqlgraph_gremlin::{interp, parse, parse_query, Elem, MemGraph};
use sqlgraph_json::Json;

fn count(g: &MemGraph, q: &str) -> i64 {
    let p = parse_query(q).unwrap();
    let out = interp::eval(g, &p).unwrap();
    assert_eq!(out.len(), 1, "count query returns one element");
    out[0].to_json().as_i64().unwrap()
}

fn ids(g: &MemGraph, q: &str) -> Vec<i64> {
    let p = parse_query(q).unwrap();
    let mut out: Vec<i64> = interp::eval(g, &p)
        .unwrap()
        .into_iter()
        .filter_map(|e| e.id())
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn start_pipes() {
    let g = MemGraph::sample();
    assert_eq!(count(&g, "g.V.count()"), 4);
    assert_eq!(count(&g, "g.E.count()"), 5);
    assert_eq!(ids(&g, "g.v(1)"), [1]);
    assert_eq!(ids(&g, "g.v(99)"), Vec::<i64>::new());
    assert_eq!(ids(&g, "g.e(3)"), [3]);
}

#[test]
fn out_in_both() {
    let g = MemGraph::sample();
    assert_eq!(ids(&g, "g.v(1).out"), [2, 3, 4]);
    assert_eq!(ids(&g, "g.v(1).out('knows')"), [2, 4]);
    assert_eq!(ids(&g, "g.v(3).in"), [1, 4]);
    assert_eq!(ids(&g, "g.v(2).in('likes')"), [4]);
    assert_eq!(ids(&g, "g.v(4).both"), [1, 2, 3]);
    assert_eq!(ids(&g, "g.v(1).out('knows','created')"), [2, 3, 4]);
}

#[test]
fn edge_pipes() {
    let g = MemGraph::sample();
    assert_eq!(ids(&g, "g.v(1).outE"), [1, 2, 3]);
    assert_eq!(ids(&g, "g.v(1).outE('created')"), [3]);
    assert_eq!(ids(&g, "g.v(1).outE('knows').inV"), [2, 4]);
    assert_eq!(ids(&g, "g.e(4).outV"), [4]);
    assert_eq!(ids(&g, "g.e(4).inV"), [2]);
    assert_eq!(ids(&g, "g.e(4).bothV"), [2, 4]);
    assert_eq!(ids(&g, "g.v(2).inE"), [1, 4]);
}

#[test]
fn the_papers_example() {
    // Adapted from §4.1: vertices adjacent (either direction) to vertices
    // whose 'name' is 'marko', deduplicated, counted.
    let g = MemGraph::sample();
    assert_eq!(
        count(&g, "g.V.filter{it.name=='marko'}.both.dedup().count()"),
        3
    );
}

#[test]
fn has_variants() {
    let g = MemGraph::sample();
    assert_eq!(ids(&g, "g.V.has('age')"), [1, 2, 4]);
    assert_eq!(ids(&g, "g.V.hasNot('age')"), [3]);
    assert_eq!(ids(&g, "g.V.has('age', 29)"), [1]);
    assert_eq!(ids(&g, "g.V.has('age', T.gt, 28)"), [1, 4]);
    assert_eq!(ids(&g, "g.V.has('age', T.lte, 29)"), [1, 2]);
    assert_eq!(ids(&g, "g.V.has('name', 'lop')"), [3]);
    // GraphQuery start-filter form.
    assert_eq!(ids(&g, "g.V('name','lop')"), [3]);
}

#[test]
fn filter_closures() {
    let g = MemGraph::sample();
    assert_eq!(ids(&g, "g.V.filter{it.age > 27 && it.age < 32}"), [1]);
    assert_eq!(
        ids(&g, "g.V.filter{it.name == 'lop' || it.name == 'vadas'}"),
        [2, 3]
    );
    assert_eq!(ids(&g, "g.V.filter{!(it.age == 29)}"), [2, 3, 4]); // null != 29 is true for lop
    assert_eq!(ids(&g, "g.V.filter{it.name.contains('a')}"), [1, 2]);
}

#[test]
fn interval_and_range() {
    let g = MemGraph::sample();
    assert_eq!(ids(&g, "g.V.interval('age', 27, 32)"), [1, 2]); // [27, 32)
    let p = parse_query("g.V[0..1]").unwrap();
    assert_eq!(interp::eval(&g, &p).unwrap().len(), 2); // inclusive range
    let p = parse_query("g.V.range(1, 2)").unwrap();
    assert_eq!(interp::eval(&g, &p).unwrap().len(), 2);
}

#[test]
fn values_id_label() {
    let g = MemGraph::sample();
    let p = parse_query("g.v(1).out('knows').values('name')").unwrap();
    let mut names: Vec<String> = interp::eval(&g, &p)
        .unwrap()
        .into_iter()
        .map(|e| e.to_json().as_str().unwrap().to_string())
        .collect();
    names.sort();
    assert_eq!(names, ["josh", "vadas"]);

    let p = parse_query("g.v(1).outE.label.dedup()").unwrap();
    let mut labels: Vec<String> = interp::eval(&g, &p)
        .unwrap()
        .into_iter()
        .map(|e| e.to_json().as_str().unwrap().to_string())
        .collect();
    labels.sort();
    assert_eq!(labels, ["created", "knows"]);

    let p = parse_query("g.v(2).id").unwrap();
    assert_eq!(interp::eval(&g, &p).unwrap()[0].to_json().as_i64(), Some(2));
}

#[test]
fn path_and_simple_path() {
    let g = MemGraph::sample();
    // 1 -> 4 -> {2, 3} gives paths [1, 4, 2] and [1, 4, 3].
    let p = parse_query("g.v(1).out('knows').out.path").unwrap();
    let out = interp::eval(&g, &p).unwrap();
    let mut paths: Vec<Vec<i64>> = out
        .iter()
        .map(|e| match e {
            Elem::Value(Json::Array(items)) => items.iter().map(|j| j.as_i64().unwrap()).collect(),
            other => panic!("expected path array, got {other:?}"),
        })
        .collect();
    paths.sort();
    assert_eq!(paths, vec![vec![1, 4, 2], vec![1, 4, 3]]);

    // simplePath drops the cycle 1 -> 4 (knows) -> ... none cycle here;
    // build one: both() from 2 back to 1.
    assert_eq!(count(&g, "g.v(1).out.both.simplePath.count()"), 4);
    assert_eq!(count(&g, "g.v(1).out.both.count()"), 7);
}

#[test]
fn back_and_as() {
    let g = MemGraph::sample();
    // Find people who created something, then jump back to them.
    assert_eq!(ids(&g, "g.V.as('x').out('created').back('x')"), [1, 4]);
    assert_eq!(ids(&g, "g.V.out('created').back(1)"), [1, 4]);
}

#[test]
fn dedup_and_aggregate_except_retain() {
    let g = MemGraph::sample();
    assert_eq!(count(&g, "g.V.out.count()"), 5);
    assert_eq!(count(&g, "g.V.out.dedup().count()"), 3);
    // Exclude the start vertex from its own neighborhood.
    assert_eq!(
        ids(&g, "g.v(1).aggregate(x).out('knows').out.except(x)"),
        [2, 3]
    );
    assert_eq!(
        ids(&g, "g.v(2).aggregate(x).in('knows').out.retain(x)"),
        [2]
    );
}

#[test]
fn and_or_branches() {
    let g = MemGraph::sample();
    // Vertices with both an outgoing 'knows' and an outgoing 'created' edge.
    assert_eq!(
        ids(&g, "g.V.and(_().out('knows'), _().out('created'))"),
        [1]
    );
    // Vertices with either.
    assert_eq!(
        ids(&g, "g.V.or(_().out('knows'), _().out('created'))"),
        [1, 4]
    );
}

#[test]
fn copy_split_merge() {
    let g = MemGraph::sample();
    assert_eq!(
        ids(
            &g,
            "g.v(1).copySplit(_().out('knows'), _().out('created')).fairMerge"
        ),
        [2, 3, 4]
    );
}

#[test]
fn if_then_else() {
    let g = MemGraph::sample();
    let p = parse_query("g.V.has('age').ifThenElse{it.age > 28}{it.name}{it.age}").unwrap();
    let out = interp::eval(&g, &p).unwrap();
    let mut rendered: Vec<String> = out.iter().map(|e| e.to_json().to_string()).collect();
    rendered.sort();
    assert_eq!(rendered, ["\"josh\"", "\"marko\"", "27"]);
}

#[test]
fn loops_fixed_depth() {
    let g = MemGraph::sample();
    // Two hops out of 1 via loop: out.loop(1){it.loops < 2} == out.out.
    assert_eq!(ids(&g, "g.v(1).out.loop(1){it.loops < 2}"), [2, 3]);
    assert_eq!(ids(&g, "g.v(1).out.out"), [2, 3]);
    // Named loop target.
    assert_eq!(
        ids(&g, "g.v(1).as('s').out.loop('s'){it.loops < 2}"),
        [2, 3]
    );
}

#[test]
fn side_effect_pipes_pass_through() {
    let g = MemGraph::sample();
    assert_eq!(count(&g, "g.V.groupBy{it.name}{it}.count()"), 4);
    assert_eq!(count(&g, "g.V.table(t1).count()"), 4);
}

#[test]
fn crud_statements_mutate_graph() {
    let g = MemGraph::sample();
    let add = parse("g.addVertex([name:'ripple', lang:'java'])").unwrap();
    let out = interp::execute(&g, &add).unwrap();
    let new_id = out[0].id().unwrap();
    assert_eq!(new_id, 5);

    let add_e = parse("g.addEdge(g.v(4), g.v(5), 'created', [weight:1.0])").unwrap();
    interp::execute(&g, &add_e).unwrap();
    assert_eq!(ids(&g, "g.v(4).out('created')"), [3, 5]);

    let set = parse("g.v(5).setProperty('stars', 5)").unwrap();
    interp::execute(&g, &set).unwrap();
    assert_eq!(ids(&g, "g.V.has('stars', 5)"), [5]);

    let rm = parse("g.removeVertex(g.v(5))").unwrap();
    interp::execute(&g, &rm).unwrap();
    assert_eq!(ids(&g, "g.v(4).out('created')"), [3]);

    let rm_e = parse("g.removeEdge(g.e(1))").unwrap();
    interp::execute(&g, &rm_e).unwrap();
    assert_eq!(ids(&g, "g.v(1).out('knows')"), [4]);
}

#[test]
fn edge_properties_via_has() {
    let g = MemGraph::sample();
    let p = parse_query("g.E.has('weight', T.gte, 0.8)").unwrap();
    let mut eids: Vec<i64> = interp::eval(&g, &p)
        .unwrap()
        .into_iter()
        .filter_map(|e| e.id())
        .collect();
    eids.sort_unstable();
    assert_eq!(eids, [2, 5]);
}

#[test]
fn loop_guard_rejects_nonterminating() {
    let g = MemGraph::sample();
    let p = parse_query("g.v(1).both.loop(1){it.loops > 0}").unwrap();
    assert!(interp::eval(&g, &p).is_err());
}
