//! Fuzz-style properties for the Gremlin front end.

use proptest::prelude::*;
use sqlgraph_gremlin::parse;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics(s in "\\PC{0,80}") {
        let _ = parse(&s);
    }

    #[test]
    fn parser_never_panics_on_gremlin_soup(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "g", ".", "V", "E", "v", "e", "(", ")", "out", "in", "both",
                "has", "filter", "{", "}", "it", "==", "'x'", "1", ",",
                "dedup", "count", "loop", "as", "back", "path", "_", "[",
                "]", "..", "aggregate", "except", "&&", "T", "gt",
            ]),
            0..25,
        )
    ) {
        let q = parts.join("");
        let _ = parse(&q);
    }
}
