//! # sqlgraph-gremlin — Gremlin front end and reference interpreter
//!
//! From-scratch tooling for the Gremlin 1.x pipe dialect used by the
//! SQLGraph paper (SIGMOD 2015): a tokenizer and parser producing a pipe
//! AST ([`ast::Pipeline`]), the Blueprints-style property graph trait
//! ([`Blueprints`]) every store in this workspace implements, and a
//! step-at-a-time interpreter ([`interp::eval`]) that executes pipelines
//! the way the TinkerPop stack does — one store call per element per step.
//!
//! The interpreter has two roles: it is the execution engine of the
//! baseline comparator stores, and it is the semantics oracle that the
//! Gremlin→SQL translation in `sqlgraph-core` is differential-tested
//! against.
//!
//! ```
//! use sqlgraph_gremlin::{parse_query, interp, MemGraph};
//!
//! let g = MemGraph::sample();
//! let q = parse_query("g.V.has('name','marko').out('knows').count()").unwrap();
//! let out = interp::eval(&g, &q).unwrap();
//! assert_eq!(out[0].to_json().as_i64(), Some(2));
//! ```

pub mod ast;
pub mod blueprints;
pub mod interp;
pub mod lex;
pub mod memgraph;
pub mod parse;

pub use ast::{GremlinStatement, Pipeline};
pub use blueprints::{Blueprints, Direction, GraphError, GraphResult, GraphTransaction};
pub use interp::Elem;
pub use lex::GremlinError;
pub use memgraph::MemGraph;
pub use parse::{parse, parse_query};
