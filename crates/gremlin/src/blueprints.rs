//! The Blueprints-style property graph API.
//!
//! Every store in this workspace — SQLGraph itself and both baseline
//! comparators — implements [`Blueprints`]. The step-at-a-time
//! [`crate::interp`] interpreter runs over this trait exactly the way
//! Gremlin's reference implementation runs over the TinkerPop Blueprints
//! API: one call per element per step. That call-per-step execution model
//! is the thing the paper's single-SQL translation removes.

use sqlgraph_json::Json;
use std::fmt;

/// Property graph operation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphError {
    /// Human-readable description.
    pub message: String,
}

impl GraphError {
    /// Build an error from anything stringy.
    pub fn new(message: impl Into<String>) -> GraphError {
        GraphError {
            message: message.into(),
        }
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph error: {}", self.message)
    }
}

impl std::error::Error for GraphError {}

/// Result alias for graph operations.
pub type GraphResult<T> = Result<T, GraphError>;

/// Direction of incident edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Edges leaving the vertex.
    Out,
    /// Edges arriving at the vertex.
    In,
    /// Both.
    Both,
}

/// The Blueprints-style CRUD API over a property graph.
///
/// Identifiers are `i64`; vertex and edge id spaces are independent.
/// Property values are JSON scalars (objects/arrays allowed but unused by
/// the benchmarks).
pub trait Blueprints: Send + Sync {
    // ---- global scans ----

    /// All vertex ids (order unspecified).
    fn vertex_ids(&self) -> Vec<i64>;

    /// All edge ids (order unspecified).
    fn edge_ids(&self) -> Vec<i64>;

    /// Number of vertices.
    fn vertex_count(&self) -> usize {
        self.vertex_ids().len()
    }

    /// Number of edges.
    fn edge_count(&self) -> usize {
        self.edge_ids().len()
    }

    // ---- element lookups ----

    /// Does the vertex exist?
    fn vertex_exists(&self, v: i64) -> bool;

    /// Does the edge exist?
    fn edge_exists(&self, e: i64) -> bool;

    /// Incident edge ids of `v` in `dir`, optionally restricted to labels.
    fn edges_of(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64>;

    /// Adjacent vertex ids of `v` in `dir`, optionally restricted to labels.
    /// Default: via `edges_of` + endpoint lookups (stores may override with
    /// something faster).
    fn adjacent(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        let mut out = Vec::new();
        if matches!(dir, Direction::Out | Direction::Both) {
            for e in self.edges_of(v, Direction::Out, labels) {
                if let Some(t) = self.edge_target(e) {
                    out.push(t);
                }
            }
        }
        if matches!(dir, Direction::In | Direction::Both) {
            for e in self.edges_of(v, Direction::In, labels) {
                if let Some(s) = self.edge_source(e) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// The edge's label.
    fn edge_label(&self, e: i64) -> Option<String>;

    /// The edge's source (tail) vertex.
    fn edge_source(&self, e: i64) -> Option<i64>;

    /// The edge's target (head) vertex.
    fn edge_target(&self, e: i64) -> Option<i64>;

    // ---- properties ----

    /// A vertex property value.
    fn vertex_property(&self, v: i64, key: &str) -> Option<Json>;

    /// An edge property value.
    fn edge_property(&self, e: i64, key: &str) -> Option<Json>;

    /// Vertices with `key == value` — the GraphQuery fast path. Stores with
    /// a property index override this; the default scans.
    fn vertices_by_property(&self, key: &str, value: &Json) -> Vec<i64> {
        self.vertex_ids()
            .into_iter()
            .filter(|&v| self.vertex_property(v, key).as_ref() == Some(value))
            .collect()
    }

    // ---- updates ----

    /// Create a vertex with initial properties; returns its id.
    fn add_vertex(&self, props: &[(String, Json)]) -> GraphResult<i64>;

    /// Create an edge `src -label-> dst`; returns its id.
    fn add_edge(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64>;

    /// Remove a vertex and all incident edges.
    fn remove_vertex(&self, v: i64) -> GraphResult<()>;

    /// Remove an edge.
    fn remove_edge(&self, e: i64) -> GraphResult<()>;

    /// Set (or replace) a vertex property.
    fn set_vertex_property(&self, v: i64, key: &str, value: &Json) -> GraphResult<()>;

    /// Set (or replace) an edge property.
    fn set_edge_property(&self, e: i64, key: &str, value: &Json) -> GraphResult<()>;
}

/// A multi-statement graph transaction over the Blueprints update API.
///
/// Obtained from a transactional store (e.g. `SqlGraph::transaction`).
/// Every mutation is provisional until [`GraphTransaction::commit`]; reads
/// issued through the owning handle observe the transaction's snapshot
/// plus its own writes. Dropping the handle without committing rolls the
/// transaction back. `commit`/`rollback` consume the handle (`Box<Self>`
/// so the trait stays object-safe).
pub trait GraphTransaction {
    /// Create a vertex with initial properties; returns its id.
    fn add_vertex(&mut self, props: &[(String, Json)]) -> GraphResult<i64>;

    /// Create an edge `src -label-> dst`; returns its id.
    fn add_edge(
        &mut self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64>;

    /// Remove a vertex and all incident edges.
    fn remove_vertex(&mut self, v: i64) -> GraphResult<()>;

    /// Remove an edge.
    fn remove_edge(&mut self, e: i64) -> GraphResult<()>;

    /// Set (or replace) a vertex property.
    fn set_vertex_property(&mut self, v: i64, key: &str, value: &Json) -> GraphResult<()>;

    /// Set (or replace) an edge property.
    fn set_edge_property(&mut self, e: i64, key: &str, value: &Json) -> GraphResult<()>;

    /// Make every buffered mutation visible atomically.
    fn commit(self: Box<Self>) -> GraphResult<()>;

    /// Discard every buffered mutation.
    fn rollback(self: Box<Self>);
}

impl<G: Blueprints + ?Sized> Blueprints for &G {
    fn vertex_ids(&self) -> Vec<i64> {
        (**self).vertex_ids()
    }
    fn edge_ids(&self) -> Vec<i64> {
        (**self).edge_ids()
    }
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }
    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }
    fn vertex_exists(&self, v: i64) -> bool {
        (**self).vertex_exists(v)
    }
    fn edge_exists(&self, e: i64) -> bool {
        (**self).edge_exists(e)
    }
    fn edges_of(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        (**self).edges_of(v, dir, labels)
    }
    fn adjacent(&self, v: i64, dir: Direction, labels: &[String]) -> Vec<i64> {
        (**self).adjacent(v, dir, labels)
    }
    fn edge_label(&self, e: i64) -> Option<String> {
        (**self).edge_label(e)
    }
    fn edge_source(&self, e: i64) -> Option<i64> {
        (**self).edge_source(e)
    }
    fn edge_target(&self, e: i64) -> Option<i64> {
        (**self).edge_target(e)
    }
    fn vertex_property(&self, v: i64, key: &str) -> Option<Json> {
        (**self).vertex_property(v, key)
    }
    fn edge_property(&self, e: i64, key: &str) -> Option<Json> {
        (**self).edge_property(e, key)
    }
    fn vertices_by_property(&self, key: &str, value: &Json) -> Vec<i64> {
        (**self).vertices_by_property(key, value)
    }
    fn add_vertex(&self, props: &[(String, Json)]) -> GraphResult<i64> {
        (**self).add_vertex(props)
    }
    fn add_edge(
        &self,
        src: i64,
        dst: i64,
        label: &str,
        props: &[(String, Json)],
    ) -> GraphResult<i64> {
        (**self).add_edge(src, dst, label, props)
    }
    fn remove_vertex(&self, v: i64) -> GraphResult<()> {
        (**self).remove_vertex(v)
    }
    fn remove_edge(&self, e: i64) -> GraphResult<()> {
        (**self).remove_edge(e)
    }
    fn set_vertex_property(&self, v: i64, key: &str, value: &Json) -> GraphResult<()> {
        (**self).set_vertex_property(v, key, value)
    }
    fn set_edge_property(&self, e: i64, key: &str, value: &Json) -> GraphResult<()> {
        (**self).set_edge_property(e, key, value)
    }
}
